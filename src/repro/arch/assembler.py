"""Assembler, encoder, and decoder for the G-GPU SIMT ISA.

Kernels in this reproduction are written against :class:`Assembler` (directly
or, more commonly, through the structured :class:`~repro.arch.kernel.KernelBuilder`),
which resolves labels and produces an immutable :class:`Program`.  Programs can
be encoded to 32-bit machine words (what the CRAM instruction memory stores)
and decoded back, which the tests use to check the encoding is lossless.

Instruction encoding (32 bits)::

    register form :  opcode[31:24] rd[23:19] rs[18:14] rt[13:9]  unused[8:0]
    immediate form:  opcode[31:24] rd[23:19] rs[18:14] imm[13:0] (14-bit signed)

Immediates wider than 14 bits are built by the ``load_constant`` helper of the
kernel builder from ``LUI``/``ORI`` pairs, the same way the FGPU compiler
materializes large constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.isa import (
    Instruction,
    Opcode,
    Register,
    opcode_from_code,
    to_signed32,
)
from repro.errors import AssemblyError

IMM_BITS = 14
IMM_MIN = -(1 << (IMM_BITS - 1))
IMM_MAX = (1 << (IMM_BITS - 1)) - 1
IMM_MASK = (1 << IMM_BITS) - 1
LUI_SHIFT = IMM_BITS


@dataclass(frozen=True)
class Program:
    """An assembled kernel program.

    Attributes
    ----------
    name:
        Program name, used by reports and the runtime memory descriptor.
    instructions:
        The resolved instruction stream (labels replaced by absolute targets).
    labels:
        Label name to instruction index, kept for disassembly and debugging.
    """

    name: str
    instructions: Tuple[Instruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def listing(self) -> str:
        """Human-readable program listing with addresses and labels."""
        by_address: Dict[int, List[str]] = {}
        for label, address in self.labels.items():
            by_address.setdefault(address, []).append(label)
        lines = []
        for address, instruction in enumerate(self.instructions):
            for label in sorted(by_address.get(address, [])):
                lines.append(f"{label}:")
            lines.append(f"  {address:4d}: {instruction.text()}")
        return "\n".join(lines)

    def static_histogram(self) -> Dict[str, int]:
        """Static instruction count per execution class (for reports)."""
        counts: Dict[str, int] = {}
        for instruction in self.instructions:
            key = instruction.opcode.opclass.value
            counts[key] = counts.get(key, 0) + 1
        return counts


class Assembler:
    """Incremental assembler with label support.

    Typical use::

        asm = Assembler("vec_add")
        asm.label("loop")
        asm.emit(Opcode.ADD, rd=1, rs=2, rt=3)
        asm.emit(Opcode.JMP, label="loop")
        program = asm.assemble()
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._label_counter = 0

    def __len__(self) -> int:
        return len(self._instructions)

    @property
    def next_address(self) -> int:
        """Address the next emitted instruction will occupy."""
        return len(self._instructions)

    def unique_label(self, stem: str) -> str:
        """Generate a fresh label name with the given stem."""
        self._label_counter += 1
        return f"{stem}_{self._label_counter}"

    def label(self, name: Optional[str] = None) -> str:
        """Define a label at the current address and return its name."""
        if name is None:
            name = self.unique_label("L")
        if name in self._labels:
            raise AssemblyError(f"label {name!r} is already defined")
        self._labels[name] = self.next_address
        return name

    def emit(
        self,
        opcode: Opcode,
        rd: Optional[int] = None,
        rs: Optional[int] = None,
        rt: Optional[int] = None,
        imm: Optional[int] = None,
        label: Optional[str] = None,
    ) -> Instruction:
        """Append one instruction and return it."""
        instruction = Instruction(
            opcode=opcode,
            rd=None if rd is None else Register(rd),
            rs=None if rs is None else Register(rs),
            rt=None if rt is None else Register(rt),
            imm=imm,
            label=label,
        )
        self._instructions.append(instruction)
        return instruction

    def assemble(self) -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        resolved: List[Instruction] = []
        for instruction in self._instructions:
            if instruction.label is not None and instruction.imm is None:
                if instruction.label not in self._labels:
                    raise AssemblyError(
                        f"undefined label {instruction.label!r} in {self.name}"
                    )
                target = self._labels[instruction.label]
                resolved.append(
                    Instruction(
                        opcode=instruction.opcode,
                        rd=instruction.rd,
                        rs=instruction.rs,
                        rt=instruction.rt,
                        imm=target,
                        label=instruction.label,
                    )
                )
            else:
                resolved.append(instruction)
        return Program(self.name, tuple(resolved), dict(self._labels))


def _check_imm(value: int, opcode: Opcode) -> int:
    if not IMM_MIN <= value <= IMM_MAX and not 0 <= value <= IMM_MASK:
        raise AssemblyError(
            f"immediate {value} of {opcode.mnemonic} does not fit in {IMM_BITS} bits"
        )
    return value & IMM_MASK


def encode_instruction(instruction: Instruction) -> int:
    """Encode one instruction into a 32-bit machine word."""
    info = instruction.opcode.info
    word = info.code << 24
    if instruction.rd is not None:
        word |= int(instruction.rd) << 19
    if instruction.rs is not None:
        word |= int(instruction.rs) << 14
    if info.has_rt:
        if instruction.rt is not None:
            word |= int(instruction.rt) << 9
        if info.has_imm:
            # Conditional branches carry rs, rt, and a 14-bit target; the
            # target's high 5 bits reuse the (otherwise unused) rd field.
            imm = _check_imm(instruction.imm if instruction.imm is not None else 0, instruction.opcode)
            word |= (imm >> 9) << 19
            word |= imm & 0x1FF
    elif info.has_imm:
        imm = instruction.imm if instruction.imm is not None else 0
        word |= _check_imm(imm, instruction.opcode)
    return word


def decode_instruction(word: int) -> Instruction:
    """Decode a 32-bit machine word back into an :class:`Instruction`."""
    opcode = opcode_from_code((word >> 24) & 0xFF)
    info = opcode.info
    rd = Register((word >> 19) & 0x1F) if info.has_rd else None
    rs = Register((word >> 14) & 0x1F) if info.has_rs else None
    rt = None
    imm = None
    if info.has_rt:
        rt = Register((word >> 9) & 0x1F)
        if info.has_imm:
            imm = (((word >> 19) & 0x1F) << 9) | (word & 0x1FF)
    elif info.has_imm:
        raw = word & IMM_MASK
        # Branch/jump targets are absolute addresses, and LUI/LP immediates are
        # bit-field selectors; both are unsigned.  Data immediates are signed.
        if opcode.info.is_label_target or opcode in (Opcode.LUI, Opcode.LP):
            imm = raw
        else:
            imm = raw - (1 << IMM_BITS) if raw & (1 << (IMM_BITS - 1)) else raw
    return Instruction(opcode=opcode, rd=rd, rs=rs, rt=rt, imm=imm)


def encode_program(program: Program) -> List[int]:
    """Encode a whole program into CRAM machine words."""
    return [encode_instruction(instruction) for instruction in program.instructions]


def decode_program(name: str, words: Sequence[int]) -> Program:
    """Decode CRAM machine words back into a program (labels are lost)."""
    return Program(name, tuple(decode_instruction(word) for word in words))


def fits_in_immediate(value: int) -> bool:
    """Whether a constant can be carried by a single immediate field."""
    return IMM_MIN <= value <= IMM_MAX


def split_constant(value: int) -> Tuple[int, int]:
    """Split a 28-bit constant into (upper, lower) halves for LUI/ORI."""
    value = to_signed32(value)
    if value < 0 or value >= (1 << (2 * IMM_BITS)):
        raise AssemblyError(
            f"constant {value} cannot be materialized with a single LUI/ORI pair"
        )
    return value >> LUI_SHIFT, value & IMM_MASK
