"""G-GPU architecture definition.

This package defines what a G-GPU *is*, independent of how it is simulated
(``repro.simt``) or implemented in silicon (``repro.rtl`` and onwards):

* :class:`~repro.arch.config.GGPUConfig` -- the user-visible architecture
  parameters (number of CUs, wavefront size, cache geometry, AXI interfaces),
  mirroring the customization knobs GPUPlanner exposes.
* :mod:`repro.arch.isa` -- the SIMT instruction set executed by the compute
  units (an FGPU-like MIPS-style ISA extended with explicit execution-mask
  instructions for thread divergence).
* :mod:`repro.arch.assembler` -- assembler/encoder/decoder for that ISA.
* :mod:`repro.arch.kernel` -- OpenCL-flavoured kernel and NDRange
  abstractions plus a structured program builder used by the kernel library.
"""

from repro.arch.config import GGPUConfig, CacheConfig, AxiConfig, TransferConfig, Topology
from repro.arch.isa import Instruction, Opcode, OpClass, Register, ISA
from repro.arch.assembler import Assembler, Program, encode_instruction, decode_instruction
from repro.arch.kernel import Kernel, KernelArg, NDRange, KernelBuilder

__all__ = [
    "GGPUConfig",
    "CacheConfig",
    "AxiConfig",
    "TransferConfig",
    "Topology",
    "Instruction",
    "Opcode",
    "OpClass",
    "Register",
    "ISA",
    "Assembler",
    "Program",
    "encode_instruction",
    "decode_instruction",
    "Kernel",
    "KernelArg",
    "NDRange",
    "KernelBuilder",
]
