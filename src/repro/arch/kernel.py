"""OpenCL-flavoured kernel abstractions and a structured program builder.

The FGPU is programmed with OpenCL kernels compiled by an LLVM back end; the
host only uses standard OpenCL-API calls (set kernel arguments, define an
NDRange, enqueue).  This module reproduces the same programming model:

* :class:`KernelArg` / :class:`NDRange` / :class:`Kernel` describe what the
  host passes through the AXI control interface and the runtime memory.
* :class:`KernelBuilder` is the stand-in for the compiler back end: a
  structured assembler with register allocation, wide-constant
  materialization, uniform counted loops, and divergence-safe ``if``/``while``
  constructs built on the execution-mask instructions.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.arch.assembler import (
    Assembler,
    Program,
    fits_in_immediate,
    split_constant,
)
from repro.arch.isa import NUM_REGISTERS, Opcode
from repro.errors import KernelError


@dataclass(frozen=True)
class KernelArg:
    """One kernel argument as seen by the host API.

    ``kind`` is ``"buffer"`` for global-memory pointers and ``"scalar"`` for
    by-value integers.  Arguments are written to the runtime memory (RTM) in
    declaration order, which is the index the ``LP`` instruction uses.
    """

    name: str
    kind: str = "buffer"

    def __post_init__(self) -> None:
        if self.kind not in ("buffer", "scalar"):
            raise KernelError(f"argument kind must be 'buffer' or 'scalar', got {self.kind!r}")


MAX_NDRANGE_RANK = 2


def _as_shape(value, what: str) -> Tuple[int, ...]:
    """Normalize an int-or-tuple launch size into a shape tuple of rank 1 or 2."""
    if isinstance(value, (tuple, list)):
        shape = tuple(int(extent) for extent in value)
    else:
        shape = (int(value),)
    if not 1 <= len(shape) <= MAX_NDRANGE_RANK:
        raise KernelError(
            f"NDRange {what} must have rank 1..{MAX_NDRANGE_RANK}, got rank {len(shape)}"
        )
    if any(extent <= 0 for extent in shape):
        raise KernelError(f"NDRange sizes must be positive, got {what} {shape}")
    return shape


class NDRange:
    """Launch geometry of a kernel, rank 1 or rank 2.

    Sizes may be given as plain ints (rank 1, as in all the paper's
    benchmarks) or as tuples of per-dimension extents (rank 2 for the dense
    workloads).  Dimension 0 is the fastest-varying one, exactly as in
    OpenCL's row-major work-item enumeration; workgroups are linearized
    row-major into flat workgroup ids before the dispatcher deals them
    round-robin across the CUs.

    ``global_size``/``workgroup_size``/``num_workgroups`` stay *flat* totals
    so every geometry consumer of the 1-D era (dispatcher capacity checks,
    LRAM slot geometry, runtime descriptors, stats, digests) is untouched;
    the per-dimension extents live in ``global_shape``/``workgroup_shape``/
    ``groups_shape``.
    """

    __slots__ = ("global_shape", "workgroup_shape")

    def __init__(self, global_size, workgroup_size=64) -> None:
        global_shape = _as_shape(global_size, "global size")
        workgroup_shape = _as_shape(workgroup_size, "workgroup size")
        if len(global_shape) != len(workgroup_shape):
            raise KernelError(
                f"global size {global_shape} (rank {len(global_shape)}) and workgroup "
                f"size {workgroup_shape} (rank {len(workgroup_shape)}) must have the "
                f"same rank"
            )
        for dim, (extent, local) in enumerate(zip(global_shape, workgroup_shape)):
            if extent % local != 0:
                raise KernelError(
                    f"global size {extent} must be a multiple of the workgroup size "
                    f"{local} in dimension {dim} "
                    f"(global {global_shape} vs workgroup {workgroup_shape})"
                )
        self.global_shape = global_shape
        self.workgroup_shape = workgroup_shape

    @property
    def rank(self) -> int:
        """Number of launch dimensions (1 or 2)."""
        return len(self.global_shape)

    @property
    def global_size(self) -> int:
        """Flat total number of work-items (product over the dimensions)."""
        total = 1
        for extent in self.global_shape:
            total *= extent
        return total

    @property
    def total_items(self) -> int:
        """Alias for the flat work-item total; the scheduler cost-model key."""
        return self.global_size

    @property
    def workgroup_size(self) -> int:
        """Flat number of work-items per workgroup."""
        total = 1
        for extent in self.workgroup_shape:
            total *= extent
        return total

    @property
    def groups_shape(self) -> Tuple[int, ...]:
        """Per-dimension workgroup-grid extents."""
        return tuple(
            extent // local
            for extent, local in zip(self.global_shape, self.workgroup_shape)
        )

    @property
    def num_workgroups(self) -> int:
        """Number of workgroups the dispatcher will distribute across the CUs."""
        return self.global_size // self.workgroup_size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NDRange):
            return NotImplemented
        return (
            self.global_shape == other.global_shape
            and self.workgroup_shape == other.workgroup_shape
        )

    def __hash__(self) -> int:
        return hash((self.global_shape, self.workgroup_shape))

    def __repr__(self) -> str:
        if self.rank == 1:
            return f"NDRange({self.global_shape[0]}, {self.workgroup_shape[0]})"
        return f"NDRange({self.global_shape}, {self.workgroup_shape})"


@dataclass(frozen=True)
class Kernel:
    """A compiled kernel: program text plus its argument signature.

    ``local_words`` is the kernel's per-workgroup local-memory footprint (the
    sum of its declared ``__local`` arrays, in 32-bit words).  Each resident
    workgroup gets its own LRAM window of that size; the simulator rejects a
    launch whose geometry leaves windows smaller than this footprint.
    """

    name: str
    program: Program
    args: Tuple[KernelArg, ...] = field(default_factory=tuple)
    local_words: int = 0

    def arg_index(self, name: str) -> int:
        """Runtime-memory slot of the named argument."""
        for index, arg in enumerate(self.args):
            if arg.name == name:
                return index
        raise KernelError(f"kernel {self.name!r} has no argument {name!r}")

    @property
    def num_args(self) -> int:
        return len(self.args)


class KernelBuilder:
    """Structured builder for SIMT kernel programs.

    The builder owns an :class:`~repro.arch.assembler.Assembler`, a simple
    linear register allocator (``r0`` is the constant zero), and helpers that
    emit the canonical code sequences the FGPU compiler would produce:

    * ``load_constant`` materializes arbitrary 32-bit constants,
    * ``load_arg`` reads a kernel argument from the runtime memory,
    * ``global_id`` computes the flattened global work-item index,
    * ``uniform_loop`` emits a counted loop whose trip count is identical for
      all lanes (no divergence, plain branch),
    * ``lane_if`` / ``lane_if_else`` and ``divergent_while`` emit
      execution-mask-based control flow for per-lane conditions.
    """

    ZERO = 0

    def __init__(self, name: str, args: Sequence[KernelArg] = ()) -> None:
        self.name = name
        self.args: Tuple[KernelArg, ...] = tuple(args)
        self.asm = Assembler(name)
        self._next_register = 1
        self._named: Dict[str, int] = {}
        self._local_offsets: Dict[str, int] = {}
        self.local_words = 0

    # ------------------------------------------------------------------ #
    # Register allocation
    # ------------------------------------------------------------------ #
    def alloc(self, name: str) -> int:
        """Allocate a fresh register and remember it under ``name``."""
        if name in self._named:
            raise KernelError(f"register name {name!r} already allocated in {self.name}")
        if self._next_register >= NUM_REGISTERS:
            raise KernelError(
                f"kernel {self.name!r} ran out of registers ({NUM_REGISTERS - 1} available)"
            )
        index = self._next_register
        self._next_register += 1
        self._named[name] = index
        return index

    def reg(self, name: str) -> int:
        """Look up a previously allocated named register."""
        try:
            return self._named[name]
        except KeyError as exc:
            raise KernelError(f"unknown register name {name!r} in {self.name}") from exc

    @contextlib.contextmanager
    def temporaries(self, count: int) -> Iterator[List[int]]:
        """Allocate ``count`` scratch registers, released when the block exits."""
        if self._next_register + count > NUM_REGISTERS:
            raise KernelError(f"kernel {self.name!r} ran out of registers for temporaries")
        start = self._next_register
        self._next_register += count
        try:
            yield list(range(start, start + count))
        finally:
            self._next_register = start

    # ------------------------------------------------------------------ #
    # Raw emission and common idioms
    # ------------------------------------------------------------------ #
    def emit(self, opcode: Opcode, **operands) -> None:
        """Emit one raw instruction."""
        self.asm.emit(opcode, **operands)

    def label(self, name: Optional[str] = None) -> str:
        """Place a label at the current address."""
        return self.asm.label(name)

    def load_constant(self, rd: int, value: int) -> None:
        """Materialize an arbitrary 32-bit constant into ``rd``."""
        value &= 0xFFFFFFFF
        signed = value - (1 << 32) if value & 0x80000000 else value
        if fits_in_immediate(signed):
            self.emit(Opcode.LI, rd=rd, imm=signed)
            return
        if value < (1 << 28):
            upper, lower = split_constant(value)
            self.emit(Opcode.LUI, rd=rd, imm=upper)
            if lower:
                self.emit(Opcode.ORI, rd=rd, rs=rd, imm=lower)
            return
        # General case: build the value 14 bits at a time.
        self.emit(Opcode.LI, rd=rd, imm=(value >> 28) & 0x3FFF)
        self.emit(Opcode.SLLI, rd=rd, rs=rd, imm=14)
        self.emit(Opcode.ORI, rd=rd, rs=rd, imm=(value >> 14) & 0x3FFF)
        self.emit(Opcode.SLLI, rd=rd, rs=rd, imm=14)
        self.emit(Opcode.ORI, rd=rd, rs=rd, imm=value & 0x3FFF)

    def load_arg(self, rd: int, arg_name: str) -> None:
        """Load a kernel argument (RTM slot) into ``rd``."""
        index = None
        for slot, arg in enumerate(self.args):
            if arg.name == arg_name:
                index = slot
                break
        if index is None:
            raise KernelError(f"kernel {self.name!r} has no argument {arg_name!r}")
        self.emit(Opcode.LP, rd=rd, imm=index)

    def global_id(self, rd: int, dim: int = 0) -> None:
        """Store the global work-item index along ``dim`` into ``rd``.

        For rank-1 launches dimension 0 is the flattened global index; for
        rank-2 launches each dimension is indexed separately (row-major,
        dimension 0 fastest).
        """
        self.emit(Opcode.GID, rd=rd, imm=dim)

    def local_id(self, rd: int, dim: int = 0) -> None:
        """Store the local work-item index along ``dim`` into ``rd``."""
        self.emit(Opcode.LID, rd=rd, imm=dim)

    def workgroup_id(self, rd: int, dim: int = 0) -> None:
        """Store the workgroup index along ``dim`` into ``rd``."""
        self.emit(Opcode.WGID, rd=rd, imm=dim)

    def declare_local(self, name: str, num_words: int) -> int:
        """Reserve a ``__local`` array of ``num_words`` and return its byte offset.

        Offsets are assigned sequentially inside the workgroup's LRAM window;
        the total footprint is recorded on the built :class:`Kernel` so the
        simulator can check it against the launch geometry.
        """
        if num_words <= 0:
            raise KernelError(f"local array {name!r} must have a positive size")
        if name in self._local_offsets:
            raise KernelError(f"local array {name!r} already declared in {self.name}")
        offset_bytes = self.local_words * 4
        self._local_offsets[name] = offset_bytes
        self.local_words += num_words
        return offset_bytes

    def local_offset(self, name: str) -> int:
        """Byte offset of a previously declared ``__local`` array."""
        try:
            return self._local_offsets[name]
        except KeyError as exc:
            raise KernelError(f"unknown local array {name!r} in {self.name}") from exc

    def address_of_element(self, rd: int, base: int, index: int) -> None:
        """Compute the byte address of 32-bit element ``index`` of buffer ``base``."""
        self.emit(Opcode.SLLI, rd=rd, rs=index, imm=2)
        self.emit(Opcode.ADD, rd=rd, rs=rd, rt=base)

    # ------------------------------------------------------------------ #
    # Control flow
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def uniform_loop(self, counter: int, bound: int, step: int = 1) -> Iterator[None]:
        """Counted loop with a wavefront-uniform trip count.

        ``counter`` must already be initialized; the loop runs while
        ``counter < bound`` and increments it by ``step`` at the bottom.
        """
        start = self.asm.unique_label("loop")
        end = self.asm.unique_label("loop_end")
        self.label(start)
        self.emit(Opcode.BGE, rs=counter, rt=bound, label=end)
        yield
        self.emit(Opcode.ADDI, rd=counter, rs=counter, imm=step)
        self.emit(Opcode.JMP, label=start)
        self.label(end)

    @contextlib.contextmanager
    def lane_if(self, condition: int) -> Iterator[None]:
        """Execute the body only for lanes where ``condition`` is non-zero."""
        self.emit(Opcode.PUSHM)
        self.emit(Opcode.CMASK, rs=condition)
        skip = self.asm.unique_label("if_end")
        self.emit(Opcode.BEMPTY, label=skip)
        yield
        self.label(skip)
        self.emit(Opcode.POPM)

    @contextlib.contextmanager
    def lane_if_else(self, condition: int) -> Iterator[object]:
        """``if``/``else`` on a per-lane condition.

        Yields an object with an ``otherwise()`` context manager marking the
        start of the else branch::

            with kb.lane_if_else(cond) as branch:
                ...              # then body
                with branch.otherwise():
                    ...          # else body
        """
        builder = self

        class _Branch:
            @contextlib.contextmanager
            def otherwise(self) -> Iterator[None]:
                builder.emit(Opcode.INVM)
                yield

        self.emit(Opcode.PUSHM)
        self.emit(Opcode.CMASK, rs=condition)
        yield _Branch()
        self.emit(Opcode.POPM)

    @contextlib.contextmanager
    def divergent_while(self) -> Iterator["DivergentLoop"]:
        """Loop whose lanes may exit at different iterations.

        The body must call :meth:`DivergentLoop.check` exactly once with a
        register holding the per-lane continue condition; lanes whose
        condition is zero are masked off until the loop finishes.
        """
        loop = DivergentLoop(self)
        self.emit(Opcode.PUSHM)
        self.label(loop.start_label)
        yield loop
        if not loop.checked:
            raise KernelError("divergent_while body never called check()")
        self.emit(Opcode.JMP, label=loop.start_label)
        self.label(loop.end_label)
        self.emit(Opcode.POPM)

    # ------------------------------------------------------------------ #
    # Finalization
    # ------------------------------------------------------------------ #
    def ret(self) -> None:
        """Terminate the kernel for the active wavefront."""
        self.emit(Opcode.RET)

    def build(self) -> Kernel:
        """Assemble and return the finished kernel."""
        program = self.asm.assemble()
        if not program.instructions or program.instructions[-1].opcode is not Opcode.RET:
            raise KernelError(f"kernel {self.name!r} does not end with RET")
        return Kernel(self.name, program, self.args, local_words=self.local_words)


class DivergentLoop:
    """Handle yielded by :meth:`KernelBuilder.divergent_while`."""

    def __init__(self, builder: KernelBuilder) -> None:
        self._builder = builder
        self.start_label = builder.asm.unique_label("dloop")
        self.end_label = builder.asm.unique_label("dloop_end")
        self.checked = False

    def check(self, condition: int) -> None:
        """Mask off lanes whose ``condition`` register is zero; exit when none remain."""
        if self.checked:
            raise KernelError("divergent_while check() may only be called once per body")
        self.checked = True
        self._builder.emit(Opcode.CMASK, rs=condition)
        self._builder.emit(Opcode.BEMPTY, label=self.end_label)
