"""``dot`` micro-benchmark: per-workgroup dot-product partials.

Each workgroup loads its chunk of ``a`` and ``b``, multiplies element-wise
into the workgroup's LRAM window, and tree-reduces the products with
``log2(workgroup_size)`` barrier rounds; lane 0 writes the partial sum to
``partial[workgroup_id]``.  This is the canonical local-memory cooperative
pattern (CUDA's classic reduction kernel) and the first suite kernel whose
inner loop is dominated by LRAM traffic and barriers rather than by the
global-memory system.  Integer addition is associative mod 2^32, so the tree
order produces bit-exactly the same partials as the scalar RISC-V loop.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.errors import KernelError
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_pow2_workgroup_size,
    register_kernel,
)

NAME = "dot"
MAX_WORKGROUP = 256


def emit_tree_reduce(builder: KernelBuilder, lid: int, wgsize: int) -> None:
    """Tree-reduce the workgroup's LRAM values in place (result in word 0).

    ``lram[lid] += lram[lid + stride]`` for stride = wgsize/2 .. 1, with a
    barrier after every round; lanes above the stride are masked off.
    """
    stride = builder.alloc("stride")
    cond = builder.alloc("cond")
    my_addr = builder.alloc("my_addr")
    other_addr = builder.alloc("other_addr")
    mine = builder.alloc("mine")
    other = builder.alloc("other")

    builder.emit(Opcode.SRLI, rd=stride, rs=wgsize, imm=1)
    top = builder.asm.unique_label("reduce")
    done = builder.asm.unique_label("reduce_done")
    builder.label(top)
    builder.emit(Opcode.BEQ, rs=stride, rt=0, label=done)
    builder.emit(Opcode.SLT, rd=cond, rs=lid, rt=stride)
    with builder.lane_if(cond):
        builder.emit(Opcode.ADD, rd=other_addr, rs=lid, rt=stride)
        builder.emit(Opcode.SLLI, rd=other_addr, rs=other_addr, imm=2)
        builder.emit(Opcode.LLW, rd=other, rs=other_addr, imm=0)
        builder.emit(Opcode.SLLI, rd=my_addr, rs=lid, imm=2)
        builder.emit(Opcode.LLW, rd=mine, rs=my_addr, imm=0)
        builder.emit(Opcode.ADD, rd=mine, rs=mine, rt=other)
        builder.emit(Opcode.LSW, rs=my_addr, rt=mine, imm=0)
    builder.emit(Opcode.BARRIER)
    builder.emit(Opcode.SRLI, rd=stride, rs=stride, imm=1)
    builder.emit(Opcode.JMP, label=top)
    builder.label(done)


def emit_lane0_store(builder: KernelBuilder, lid: int, wgid: int, dst_ptr: int) -> None:
    """Store the reduced LRAM word 0 to ``dst_ptr[workgroup_id]`` from lane 0."""
    cond = builder.alloc("lane0")
    result = builder.alloc("result")
    dst = builder.alloc("dst")
    builder.emit(Opcode.SLTU, rd=cond, rs=0, rt=lid)
    builder.emit(Opcode.XORI, rd=cond, rs=cond, imm=1)
    with builder.lane_if(cond):
        builder.emit(Opcode.LLW, rd=result, rs=0, imm=0)
        builder.emit(Opcode.SLLI, rd=dst, rs=wgid, imm=2)
        builder.emit(Opcode.ADD, rd=dst, rs=dst, rt=dst_ptr)
        builder.emit(Opcode.SW, rs=dst, rt=result, imm=0)


def build() -> Kernel:
    """Build the G-GPU dot-product kernel (per-workgroup partials)."""
    builder = KernelBuilder(
        NAME,
        args=(
            KernelArg("a"),
            KernelArg("b"),
            KernelArg("partial"),
            KernelArg("n", "scalar"),
        ),
    )
    builder.declare_local("tmp", MAX_WORKGROUP)
    gid = builder.alloc("gid")
    lid = builder.alloc("lid")
    wgid = builder.alloc("wgid")
    wgsize = builder.alloc("wgsize")
    a_ptr = builder.alloc("a_ptr")
    b_ptr = builder.alloc("b_ptr")
    part_ptr = builder.alloc("part_ptr")
    offset = builder.alloc("offset")
    addr = builder.alloc("addr")
    va = builder.alloc("va")
    vb = builder.alloc("vb")

    builder.global_id(gid)
    builder.emit(Opcode.LID, rd=lid)
    builder.emit(Opcode.WGID, rd=wgid)
    builder.emit(Opcode.WGSIZE, rd=wgsize)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(b_ptr, "b")
    builder.load_arg(part_ptr, "partial")
    builder.emit(Opcode.SLLI, rd=offset, rs=gid, imm=2)
    builder.emit(Opcode.ADD, rd=addr, rs=a_ptr, rt=offset)
    builder.emit(Opcode.LW, rd=va, rs=addr, imm=0)
    builder.emit(Opcode.ADD, rd=addr, rs=b_ptr, rt=offset)
    builder.emit(Opcode.LW, rd=vb, rs=addr, imm=0)
    builder.emit(Opcode.MUL, rd=va, rs=va, rt=vb)
    builder.emit(Opcode.SLLI, rd=addr, rs=lid, imm=2)
    builder.emit(Opcode.LSW, rs=addr, rt=va, imm=0)
    builder.emit(Opcode.BARRIER)
    emit_tree_reduce(builder, lid, wgsize)
    emit_lane0_store(builder, lid, wgid, part_ptr)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """Vectors of ``size`` elements; one partial per workgroup."""
    if size % 64 != 0:
        raise KernelError(f"dot size must be a multiple of 64, got {size}")
    workgroup = pick_pow2_workgroup_size(size)
    num_workgroups = size // workgroup
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, size=size, dtype=np.int64)
    b = rng.integers(0, 256, size=size, dtype=np.int64)
    expected = (a * b).reshape(num_workgroups, workgroup).sum(axis=1) & 0xFFFFFFFF
    return GpuWorkload(
        buffers={
            "a": a,
            "b": b,
            "partial": np.zeros(num_workgroups, dtype=np.int64),
        },
        scalars={"n": size},
        expected={"partial": expected},
        ndrange=NDRange(size, workgroup),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="per-workgroup dot product (LRAM tree reduction)",
        build=build,
        workload=workload,
        paper_gpu_size=16384,
        paper_riscv_size=512,
        parallel_friendly=True,
    )
)
