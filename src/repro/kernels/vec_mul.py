"""``vec_mul`` micro-benchmark: out[i] = a[i] * b[i].

An element-wise multiply: two loads, one multiply, one store per work-item.
Like ``copy`` it is bandwidth bound, which is why the paper measures strongly
sub-linear scaling beyond 4 CUs (100k/49k/31k/26k cycles in Table III).
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_workgroup_size,
    register_kernel,
)

NAME = "vec_mul"


def build() -> Kernel:
    """Build the G-GPU element-wise vector multiply kernel."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("a"), KernelArg("b"), KernelArg("out"), KernelArg("n", "scalar")),
    )
    gid = builder.alloc("gid")
    a_ptr = builder.alloc("a_ptr")
    b_ptr = builder.alloc("b_ptr")
    out_ptr = builder.alloc("out_ptr")
    addr = builder.alloc("addr")
    value_a = builder.alloc("value_a")
    value_b = builder.alloc("value_b")

    builder.global_id(gid)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(b_ptr, "b")
    builder.load_arg(out_ptr, "out")
    builder.address_of_element(addr, a_ptr, gid)
    builder.emit(Opcode.LW, rd=value_a, rs=addr, imm=0)
    builder.address_of_element(addr, b_ptr, gid)
    builder.emit(Opcode.LW, rd=value_b, rs=addr, imm=0)
    builder.emit(Opcode.MUL, rd=value_a, rs=value_a, rt=value_b)
    builder.address_of_element(addr, out_ptr, gid)
    builder.emit(Opcode.SW, rs=addr, rt=value_a, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """Two random operand vectors of ``size`` elements."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2**15, size=size, dtype=np.int64)
    b = rng.integers(0, 2**15, size=size, dtype=np.int64)
    expected = (a * b) & 0xFFFFFFFF
    return GpuWorkload(
        buffers={"a": a, "b": b, "out": np.zeros(size, dtype=np.int64)},
        scalars={"n": size},
        expected={"out": expected},
        ndrange=NDRange(size, pick_workgroup_size(size)),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="element-wise vector multiply (bandwidth bound)",
        build=build,
        workload=workload,
        paper_gpu_size=65536,
        paper_riscv_size=1024,
        parallel_friendly=True,
    )
)
