"""``mat_mul`` micro-benchmark: blocked matrix multiply.

Each work-item computes one element of ``C = A x B`` where ``A`` is
``(size/64) x 64``, ``B`` is ``64 x 64`` and ``C`` has ``size`` elements (the
paper's single "input size" number is the number of output elements).  The
64-long dot product per work-item gives the kernel high arithmetic intensity
and excellent data reuse through the shared cache, which is why it shows the
largest speed-up over the RISC-V (up to ~223x with 8 CUs in Fig. 5).
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.errors import KernelError
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_workgroup_size,
    register_kernel,
)

NAME = "mat_mul"
INNER_DIM = 64


def build() -> Kernel:
    """Build the G-GPU matrix-multiply kernel (inner dimension fixed at 64)."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("a"), KernelArg("b"), KernelArg("c"), KernelArg("n", "scalar")),
    )
    gid = builder.alloc("gid")
    a_ptr = builder.alloc("a_ptr")
    b_ptr = builder.alloc("b_ptr")
    c_ptr = builder.alloc("c_ptr")
    row_off = builder.alloc("row_off")
    col = builder.alloc("col")
    acc = builder.alloc("acc")
    k = builder.alloc("k")
    k_end = builder.alloc("k_end")
    addr = builder.alloc("addr")
    value_a = builder.alloc("value_a")
    value_b = builder.alloc("value_b")

    builder.global_id(gid)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(b_ptr, "b")
    builder.load_arg(c_ptr, "c")
    # row = gid / 64, col = gid % 64; the loop walks A's row with a stride of 4
    # bytes and B's column with a stride of 256 bytes (pointer arithmetic, the
    # way the FGPU compiler strength-reduces the address computations).
    builder.emit(Opcode.SRLI, rd=row_off, rs=gid, imm=6)
    builder.emit(Opcode.SLLI, rd=row_off, rs=row_off, imm=8)
    builder.emit(Opcode.ADD, rd=row_off, rs=row_off, rt=a_ptr)  # &A[row][0]
    builder.emit(Opcode.ANDI, rd=col, rs=gid, imm=INNER_DIM - 1)
    builder.emit(Opcode.SLLI, rd=col, rs=col, imm=2)
    builder.emit(Opcode.ADD, rd=col, rs=col, rt=b_ptr)  # &B[0][col]
    builder.emit(Opcode.LI, rd=acc, imm=0)
    builder.emit(Opcode.LI, rd=k, imm=0)
    builder.emit(Opcode.LI, rd=k_end, imm=INNER_DIM)
    with builder.uniform_loop(k, k_end):
        builder.emit(Opcode.LW, rd=value_a, rs=row_off, imm=0)
        builder.emit(Opcode.LW, rd=value_b, rs=col, imm=0)
        builder.emit(Opcode.MUL, rd=value_a, rs=value_a, rt=value_b)
        builder.emit(Opcode.ADD, rd=acc, rs=acc, rt=value_a)
        builder.emit(Opcode.ADDI, rd=row_off, rs=row_off, imm=4)
        builder.emit(Opcode.ADDI, rd=col, rs=col, imm=4 * INNER_DIM)
    builder.address_of_element(addr, c_ptr, gid)
    builder.emit(Opcode.SW, rs=addr, rt=acc, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """Matrices sized so ``C`` has ``size`` elements (must be a multiple of 64)."""
    if size % INNER_DIM != 0:
        raise KernelError(f"mat_mul size must be a multiple of {INNER_DIM}, got {size}")
    rows = size // INNER_DIM
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, size=(rows, INNER_DIM), dtype=np.int64)
    b = rng.integers(0, 256, size=(INNER_DIM, INNER_DIM), dtype=np.int64)
    c = (a @ b) & 0xFFFFFFFF
    return GpuWorkload(
        buffers={
            "a": a.reshape(-1),
            "b": b.reshape(-1),
            "c": np.zeros(size, dtype=np.int64),
        },
        scalars={"n": size},
        expected={"c": c.reshape(-1)},
        ndrange=NDRange(size, pick_workgroup_size(size)),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="blocked matrix multiply (compute bound, high reuse)",
        build=build,
        workload=workload,
        paper_gpu_size=2048,
        paper_riscv_size=128,
        parallel_friendly=True,
    )
)
