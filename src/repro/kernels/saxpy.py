"""``saxpy`` micro-benchmark: ``out = alpha * x + y`` (integer SAXPY).

The classic streaming BLAS-1 kernel: two loads, one multiply-add, one store
per work-item.  Arithmetic intensity sits between ``copy`` and ``fir``, so it
fills the gap in the suite's memory-bound spectrum and is the canonical
smoke-test workload for the batched command queue (many cheap launches).
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_workgroup_size,
    register_kernel,
)

NAME = "saxpy"


def build() -> Kernel:
    """Build the G-GPU SAXPY kernel."""
    builder = KernelBuilder(
        NAME,
        args=(
            KernelArg("x"),
            KernelArg("y"),
            KernelArg("out"),
            KernelArg("alpha", "scalar"),
            KernelArg("n", "scalar"),
        ),
    )
    gid = builder.alloc("gid")
    x_ptr = builder.alloc("x_ptr")
    y_ptr = builder.alloc("y_ptr")
    out_ptr = builder.alloc("out_ptr")
    alpha = builder.alloc("alpha")
    offset = builder.alloc("offset")
    addr = builder.alloc("addr")
    value = builder.alloc("value")
    augend = builder.alloc("augend")

    builder.global_id(gid)
    builder.load_arg(x_ptr, "x")
    builder.load_arg(y_ptr, "y")
    builder.load_arg(out_ptr, "out")
    builder.load_arg(alpha, "alpha")
    # One shared byte offset walks all three buffers.
    builder.emit(Opcode.SLLI, rd=offset, rs=gid, imm=2)
    builder.emit(Opcode.ADD, rd=addr, rs=x_ptr, rt=offset)
    builder.emit(Opcode.LW, rd=value, rs=addr, imm=0)
    builder.emit(Opcode.MUL, rd=value, rs=value, rt=alpha)
    builder.emit(Opcode.ADD, rd=addr, rs=y_ptr, rt=offset)
    builder.emit(Opcode.LW, rd=augend, rs=addr, imm=0)
    builder.emit(Opcode.ADD, rd=value, rs=value, rt=augend)
    builder.emit(Opcode.ADD, rd=addr, rs=out_ptr, rt=offset)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """Vectors of ``size`` elements; alpha is derived from the seed."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 1 << 16, size=size, dtype=np.int64)
    y = rng.integers(0, 1 << 16, size=size, dtype=np.int64)
    alpha = int(rng.integers(1, 32))
    expected = (alpha * x + y) & 0xFFFFFFFF
    return GpuWorkload(
        buffers={"x": x, "y": y, "out": np.zeros(size, dtype=np.int64)},
        scalars={"alpha": alpha, "n": size},
        expected={"out": expected},
        ndrange=NDRange(size, pick_workgroup_size(size)),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="integer SAXPY (streaming multiply-add)",
        build=build,
        workload=workload,
        paper_gpu_size=32768,
        paper_riscv_size=1024,
        parallel_friendly=True,
    )
)
