"""``bitonic_sort`` dense benchmark: in-LRAM bitonic network per workgroup.

Each 64-lane workgroup loads its 64-element chunk of ``a`` into LRAM and runs
the classic bitonic sorting network: for ``k = 2, 4, .., 64`` and
``j = k/2 .. 1`` the lane below each ``lid ^ j`` pair compare-swaps both LRAM
slots, ascending when ``lid & k == 0``, with a barrier after every round.
After ``log2(64) * (log2(64)+1) / 2 = 21`` rounds the chunk is sorted
ascending and every lane stores its slot to ``out``.  Keys are drawn below
``2^31`` so signed and unsigned comparison agree, which keeps the network
bit-exact against the scalar RISC-V exchange sort (sorted output is unique).
This is the suite's only data-dependent-swap kernel: every round is a masked
``lane_if`` whose active set depends on the input, driving the divergence
stack and LRAM cross-lane traffic harder than the tree reductions.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.errors import KernelError
from repro.kernels.library import GpuWorkload, KernelSpec, register_kernel

NAME = "bitonic_sort"
CHUNK = 64  # one wavefront-sized workgroup sorts one chunk


def build() -> Kernel:
    """Build the per-workgroup bitonic sorting network."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("a"), KernelArg("out"), KernelArg("n", "scalar")),
    )
    builder.declare_local("tmp", CHUNK)
    gid = builder.alloc("gid")
    lid = builder.alloc("lid")
    wgsize = builder.alloc("wgsize")
    a_ptr = builder.alloc("a_ptr")
    out_ptr = builder.alloc("out_ptr")
    k = builder.alloc("k")
    j = builder.alloc("j")
    partner = builder.alloc("partner")
    my_addr = builder.alloc("my_addr")
    p_addr = builder.alloc("p_addr")
    va = builder.alloc("va")
    vb = builder.alloc("vb")
    descending = builder.alloc("descending")
    swap = builder.alloc("swap")
    addr = builder.alloc("addr")

    builder.global_id(gid)
    builder.local_id(lid)
    builder.emit(Opcode.WGSIZE, rd=wgsize)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(out_ptr, "out")

    # tmp[lid] = a[gid]
    builder.address_of_element(addr, a_ptr, gid)
    builder.emit(Opcode.LW, rd=va, rs=addr, imm=0)
    builder.emit(Opcode.SLLI, rd=my_addr, rs=lid, imm=2)
    builder.emit(Opcode.LSW, rs=my_addr, rt=va, imm=0)
    builder.emit(Opcode.BARRIER)

    k_loop = builder.asm.unique_label("k_loop")
    k_done = builder.asm.unique_label("k_done")
    j_loop = builder.asm.unique_label("j_loop")
    j_done = builder.asm.unique_label("j_done")

    builder.emit(Opcode.LI, rd=k, imm=2)
    builder.label(k_loop)
    builder.emit(Opcode.BLT, rs=wgsize, rt=k, label=k_done)  # while k <= wgsize
    builder.emit(Opcode.SRLI, rd=j, rs=k, imm=1)
    builder.label(j_loop)
    builder.emit(Opcode.BEQ, rs=j, rt=0, label=j_done)  # while j >= 1
    builder.emit(Opcode.XOR, rd=partner, rs=lid, rt=j)
    builder.emit(Opcode.SLLI, rd=p_addr, rs=partner, imm=2)
    builder.emit(Opcode.LLW, rd=va, rs=my_addr, imm=0)
    builder.emit(Opcode.LLW, rd=vb, rs=p_addr, imm=0)
    # descending = (lid & k) != 0; swap when the pair is out of order for its
    # direction.  Swapping equal keys is a value-level no-op, so XOR-ing the
    # two flags is exact.
    builder.emit(Opcode.AND, rd=descending, rs=lid, rt=k)
    builder.emit(Opcode.SLTU, rd=descending, rs=0, rt=descending)
    builder.emit(Opcode.SLTU, rd=swap, rs=vb, rt=va)
    builder.emit(Opcode.XOR, rd=swap, rs=swap, rt=descending)
    # Only the lower lane of each pair applies the swap (writes both slots).
    builder.emit(Opcode.SLTU, rd=partner, rs=lid, rt=partner)
    builder.emit(Opcode.AND, rd=swap, rs=swap, rt=partner)
    with builder.lane_if(swap):
        builder.emit(Opcode.LSW, rs=my_addr, rt=vb, imm=0)
        builder.emit(Opcode.LSW, rs=p_addr, rt=va, imm=0)
    builder.emit(Opcode.BARRIER)
    builder.emit(Opcode.SRLI, rd=j, rs=j, imm=1)
    builder.emit(Opcode.JMP, label=j_loop)
    builder.label(j_done)
    builder.emit(Opcode.SLLI, rd=k, rs=k, imm=1)
    builder.emit(Opcode.JMP, label=k_loop)
    builder.label(k_done)

    # out[gid] = tmp[lid]
    builder.emit(Opcode.LLW, rd=va, rs=my_addr, imm=0)
    builder.address_of_element(addr, out_ptr, gid)
    builder.emit(Opcode.SW, rs=addr, rt=va, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """``size`` keys below 2^31, sorted ascending per 64-element chunk."""
    if size % CHUNK != 0:
        raise KernelError(f"bitonic_sort size must be a multiple of {CHUNK}, got {size}")
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 31, size=size, dtype=np.int64)
    expected = np.sort(a.reshape(-1, CHUNK), axis=1).reshape(-1)
    return GpuWorkload(
        buffers={"a": a, "out": np.zeros(size, dtype=np.int64)},
        scalars={"n": size},
        expected={"out": expected},
        ndrange=NDRange(size, CHUNK),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="per-workgroup bitonic sorting network in LRAM",
        build=build,
        workload=workload,
        paper_gpu_size=2048,
        paper_riscv_size=128,
        parallel_friendly=True,
    )
)
