"""``conv2d`` dense benchmark: 3x3 convolution on a rank-2 NDRange.

``out[y][x] = sum(src[y+ky][x+kx] * krn[ky][kx])`` over a 3x3 stencil, on an
image 16 pixels wide and ``size/16`` pixels tall.  The input carries a
one-pixel halo (``(h+2) x 18``), so every work-item reads nine neighbours
without edge branches.  The launch is a 2-D NDRange ``((16, h), (16, 4))``:
dimension 0 walks a row (coalesced loads), dimension 1 walks rows, and each
``16 x 4`` workgroup covers a 64-pixel image strip — one wavefront.  The
stencil is fully unrolled: the nine taps become literal load offsets, the
idiomatic strength reduction for a fixed-size kernel.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.errors import KernelError
from repro.kernels.library import GpuWorkload, KernelSpec, register_kernel

NAME = "conv2d"
WIDTH = 16  # image width; input rows are WIDTH + 2 words with the halo
KSIZE = 3
WG_SHAPE = (16, 4)  # one wavefront per workgroup, covering a 16x4 strip


def build() -> Kernel:
    """Build the unrolled 3x3 stencil kernel over the haloed input."""
    builder = KernelBuilder(
        NAME,
        args=(
            KernelArg("src"),
            KernelArg("krn"),
            KernelArg("out"),
            KernelArg("h", "scalar"),
        ),
    )
    x = builder.alloc("x")
    y = builder.alloc("y")
    src_ptr = builder.alloc("src_ptr")
    krn_ptr = builder.alloc("krn_ptr")
    out_ptr = builder.alloc("out_ptr")
    base = builder.alloc("base")
    acc = builder.alloc("acc")
    va = builder.alloc("va")
    vk = builder.alloc("vk")
    addr = builder.alloc("addr")

    builder.global_id(x, 0)
    builder.global_id(y, 1)
    builder.load_arg(src_ptr, "src")
    builder.load_arg(krn_ptr, "krn")
    builder.load_arg(out_ptr, "out")

    # base = &src[y][x]: the top-left tap of this work-item's stencil.
    stride = WIDTH + 2
    builder.emit(Opcode.LI, rd=base, imm=stride)
    builder.emit(Opcode.MUL, rd=base, rs=base, rt=y)
    builder.emit(Opcode.ADD, rd=base, rs=base, rt=x)
    builder.emit(Opcode.SLLI, rd=base, rs=base, imm=2)
    builder.emit(Opcode.ADD, rd=base, rs=base, rt=src_ptr)
    builder.emit(Opcode.LI, rd=acc, imm=0)
    for ky in range(KSIZE):
        for kx in range(KSIZE):
            builder.emit(Opcode.LW, rd=va, rs=base, imm=4 * (ky * stride + kx))
            builder.emit(Opcode.LW, rd=vk, rs=krn_ptr, imm=4 * (ky * KSIZE + kx))
            builder.emit(Opcode.MUL, rd=va, rs=va, rt=vk)
            builder.emit(Opcode.ADD, rd=acc, rs=acc, rt=va)

    # out[y][x] = acc.
    builder.emit(Opcode.SLLI, rd=addr, rs=y, imm=4)
    builder.emit(Opcode.ADD, rd=addr, rs=addr, rt=x)
    builder.address_of_element(addr, out_ptr, addr)
    builder.emit(Opcode.SW, rs=addr, rt=acc, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """A 16-wide image with ``size`` pixels (must be a multiple of 64)."""
    if size % (WIDTH * WG_SHAPE[1]) != 0:
        raise KernelError(
            f"conv2d size must be a multiple of {WIDTH * WG_SHAPE[1]}, got {size}"
        )
    height = size // WIDTH
    stride = WIDTH + 2
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 256, size=(height + 2, stride), dtype=np.int64)
    krn = rng.integers(0, 16, size=(KSIZE, KSIZE), dtype=np.int64)
    out = np.zeros((height, WIDTH), dtype=np.int64)
    for ky in range(KSIZE):
        for kx in range(KSIZE):
            out += src[ky : ky + height, kx : kx + WIDTH] * krn[ky, kx]
    return GpuWorkload(
        buffers={
            "src": src.reshape(-1),
            "krn": krn.reshape(-1),
            "out": np.zeros(size, dtype=np.int64),
        },
        scalars={"h": height},
        expected={"out": out.reshape(-1) & 0xFFFFFFFF},
        ndrange=NDRange((WIDTH, height), WG_SHAPE),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="unrolled 3x3 stencil on a 2-D NDRange (16x4 workgroups)",
        build=build,
        workload=workload,
        paper_gpu_size=2048,
        paper_riscv_size=128,
        parallel_friendly=True,
    )
)
