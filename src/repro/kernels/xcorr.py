"""``xcorr`` micro-benchmark: strided (decimated) cross-correlation.

Each work-item correlates the 256-sample reference window against its own
stride-16 segment of the signal: ``out[i] = sum_t x[t] * y[16*i + t]``.
Within a wavefront the 64 lanes therefore read 64 *different* cache lines on
every iteration of the inner loop, so the kernel is dominated by global-memory
traffic rather than by the PE array.  That is what puts xcorr in the paper's
"low parallelism benefit" group: single-digit speed-up over the RISC-V, and a
cycle count that stops improving (or gets worse) when going from 4 to 8 CUs
because the extra CUs only add contention on the AXI data ports
(Table III: 5343k/2802k/1467k/2079k cycles).
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_workgroup_size,
    register_kernel,
)

NAME = "xcorr"
WINDOW = 256
STRIDE = 16


def build() -> Kernel:
    """Build the G-GPU strided cross-correlation kernel."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("x"), KernelArg("y"), KernelArg("out"), KernelArg("n", "scalar")),
    )
    gid = builder.alloc("gid")
    x_ptr = builder.alloc("x_ptr")
    y_ptr = builder.alloc("y_ptr")
    out_ptr = builder.alloc("out_ptr")
    acc = builder.alloc("acc")
    t = builder.alloc("t")
    t_end = builder.alloc("t_end")
    addr = builder.alloc("addr")
    ref = builder.alloc("ref")
    sig = builder.alloc("sig")

    builder.global_id(gid)
    builder.load_arg(x_ptr, "x")
    builder.load_arg(y_ptr, "y")
    builder.load_arg(out_ptr, "out")
    # Walk &x[t] and &y[STRIDE * gid + t] with pointer increments.
    builder.emit(Opcode.SLLI, rd=addr, rs=gid, imm=6)  # STRIDE * 4 bytes = 64
    builder.emit(Opcode.ADD, rd=y_ptr, rs=y_ptr, rt=addr)
    builder.emit(Opcode.LI, rd=acc, imm=0)
    builder.emit(Opcode.LI, rd=t, imm=0)
    builder.emit(Opcode.LI, rd=t_end, imm=WINDOW)
    with builder.uniform_loop(t, t_end):
        builder.emit(Opcode.LW, rd=ref, rs=x_ptr, imm=0)
        builder.emit(Opcode.LW, rd=sig, rs=y_ptr, imm=0)
        builder.emit(Opcode.MUL, rd=ref, rs=ref, rt=sig)
        builder.emit(Opcode.ADD, rd=acc, rs=acc, rt=ref)
        builder.emit(Opcode.ADDI, rd=x_ptr, rs=x_ptr, imm=4)
        builder.emit(Opcode.ADDI, rd=y_ptr, rs=y_ptr, imm=4)
    builder.address_of_element(addr, out_ptr, gid)
    builder.emit(Opcode.SW, rs=addr, rt=acc, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """Reference window of 256 samples; signal of ``16 * size + 256`` samples."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 256, size=WINDOW, dtype=np.int64)
    y = rng.integers(0, 256, size=size * STRIDE + WINDOW, dtype=np.int64)
    indices = STRIDE * np.arange(size)[:, None] + np.arange(WINDOW)[None, :]
    expected = (x[None, :] * y[indices]).sum(axis=1) & 0xFFFFFFFF
    return GpuWorkload(
        buffers={"x": x, "y": y, "out": np.zeros(size, dtype=np.int64)},
        scalars={"n": size},
        expected={"out": expected},
        ndrange=NDRange(size, pick_workgroup_size(size)),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="strided cross correlation (memory bound, contention limited)",
        build=build,
        workload=workload,
        paper_gpu_size=4096,
        paper_riscv_size=256,
        parallel_friendly=False,
    )
)
