"""``matmul2d`` dense benchmark: __local-tiled GEMM on a rank-2 NDRange.

``C = A x B`` with ``A`` sized ``(size/16) x 16``, ``B`` fixed at ``16 x 16``
and one work-item per output element, launched on a 2-D NDRange
``((16, size/16), (8, 8))``.  Unlike the paper's flat ``mat_mul``, this is the
canonical tiled GEMM: each ``8 x 8`` workgroup stages an ``A`` tile and a
``B`` tile through LRAM, synchronizes with a barrier, and runs the inner
product out of local memory — so the kernel exercises 2-D work-item indexing,
per-dimension ``GID``/``LID`` queries, cooperative __local staging, and
barriers all at once.  Integer multiply-add is associative mod 2^32 in the
``k`` order used here, so the tiled schedule is bit-exact against the scalar
RISC-V triple loop and the plain (untiled) compiled CL form.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.errors import KernelError
from repro.kernels.library import GpuWorkload, KernelSpec, register_kernel

NAME = "matmul2d"
NUM_COLS = 16  # N: columns of B and C
INNER_DIM = 16  # K: columns of A, rows of B
TILE = 8  # TS: tile edge; workgroups are (TILE, TILE) = 64 lanes


def build() -> Kernel:
    """Build the tiled rank-2 GEMM kernel (B fixed at 16x16, 8x8 tiles)."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("a"), KernelArg("b"), KernelArg("c"), KernelArg("m", "scalar")),
    )
    a_tile = builder.declare_local("a_tile", TILE * TILE)
    b_tile = builder.declare_local("b_tile", TILE * TILE)

    gid0 = builder.alloc("gid0")  # global column
    gid1 = builder.alloc("gid1")  # global row
    lid0 = builder.alloc("lid0")
    lid1 = builder.alloc("lid1")
    a_ptr = builder.alloc("a_ptr")
    b_ptr = builder.alloc("b_ptr")
    c_ptr = builder.alloc("c_ptr")
    my_slot = builder.alloc("my_slot")  # LRAM byte offset of (lid1, lid0)
    a_src = builder.alloc("a_src")  # &A[gid1][t*TILE + lid0]
    b_src = builder.alloc("b_src")  # &B[t*TILE + lid1][gid0]
    a_rd = builder.alloc("a_rd")  # LRAM cursor over a_tile[lid1][.]
    b_rd = builder.alloc("b_rd")  # LRAM cursor over b_tile[.][lid0]
    acc = builder.alloc("acc")
    t = builder.alloc("t")
    t_end = builder.alloc("t_end")
    k = builder.alloc("k")
    k_end = builder.alloc("k_end")
    va = builder.alloc("va")
    vb = builder.alloc("vb")
    addr = builder.alloc("addr")

    builder.global_id(gid0, 0)
    builder.global_id(gid1, 1)
    builder.local_id(lid0, 0)
    builder.local_id(lid1, 1)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(b_ptr, "b")
    builder.load_arg(c_ptr, "c")

    # my_slot = (lid1 * TILE + lid0) * 4: this lane's slot in either tile.
    builder.emit(Opcode.SLLI, rd=my_slot, rs=lid1, imm=3)
    builder.emit(Opcode.ADD, rd=my_slot, rs=my_slot, rt=lid0)
    builder.emit(Opcode.SLLI, rd=my_slot, rs=my_slot, imm=2)
    # a_src = &A[gid1][lid0], advanced by TILE columns per tile step.
    builder.emit(Opcode.SLLI, rd=a_src, rs=gid1, imm=4)
    builder.emit(Opcode.ADD, rd=a_src, rs=a_src, rt=lid0)
    builder.emit(Opcode.SLLI, rd=a_src, rs=a_src, imm=2)
    builder.emit(Opcode.ADD, rd=a_src, rs=a_src, rt=a_ptr)
    # b_src = &B[lid1][gid0], advanced by TILE rows per tile step.
    builder.emit(Opcode.SLLI, rd=b_src, rs=lid1, imm=4)
    builder.emit(Opcode.ADD, rd=b_src, rs=b_src, rt=gid0)
    builder.emit(Opcode.SLLI, rd=b_src, rs=b_src, imm=2)
    builder.emit(Opcode.ADD, rd=b_src, rs=b_src, rt=b_ptr)

    builder.emit(Opcode.LI, rd=acc, imm=0)
    builder.emit(Opcode.LI, rd=t, imm=0)
    builder.emit(Opcode.LI, rd=t_end, imm=INNER_DIM // TILE)
    builder.emit(Opcode.LI, rd=k_end, imm=TILE)
    with builder.uniform_loop(t, t_end):
        # Stage one A tile and one B tile through LRAM.
        builder.emit(Opcode.LW, rd=va, rs=a_src, imm=0)
        builder.emit(Opcode.ADDI, rd=addr, rs=my_slot, imm=a_tile)
        builder.emit(Opcode.LSW, rs=addr, rt=va, imm=0)
        builder.emit(Opcode.LW, rd=vb, rs=b_src, imm=0)
        builder.emit(Opcode.ADDI, rd=addr, rs=my_slot, imm=b_tile)
        builder.emit(Opcode.LSW, rs=addr, rt=vb, imm=0)
        builder.emit(Opcode.BARRIER)
        # acc += a_tile[lid1][k] * b_tile[k][lid0] for k in 0..TILE-1.
        builder.emit(Opcode.SLLI, rd=a_rd, rs=lid1, imm=5)
        builder.emit(Opcode.ADDI, rd=a_rd, rs=a_rd, imm=a_tile)
        builder.emit(Opcode.SLLI, rd=b_rd, rs=lid0, imm=2)
        builder.emit(Opcode.ADDI, rd=b_rd, rs=b_rd, imm=b_tile)
        builder.emit(Opcode.LI, rd=k, imm=0)
        with builder.uniform_loop(k, k_end):
            builder.emit(Opcode.LLW, rd=va, rs=a_rd, imm=0)
            builder.emit(Opcode.LLW, rd=vb, rs=b_rd, imm=0)
            builder.emit(Opcode.MUL, rd=va, rs=va, rt=vb)
            builder.emit(Opcode.ADD, rd=acc, rs=acc, rt=va)
            builder.emit(Opcode.ADDI, rd=a_rd, rs=a_rd, imm=4)
            builder.emit(Opcode.ADDI, rd=b_rd, rs=b_rd, imm=4 * TILE)
        # The next tile load overwrites LRAM: wait for every lane's reads.
        builder.emit(Opcode.BARRIER)
        builder.emit(Opcode.ADDI, rd=a_src, rs=a_src, imm=4 * TILE)
        builder.emit(Opcode.ADDI, rd=b_src, rs=b_src, imm=4 * TILE * NUM_COLS)

    # C[gid1][gid0] = acc.
    builder.emit(Opcode.SLLI, rd=addr, rs=gid1, imm=4)
    builder.emit(Opcode.ADD, rd=addr, rs=addr, rt=gid0)
    builder.address_of_element(addr, c_ptr, addr)
    builder.emit(Opcode.SW, rs=addr, rt=acc, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """Matrices sized so ``C`` has ``size`` elements (must be a multiple of 128)."""
    if size % (NUM_COLS * TILE) != 0:
        raise KernelError(
            f"matmul2d size must be a multiple of {NUM_COLS * TILE}, got {size}"
        )
    rows = size // NUM_COLS
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, size=(rows, INNER_DIM), dtype=np.int64)
    b = rng.integers(0, 256, size=(INNER_DIM, NUM_COLS), dtype=np.int64)
    c = (a @ b) & 0xFFFFFFFF
    return GpuWorkload(
        buffers={
            "a": a.reshape(-1),
            "b": b.reshape(-1),
            "c": np.zeros(size, dtype=np.int64),
        },
        scalars={"m": rows},
        expected={"c": c.reshape(-1)},
        ndrange=NDRange((NUM_COLS, rows), (TILE, TILE)),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="__local-tiled GEMM on a 2-D NDRange (8x8 workgroups)",
        build=build,
        workload=workload,
        paper_gpu_size=2048,
        paper_riscv_size=128,
        parallel_friendly=True,
        size_granularity=128,
    )
)
