"""``parallel_sel`` micro-benchmark: parallel selection sort (rank sort).

Each work-item computes the rank of its element by scanning the entire input
array and then scatters the element to its sorted position.  The per-item work
is O(N), every work-item reads the whole array, and the final store is a
scatter, so the kernel is dominated by global-memory traffic and shows almost
no benefit from additional CUs (Table III: 5979k/3157k/1656k/1660k cycles).
The input is a permutation so ranks are unique.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_workgroup_size,
    register_kernel,
)

NAME = "parallel_sel"


def build() -> Kernel:
    """Build the G-GPU rank-sort kernel."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("a"), KernelArg("out"), KernelArg("n", "scalar")),
    )
    gid = builder.alloc("gid")
    a_ptr = builder.alloc("a_ptr")
    out_ptr = builder.alloc("out_ptr")
    n = builder.alloc("n")
    my_value = builder.alloc("my_value")
    rank = builder.alloc("rank")
    j = builder.alloc("j")
    addr = builder.alloc("addr")
    other = builder.alloc("other")

    builder.global_id(gid)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(out_ptr, "out")
    builder.load_arg(n, "n")
    builder.address_of_element(addr, a_ptr, gid)
    builder.emit(Opcode.LW, rd=my_value, rs=addr, imm=0)
    builder.emit(Opcode.LI, rd=rank, imm=0)
    builder.emit(Opcode.LI, rd=j, imm=0)
    with builder.uniform_loop(j, n):
        builder.emit(Opcode.SLLI, rd=addr, rs=j, imm=2)
        builder.emit(Opcode.ADD, rd=addr, rs=addr, rt=a_ptr)
        builder.emit(Opcode.LW, rd=other, rs=addr, imm=0)
        builder.emit(Opcode.SLT, rd=other, rs=other, rt=my_value)
        builder.emit(Opcode.ADD, rd=rank, rs=rank, rt=other)
    builder.address_of_element(addr, out_ptr, rank)
    builder.emit(Opcode.SW, rs=addr, rt=my_value, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """A random permutation of ``0..size-1`` (unique values, unique ranks)."""
    rng = np.random.default_rng(seed)
    a = rng.permutation(size).astype(np.int64)
    expected = np.sort(a)
    return GpuWorkload(
        buffers={"a": a, "out": np.zeros(size, dtype=np.int64)},
        scalars={"n": size},
        expected={"out": expected},
        ndrange=NDRange(size, pick_workgroup_size(size)),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="parallel selection (rank) sort: O(N) work per item, scatter store",
        build=build,
        workload=workload,
        paper_gpu_size=2048,
        paper_riscv_size=128,
        parallel_friendly=False,
    )
)
