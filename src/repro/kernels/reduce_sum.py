"""``reduce_sum`` micro-benchmark: per-workgroup sum reduction.

Each workgroup stages its chunk of the input in its LRAM window and
tree-reduces it with barrier rounds (shared with :mod:`repro.kernels.dot`);
lane 0 writes ``partial[workgroup_id]``.  Compared to ``dot`` it drops the
multiply and the second input stream, isolating the cost of the
local-memory/barrier machinery itself.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.errors import KernelError
from repro.kernels.dot import MAX_WORKGROUP, emit_lane0_store, emit_tree_reduce
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_pow2_workgroup_size,
    register_kernel,
)

NAME = "reduce_sum"


def build() -> Kernel:
    """Build the G-GPU sum-reduction kernel (per-workgroup partials)."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("a"), KernelArg("partial"), KernelArg("n", "scalar")),
    )
    builder.declare_local("tmp", MAX_WORKGROUP)
    gid = builder.alloc("gid")
    lid = builder.alloc("lid")
    wgid = builder.alloc("wgid")
    wgsize = builder.alloc("wgsize")
    a_ptr = builder.alloc("a_ptr")
    part_ptr = builder.alloc("part_ptr")
    addr = builder.alloc("addr")
    value = builder.alloc("value")

    builder.global_id(gid)
    builder.emit(Opcode.LID, rd=lid)
    builder.emit(Opcode.WGID, rd=wgid)
    builder.emit(Opcode.WGSIZE, rd=wgsize)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(part_ptr, "partial")
    builder.address_of_element(addr, a_ptr, gid)
    builder.emit(Opcode.LW, rd=value, rs=addr, imm=0)
    builder.emit(Opcode.SLLI, rd=addr, rs=lid, imm=2)
    builder.emit(Opcode.LSW, rs=addr, rt=value, imm=0)
    builder.emit(Opcode.BARRIER)
    emit_tree_reduce(builder, lid, wgsize)
    emit_lane0_store(builder, lid, wgid, part_ptr)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """Input of ``size`` elements; one partial sum per workgroup."""
    if size % 64 != 0:
        raise KernelError(f"reduce_sum size must be a multiple of 64, got {size}")
    workgroup = pick_pow2_workgroup_size(size)
    num_workgroups = size // workgroup
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 20, size=size, dtype=np.int64)
    expected = a.reshape(num_workgroups, workgroup).sum(axis=1) & 0xFFFFFFFF
    return GpuWorkload(
        buffers={"a": a, "partial": np.zeros(num_workgroups, dtype=np.int64)},
        scalars={"n": size},
        expected={"partial": expected},
        ndrange=NDRange(size, workgroup),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="per-workgroup sum reduction (LRAM tree, barriers)",
        build=build,
        workload=workload,
        paper_gpu_size=32768,
        paper_riscv_size=1024,
        parallel_friendly=True,
    )
)
