"""``transpose`` micro-benchmark: 64-column matrix transpose.

``out[col * rows + row] = a[row * 64 + col]``: reads are perfectly coalesced
(64 consecutive words per wavefront) while writes scatter with a stride of
``rows`` words, so every wavefront store touches 64 distinct cache lines once
``rows >= 16``.  That makes transpose the suite's worst case for the cache's
line-port serialization and the AXI write-back path — the mirror image of
``copy``, which is the best case.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.errors import KernelError
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_workgroup_size,
    register_kernel,
)

NAME = "transpose"
NUM_COLS = 64


def build() -> Kernel:
    """Build the G-GPU transpose kernel (row-major in, column-major out)."""
    builder = KernelBuilder(
        NAME,
        args=(
            KernelArg("a"),
            KernelArg("out"),
            KernelArg("rows", "scalar"),
            KernelArg("n", "scalar"),
        ),
    )
    gid = builder.alloc("gid")
    a_ptr = builder.alloc("a_ptr")
    out_ptr = builder.alloc("out_ptr")
    rows = builder.alloc("rows")
    row = builder.alloc("row")
    col = builder.alloc("col")
    addr = builder.alloc("addr")
    value = builder.alloc("value")

    builder.global_id(gid)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(out_ptr, "out")
    builder.load_arg(rows, "rows")
    builder.emit(Opcode.SRLI, rd=row, rs=gid, imm=6)
    builder.emit(Opcode.ANDI, rd=col, rs=gid, imm=NUM_COLS - 1)
    builder.address_of_element(addr, a_ptr, gid)
    builder.emit(Opcode.LW, rd=value, rs=addr, imm=0)
    builder.emit(Opcode.MUL, rd=col, rs=col, rt=rows)
    builder.emit(Opcode.ADD, rd=col, rs=col, rt=row)
    builder.address_of_element(addr, out_ptr, col)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """A ``(size/64) x 64`` matrix transposed into a ``64 x (size/64)`` one."""
    if size % NUM_COLS != 0:
        raise KernelError(f"transpose size must be a multiple of {NUM_COLS}, got {size}")
    rows = size // NUM_COLS
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 31, size=size, dtype=np.int64)
    expected = a.reshape(rows, NUM_COLS).T.reshape(-1)
    return GpuWorkload(
        buffers={"a": a, "out": np.zeros(size, dtype=np.int64)},
        scalars={"rows": rows, "n": size},
        expected={"out": expected},
        ndrange=NDRange(size, pick_workgroup_size(size)),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="64-column matrix transpose (strided scatter stores)",
        build=build,
        workload=workload,
        paper_gpu_size=16384,
        paper_riscv_size=512,
        parallel_friendly=True,
    )
)
