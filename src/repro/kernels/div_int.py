"""``div_int`` micro-benchmark: element-wise integer division.

The FGPU has no hardware divider, so ``a[i] / b[i]`` compiles to a 32-step
restoring-division loop (~500 issued instructions per work-item), while the
RISC-V baseline executes a single hardware ``div``.  On top of the long
software sequence, the per-lane "subtract or keep" decision inside the loop is
divergent, so both sides of the predicated region are issued every iteration.
This combination is why div_int shows the smallest speed-up of the suite (as
low as ~1.2x for 1 CU in the paper, and the G-GPU cycle count in Table III is
*higher* than the RISC-V one despite the 8x larger input).
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_workgroup_size,
    register_kernel,
)

NAME = "div_int"
DIVISION_STEPS = 32
MAX_DIVIDEND = 2**31
MAX_DIVISOR = 2**16


def build() -> Kernel:
    """Build the G-GPU integer-division kernel (restoring division loop)."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("a"), KernelArg("b"), KernelArg("q"), KernelArg("n", "scalar")),
    )
    gid = builder.alloc("gid")
    a_ptr = builder.alloc("a_ptr")
    b_ptr = builder.alloc("b_ptr")
    q_ptr = builder.alloc("q_ptr")
    addr = builder.alloc("addr")
    dividend = builder.alloc("dividend")
    divisor = builder.alloc("divisor")
    remainder = builder.alloc("remainder")
    quotient = builder.alloc("quotient")
    step = builder.alloc("step")
    step_end = builder.alloc("step_end")
    bit = builder.alloc("bit")
    fits = builder.alloc("fits")

    builder.global_id(gid)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(b_ptr, "b")
    builder.load_arg(q_ptr, "q")
    builder.address_of_element(addr, a_ptr, gid)
    builder.emit(Opcode.LW, rd=dividend, rs=addr, imm=0)
    builder.address_of_element(addr, b_ptr, gid)
    builder.emit(Opcode.LW, rd=divisor, rs=addr, imm=0)
    builder.emit(Opcode.LI, rd=remainder, imm=0)
    builder.emit(Opcode.LI, rd=quotient, imm=0)
    builder.emit(Opcode.LI, rd=step, imm=0)
    builder.emit(Opcode.LI, rd=step_end, imm=DIVISION_STEPS)
    with builder.uniform_loop(step, step_end):
        # Shift the next dividend bit into the partial remainder.
        builder.emit(Opcode.SRLI, rd=bit, rs=dividend, imm=31)
        builder.emit(Opcode.SLLI, rd=dividend, rs=dividend, imm=1)
        builder.emit(Opcode.SLLI, rd=remainder, rs=remainder, imm=1)
        builder.emit(Opcode.OR, rd=remainder, rs=remainder, rt=bit)
        builder.emit(Opcode.SLLI, rd=quotient, rs=quotient, imm=1)
        # Per-lane decision: subtract the divisor if it fits (divergent).
        builder.emit(Opcode.SLTU, rd=fits, rs=remainder, rt=divisor)
        builder.emit(Opcode.XORI, rd=fits, rs=fits, imm=1)
        with builder.lane_if(fits):
            builder.emit(Opcode.SUB, rd=remainder, rs=remainder, rt=divisor)
            builder.emit(Opcode.ORI, rd=quotient, rs=quotient, imm=1)
    builder.address_of_element(addr, q_ptr, gid)
    builder.emit(Opcode.SW, rs=addr, rt=quotient, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """Random 31-bit dividends and 16-bit divisors (never zero)."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, MAX_DIVIDEND, size=size, dtype=np.int64)
    b = rng.integers(1, MAX_DIVISOR, size=size, dtype=np.int64)
    expected = a // b
    return GpuWorkload(
        buffers={"a": a, "b": b, "q": np.zeros(size, dtype=np.int64)},
        scalars={"n": size},
        expected={"q": expected},
        ndrange=NDRange(size, pick_workgroup_size(size)),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="element-wise integer division (32-step restoring division, predicated)",
        build=build,
        workload=workload,
        paper_gpu_size=4096,
        paper_riscv_size=512,
        parallel_friendly=False,
    )
)
