"""Kernel registry and workload plumbing shared by the benchmark suite.

Each benchmark module registers a :class:`KernelSpec` describing how to build
its G-GPU kernel, how to generate a workload of a given size, and the default
sizes used by the paper (Table III lists separate input sizes for the RISC-V
and the G-GPU runs).  :func:`run_workload` is the host-side glue: it allocates
buffers on a simulator, launches the kernel, checks the outputs against the
numpy reference, and returns the launch statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.arch.kernel import Kernel, NDRange
from repro.errors import KernelError
from repro.simt.gpu import GGPUSimulator, LaunchResult


@dataclass
class GpuWorkload:
    """Host-side description of one kernel launch.

    Attributes
    ----------
    buffers:
        Name to initial contents for every global-memory buffer argument
        (outputs are usually zero-filled).
    scalars:
        Name to value for every scalar argument.
    expected:
        Name to expected final contents for the buffers that the kernel
        writes; used to verify functional correctness.
    ndrange:
        Launch geometry.
    """

    buffers: Dict[str, np.ndarray]
    scalars: Dict[str, int]
    expected: Dict[str, np.ndarray]
    ndrange: NDRange


@dataclass(frozen=True)
class KernelSpec:
    """Registry entry for one benchmark kernel."""

    name: str
    description: str
    build: Callable[[], Kernel]
    workload: Callable[[int, int], GpuWorkload]
    paper_gpu_size: int
    paper_riscv_size: int
    parallel_friendly: bool
    #: Smallest input-size step ``workload`` accepts.  64 (one wavefront) for
    #: every 1-D kernel; the rank-2 dense workloads need a full workgroup
    #: grid row, e.g. 128 for matmul2d's (8, 8) workgroups over 16 columns.
    size_granularity: int = 64

    def default_workload(self, seed: int = 2022) -> GpuWorkload:
        """Workload at the G-GPU input size used in the paper."""
        return self.workload(self.paper_gpu_size, seed)


_REGISTRY: Dict[str, KernelSpec] = {}


def register_kernel(spec: KernelSpec) -> KernelSpec:
    """Add a kernel to the global registry (called by the benchmark modules)."""
    if spec.name in _REGISTRY:
        raise KernelError(f"kernel {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


# The paper's seven Table III kernels, in table order.
PAPER_KERNEL_NAMES: Tuple[str, ...] = (
    "mat_mul",
    "copy",
    "vec_mul",
    "fir",
    "div_int",
    "xcorr",
    "parallel_sel",
)

# The six extended-suite kernels added on top of the paper's table, in the
# order the extended Table III lists them.
EXTENDED_KERNEL_NAMES: Tuple[str, ...] = (
    "saxpy",
    "dot",
    "reduce_sum",
    "inclusive_scan",
    "histogram",
    "transpose",
)

# The dense workloads added with rank-2 NDRange support: tiled GEMM and a 3x3
# stencil on 2-D launches, plus the in-LRAM bitonic sorting network.
DENSE_KERNEL_NAMES: Tuple[str, ...] = (
    "matmul2d",
    "conv2d",
    "bitonic_sort",
)


def all_kernel_names() -> List[str]:
    """Names of all registered benchmark kernels, in extended-table order."""
    order = (
        list(PAPER_KERNEL_NAMES) + list(EXTENDED_KERNEL_NAMES) + list(DENSE_KERNEL_NAMES)
    )
    known = [name for name in order if name in _REGISTRY]
    extras = sorted(name for name in _REGISTRY if name not in order)
    return known + extras


def get_kernel_spec(name: str) -> KernelSpec:
    """Look a benchmark kernel up by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KernelError(
            f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def run_workload(
    simulator: GGPUSimulator,
    kernel: Kernel,
    workload: GpuWorkload,
    check: bool = True,
) -> Tuple[LaunchResult, Dict[str, np.ndarray]]:
    """Allocate buffers, launch the kernel, and (optionally) verify outputs.

    Returns the launch result and the final contents of every buffer listed in
    ``workload.expected``.
    """
    addresses: Dict[str, int] = {}
    args: Dict[str, int] = {}
    for name, contents in workload.buffers.items():
        address = simulator.create_buffer(np.asarray(contents, dtype=np.int64) & 0xFFFFFFFF)
        addresses[name] = address
        args[name] = address
    args.update({name: int(value) for name, value in workload.scalars.items()})

    result = simulator.launch(kernel, workload.ndrange, args)

    outputs: Dict[str, np.ndarray] = {}
    for name, expected in workload.expected.items():
        if name not in addresses:
            raise KernelError(f"expected output {name!r} is not a buffer argument")
        observed = simulator.read_buffer(addresses[name], len(expected))
        outputs[name] = observed
        if check:
            expected_u32 = np.asarray(expected, dtype=np.int64) & 0xFFFFFFFF
            if not np.array_equal(observed.astype(np.int64), expected_u32):
                mismatches = int(np.sum(observed.astype(np.int64) != expected_u32))
                raise KernelError(
                    f"kernel {kernel.name!r} produced {mismatches} wrong values in {name!r}"
                )
    return result, outputs


def pick_pow2_workgroup_size(global_size: int, preferred: int = 256) -> int:
    """Largest power-of-two workgroup size (>= 64, <= preferred) dividing ``global_size``.

    The workgroup-cooperative kernels (tree reductions, Hillis-Steele scans)
    need a power-of-two group so their stride loops cover every lane.
    """
    candidate = 256
    while candidate > preferred or candidate > global_size or global_size % candidate:
        candidate //= 2
        if candidate < 64:
            raise KernelError(
                f"global size {global_size} is not a multiple of the 64-lane wavefront"
            )
    return candidate


def pick_workgroup_size(global_size: int, preferred: int = 256) -> int:
    """Largest workgroup size (multiple of 64, <= preferred) dividing ``global_size``."""
    candidate = min(preferred, global_size)
    while candidate >= 64:
        if global_size % candidate == 0 and candidate % 64 == 0:
            return candidate
        candidate -= 64
    if global_size % 64 == 0:
        return 64
    raise KernelError(
        f"global size {global_size} is not a multiple of the 64-lane wavefront"
    )
