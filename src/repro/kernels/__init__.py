"""The seven micro-benchmark kernels used in the paper's evaluation.

The paper takes seven micro-benchmarks from the AMD OpenCL SDK (mat_mul, copy,
vec_mul, fir, div_int, xcorr, parallel_sel), runs them on the G-GPU with
1/2/4/8 CUs and on a RISC-V CPU, and reports cycle counts (Table III) and
speed-ups (Figs. 5-6).  This package contains the G-GPU implementations of
those kernels, written against the public :class:`~repro.arch.kernel.KernelBuilder`
API, together with numpy reference implementations used to verify functional
correctness and workload generators that produce the input data.

The matching RISC-V programs live in :mod:`repro.riscv.programs`.
"""

from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    all_kernel_names,
    get_kernel_spec,
    run_workload,
)
from repro.kernels import (
    copy,
    div_int,
    fir,
    mat_mul,
    parallel_sel,
    vec_mul,
    xcorr,
)

__all__ = [
    "GpuWorkload",
    "KernelSpec",
    "all_kernel_names",
    "get_kernel_spec",
    "run_workload",
    "copy",
    "div_int",
    "fir",
    "mat_mul",
    "parallel_sel",
    "vec_mul",
    "xcorr",
]
