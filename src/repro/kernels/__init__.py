"""The benchmark kernel library: the paper's seven plus the extended suite.

The paper takes seven micro-benchmarks from the AMD OpenCL SDK (mat_mul, copy,
vec_mul, fir, div_int, xcorr, parallel_sel), runs them on the G-GPU with
1/2/4/8 CUs and on a RISC-V CPU, and reports cycle counts (Table III) and
speed-ups (Figs. 5-6).  This package contains the G-GPU implementations of
those kernels, written against the public :class:`~repro.arch.kernel.KernelBuilder`
API, together with numpy reference implementations used to verify functional
correctness and workload generators that produce the input data.

On top of the paper's table, the extended suite adds six kernels that cover
behaviours the original seven never exercise: ``saxpy`` (streaming
multiply-add), ``dot`` and ``reduce_sum`` (local-memory tree reductions with
barriers), ``inclusive_scan`` (Hillis-Steele prefix sum), ``histogram``
(wavefront-uniform loads, branchless counting), and ``transpose`` (strided
scatter stores).  Every kernel — old and new — is pinned bit-exactly across
the G-GPU, the RISC-V baseline, and a pure-python reference by
``tests/test_differential.py``.

The matching RISC-V programs live in :mod:`repro.riscv.programs`.
"""

from repro.kernels.library import (
    DENSE_KERNEL_NAMES,
    EXTENDED_KERNEL_NAMES,
    GpuWorkload,
    KernelSpec,
    PAPER_KERNEL_NAMES,
    all_kernel_names,
    get_kernel_spec,
    pick_pow2_workgroup_size,
    pick_workgroup_size,
    run_workload,
)
from repro.kernels import (
    bitonic_sort,
    conv2d,
    copy,
    div_int,
    dot,
    fir,
    histogram,
    inclusive_scan,
    mat_mul,
    matmul2d,
    parallel_sel,
    reduce_sum,
    saxpy,
    transpose,
    vec_mul,
    xcorr,
)

__all__ = [
    "DENSE_KERNEL_NAMES",
    "EXTENDED_KERNEL_NAMES",
    "GpuWorkload",
    "KernelSpec",
    "PAPER_KERNEL_NAMES",
    "all_kernel_names",
    "get_kernel_spec",
    "pick_pow2_workgroup_size",
    "pick_workgroup_size",
    "run_workload",
    "bitonic_sort",
    "conv2d",
    "copy",
    "div_int",
    "dot",
    "fir",
    "histogram",
    "inclusive_scan",
    "mat_mul",
    "matmul2d",
    "parallel_sel",
    "reduce_sum",
    "saxpy",
    "transpose",
    "vec_mul",
    "xcorr",
]
