"""``fir`` micro-benchmark: 16-tap finite impulse response filter.

``y[i] = sum_{t=0}^{15} coeff[t] * x[i + t]``.  Each work-item performs a
short dot product over a sliding window; neighbouring work-items share most of
their input samples, so the cache captures the reuse and the kernel scales
well (Table III: 694k/358k/185k/169k cycles), though not as well as mat_mul
because each output needs 16 loads from the signal buffer.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_workgroup_size,
    register_kernel,
)

NAME = "fir"
NUM_TAPS = 16


def build() -> Kernel:
    """Build the G-GPU FIR kernel (16 taps)."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("x"), KernelArg("coeff"), KernelArg("y"), KernelArg("n", "scalar")),
    )
    gid = builder.alloc("gid")
    x_ptr = builder.alloc("x_ptr")
    coeff_ptr = builder.alloc("coeff_ptr")
    y_ptr = builder.alloc("y_ptr")
    acc = builder.alloc("acc")
    tap = builder.alloc("tap")
    tap_end = builder.alloc("tap_end")
    addr = builder.alloc("addr")
    sample = builder.alloc("sample")
    weight = builder.alloc("weight")

    builder.global_id(gid)
    builder.load_arg(x_ptr, "x")
    builder.load_arg(coeff_ptr, "coeff")
    builder.load_arg(y_ptr, "y")
    # Walk &x[gid + tap] and &coeff[tap] with pointer increments.
    builder.emit(Opcode.SLLI, rd=addr, rs=gid, imm=2)
    builder.emit(Opcode.ADD, rd=x_ptr, rs=x_ptr, rt=addr)
    builder.emit(Opcode.LI, rd=acc, imm=0)
    builder.emit(Opcode.LI, rd=tap, imm=0)
    builder.emit(Opcode.LI, rd=tap_end, imm=NUM_TAPS)
    with builder.uniform_loop(tap, tap_end):
        builder.emit(Opcode.LW, rd=sample, rs=x_ptr, imm=0)
        builder.emit(Opcode.LW, rd=weight, rs=coeff_ptr, imm=0)
        builder.emit(Opcode.MUL, rd=sample, rs=sample, rt=weight)
        builder.emit(Opcode.ADD, rd=acc, rs=acc, rt=sample)
        builder.emit(Opcode.ADDI, rd=x_ptr, rs=x_ptr, imm=4)
        builder.emit(Opcode.ADDI, rd=coeff_ptr, rs=coeff_ptr, imm=4)
    builder.address_of_element(addr, y_ptr, gid)
    builder.emit(Opcode.SW, rs=addr, rt=acc, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """Signal of ``size + 16`` samples and 16 coefficients."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 1024, size=size + NUM_TAPS, dtype=np.int64)
    coeff = rng.integers(0, 64, size=NUM_TAPS, dtype=np.int64)
    indices = np.arange(size)[:, None] + np.arange(NUM_TAPS)[None, :]
    expected = (x[indices] * coeff[None, :]).sum(axis=1) & 0xFFFFFFFF
    return GpuWorkload(
        buffers={"x": x, "coeff": coeff, "y": np.zeros(size, dtype=np.int64)},
        scalars={"n": size},
        expected={"y": expected},
        ndrange=NDRange(size, pick_workgroup_size(size)),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="16-tap FIR filter (moderate reuse)",
        build=build,
        workload=workload,
        paper_gpu_size=4096,
        paper_riscv_size=128,
        parallel_friendly=True,
    )
)
