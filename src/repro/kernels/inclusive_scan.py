"""``inclusive_scan`` micro-benchmark: per-workgroup inclusive prefix sum.

Hillis-Steele scan in the workgroup's LRAM window:
``out[gid] = a[wg_start] + ... + a[gid]``.  Every round each lane reads its
own slot plus the slot ``stride`` below (masked off for the first ``stride``
lanes), with read/write barriers separating the phases; ``log2(wgsize)``
rounds complete the scan.  The kernel stresses repeated divergence inside a
uniform loop and back-to-back barrier pairs — a scheduling pattern none of
the paper's seven kernels exhibits.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.errors import KernelError
from repro.kernels.dot import MAX_WORKGROUP
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_pow2_workgroup_size,
    register_kernel,
)

NAME = "inclusive_scan"


def build() -> Kernel:
    """Build the G-GPU Hillis-Steele scan kernel."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("a"), KernelArg("out"), KernelArg("n", "scalar")),
    )
    builder.declare_local("tmp", MAX_WORKGROUP)
    gid = builder.alloc("gid")
    lid = builder.alloc("lid")
    wgsize = builder.alloc("wgsize")
    a_ptr = builder.alloc("a_ptr")
    out_ptr = builder.alloc("out_ptr")
    addr = builder.alloc("addr")
    lid_bytes = builder.alloc("lid_bytes")
    value = builder.alloc("value")
    stride = builder.alloc("stride")
    cond = builder.alloc("cond")
    below = builder.alloc("below")
    augend = builder.alloc("augend")

    builder.global_id(gid)
    builder.emit(Opcode.LID, rd=lid)
    builder.emit(Opcode.WGSIZE, rd=wgsize)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(out_ptr, "out")
    builder.address_of_element(addr, a_ptr, gid)
    builder.emit(Opcode.LW, rd=value, rs=addr, imm=0)
    builder.emit(Opcode.SLLI, rd=lid_bytes, rs=lid, imm=2)
    builder.emit(Opcode.LSW, rs=lid_bytes, rt=value, imm=0)
    builder.emit(Opcode.BARRIER)
    # for (stride = 1; stride < wgsize; stride <<= 1):
    #   value = lram[lid] (+ lram[lid - stride] when lid >= stride)
    #   barrier; lram[lid] = value; barrier
    builder.emit(Opcode.LI, rd=stride, imm=1)
    top = builder.asm.unique_label("scan")
    done = builder.asm.unique_label("scan_done")
    builder.label(top)
    builder.emit(Opcode.BGE, rs=stride, rt=wgsize, label=done)
    builder.emit(Opcode.LLW, rd=value, rs=lid_bytes, imm=0)
    builder.emit(Opcode.SLT, rd=cond, rs=lid, rt=stride)
    builder.emit(Opcode.XORI, rd=cond, rs=cond, imm=1)
    with builder.lane_if(cond):
        builder.emit(Opcode.SUB, rd=below, rs=lid, rt=stride)
        builder.emit(Opcode.SLLI, rd=below, rs=below, imm=2)
        builder.emit(Opcode.LLW, rd=augend, rs=below, imm=0)
        builder.emit(Opcode.ADD, rd=value, rs=value, rt=augend)
    builder.emit(Opcode.BARRIER)  # all reads of this round complete
    builder.emit(Opcode.LSW, rs=lid_bytes, rt=value, imm=0)
    builder.emit(Opcode.BARRIER)  # all writes of this round complete
    builder.emit(Opcode.SLLI, rd=stride, rs=stride, imm=1)
    builder.emit(Opcode.JMP, label=top)
    builder.label(done)
    builder.address_of_element(addr, out_ptr, gid)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """Input of ``size`` elements; the scan restarts at workgroup boundaries."""
    if size % 64 != 0:
        raise KernelError(f"inclusive_scan size must be a multiple of 64, got {size}")
    workgroup = pick_pow2_workgroup_size(size)
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 16, size=size, dtype=np.int64)
    expected = a.reshape(-1, workgroup).cumsum(axis=1).reshape(-1) & 0xFFFFFFFF
    return GpuWorkload(
        buffers={"a": a, "out": np.zeros(size, dtype=np.int64)},
        scalars={"n": size},
        expected={"out": expected},
        ndrange=NDRange(size, workgroup),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="per-workgroup inclusive prefix sum (Hillis-Steele)",
        build=build,
        workload=workload,
        paper_gpu_size=8192,
        paper_riscv_size=512,
        parallel_friendly=True,
    )
)
