"""``copy`` micro-benchmark: dst[i] = src[i].

A pure streaming kernel with one load and one store per work-item, fully
coalesced; its speed-up over the RISC-V is bounded by the AXI bandwidth of the
global memory controller rather than by compute, so it scales sub-linearly
beyond a few CUs (Table III: 73k/36k/24k/22k cycles for 1/2/4/8 CUs).
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.kernels.library import (
    GpuWorkload,
    KernelSpec,
    pick_workgroup_size,
    register_kernel,
)

NAME = "copy"


def build() -> Kernel:
    """Build the G-GPU copy kernel."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("src"), KernelArg("dst"), KernelArg("n", "scalar")),
    )
    gid = builder.alloc("gid")
    src = builder.alloc("src")
    dst = builder.alloc("dst")
    addr = builder.alloc("addr")
    value = builder.alloc("value")

    builder.global_id(gid)
    builder.load_arg(src, "src")
    builder.load_arg(dst, "dst")
    builder.address_of_element(addr, src, gid)
    builder.emit(Opcode.LW, rd=value, rs=addr, imm=0)
    builder.address_of_element(addr, dst, gid)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """Random 32-bit payload of ``size`` words."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 2**31, size=size, dtype=np.int64)
    return GpuWorkload(
        buffers={"src": src, "dst": np.zeros(size, dtype=np.int64)},
        scalars={"n": size},
        expected={"dst": src},
        ndrange=NDRange(size, pick_workgroup_size(size)),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="streaming buffer copy (bandwidth bound)",
        build=build,
        workload=workload,
        paper_gpu_size=32768,
        paper_riscv_size=512,
        parallel_friendly=True,
    )
)
