"""``histogram`` micro-benchmark: 256-bin output-driven histogram.

The G-GPU has no atomics, so the kernel uses the output-driven (bin-per-
work-item) formulation: the NDRange covers the 256 bins and every work-item
scans the whole sample buffer, counting the samples whose top byte equals its
bin.  The count update is branchless (the 0/1 comparison result is added
directly), a hand-tuning the OpenCL source deliberately does not apply, and
the per-iteration sample load is wavefront-uniform — all 64 lanes hit the
same word, the best case for the coalescer.  The scalar RISC-V version is the
classic one-pass ``hist[bin]++`` loop, an algorithmically different route to
the identical counts.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.kernels.library import GpuWorkload, KernelSpec, register_kernel

NAME = "histogram"
NUM_BINS = 256
BIN_SHIFT = 24  # bin = top byte of the 32-bit sample


def build() -> Kernel:
    """Build the G-GPU histogram kernel (one bin per work-item)."""
    builder = KernelBuilder(
        NAME,
        args=(KernelArg("a"), KernelArg("hist"), KernelArg("n", "scalar")),
    )
    gid = builder.alloc("gid")
    a_ptr = builder.alloc("a_ptr")
    hist_ptr = builder.alloc("hist_ptr")
    n = builder.alloc("n")
    count = builder.alloc("count")
    j = builder.alloc("j")
    sample_addr = builder.alloc("sample_addr")
    sample = builder.alloc("sample")
    match = builder.alloc("match")
    addr = builder.alloc("addr")

    builder.global_id(gid)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(hist_ptr, "hist")
    builder.load_arg(n, "n")
    builder.emit(Opcode.LI, rd=count, imm=0)
    builder.emit(Opcode.LI, rd=j, imm=0)
    builder.emit(Opcode.ADD, rd=sample_addr, rs=a_ptr, rt=0)
    with builder.uniform_loop(j, n):
        builder.emit(Opcode.LW, rd=sample, rs=sample_addr, imm=0)
        builder.emit(Opcode.SRLI, rd=sample, rs=sample, imm=BIN_SHIFT)
        # Branchless count += (bin == gid): the comparison result is 0/1.
        builder.emit(Opcode.SUB, rd=match, rs=sample, rt=gid)
        builder.emit(Opcode.SLTU, rd=match, rs=0, rt=match)
        builder.emit(Opcode.XORI, rd=match, rs=match, imm=1)
        builder.emit(Opcode.ADD, rd=count, rs=count, rt=match)
        builder.emit(Opcode.ADDI, rd=sample_addr, rs=sample_addr, imm=4)
    builder.address_of_element(addr, hist_ptr, gid)
    builder.emit(Opcode.SW, rs=addr, rt=count, imm=0)
    builder.ret()
    return builder.build()


def workload(size: int, seed: int = 2022) -> GpuWorkload:
    """``size`` samples into 256 bins; the NDRange always covers the bins."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 32, size=size, dtype=np.int64)
    bins = (a >> BIN_SHIFT).astype(np.int64)
    expected = np.bincount(bins, minlength=NUM_BINS).astype(np.int64)
    return GpuWorkload(
        buffers={"a": a, "hist": np.zeros(NUM_BINS, dtype=np.int64)},
        scalars={"n": size},
        expected={"hist": expected},
        ndrange=NDRange(NUM_BINS, 64),
    )


SPEC = register_kernel(
    KernelSpec(
        name=NAME,
        description="256-bin output-driven histogram (uniform loads)",
        build=build,
        workload=workload,
        paper_gpu_size=4096,
        paper_riscv_size=512,
        parallel_friendly=True,
    )
)
