"""End-to-end flow for clustered G-GPUs.

:func:`run_clustered_flow` is the clustered counterpart of
:class:`~repro.planner.flow.GpuPlannerFlow.run`: generate the replicated-
controller netlist, close timing, run logic synthesis, and implement the
design physically with the cluster-tile floorplanner.  The result carries the
same artifacts as the monolithic flow plus the cluster bookkeeping the
evaluation (and the ablation benchmark) needs: the worst CU-to-local-controller
route and the post-route achievable frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import PlanningError
from repro.physical.layout import LayoutResult, PhysicalSynthesis
from repro.planner.optimizer import OptimizationResult, TimingOptimizer
from repro.rtl.generator import GeneratorOptions
from repro.rtl.netlist import Netlist
from repro.scaling.cluster import ClusterConfig, generate_clustered_netlist
from repro.scaling.floorplan import ClusteredFloorplanner
from repro.synth.logic import LogicSynthesis, SynthesisResult
from repro.tech.technology import Technology


@dataclass
class ClusteredFlowResult:
    """Everything one clustered-flow run produced."""

    cluster: ClusterConfig
    target_frequency_mhz: float
    netlist: Netlist
    optimization: OptimizationResult
    synthesis: SynthesisResult
    layout: LayoutResult
    issues: List[str] = field(default_factory=list)

    @property
    def achieved_frequency_mhz(self) -> float:
        """Post-route achievable frequency."""
        return self.layout.achieved_frequency_mhz

    @property
    def meets_specification(self) -> bool:
        """Whether the clustered design closes its target frequency."""
        return not self.issues

    @property
    def worst_cu_route_um(self) -> float:
        """Longest CU-to-local-controller route in the floorplan."""
        return self.layout.floorplan.max_cu_distance_um()

    @property
    def total_area_mm2(self) -> float:
        return self.synthesis.total_area_mm2

    @property
    def total_power_w(self) -> float:
        return self.synthesis.total_power_w

    def summary(self) -> str:
        """Multi-line report of the clustered run."""
        lines = [
            f"== clustered flow: {self.cluster.label} @ {self.target_frequency_mhz:.0f} MHz ==",
            self.optimization.summary(),
            (
                f"logic synthesis: {self.synthesis.total_area_mm2:.2f} mm2, "
                f"{self.synthesis.num_macros} macros, {self.synthesis.total_power_w:.2f} W"
            ),
            (
                f"physical: die {self.layout.floorplan.die_width_um:.0f} x "
                f"{self.layout.floorplan.die_height_um:.0f} um, worst CU route "
                f"{self.worst_cu_route_um:.0f} um, achieved "
                f"{self.achieved_frequency_mhz:.0f} MHz"
            ),
        ]
        if self.issues:
            lines.append("specification issues:")
            lines.extend(f"  - {issue}" for issue in self.issues)
        else:
            lines.append("specification met with replicated memory controllers")
        return "\n".join(lines)


def run_clustered_flow(
    tech: Technology,
    cluster: ClusterConfig,
    target_frequency_mhz: float,
    options: Optional[GeneratorOptions] = None,
    optimizer: Optional[TimingOptimizer] = None,
) -> ClusteredFlowResult:
    """Implement a clustered G-GPU from specification to layout."""
    if target_frequency_mhz <= 0:
        raise PlanningError(f"target frequency must be positive, got {target_frequency_mhz}")
    netlist = generate_clustered_netlist(
        cluster, name=f"{cluster.label}_{target_frequency_mhz:.0f}mhz", options=options
    )
    optimizer = optimizer or TimingOptimizer(tech)
    optimization = optimizer.close_timing(netlist, target_frequency_mhz)
    synthesis = LogicSynthesis(tech).run(netlist, target_frequency_mhz)
    physical = PhysicalSynthesis(tech, floorplanner=ClusteredFloorplanner(cluster))
    layout = physical.run(netlist, synthesis, target_frequency_mhz)

    issues: List[str] = []
    if not optimization.met:
        issues.append(
            f"logic synthesis closes only {optimization.achieved_frequency_mhz:.0f} MHz "
            f"of the {target_frequency_mhz:.0f} MHz target"
        )
    if not layout.timing_met:
        issues.append(
            f"post-route timing closes only {layout.achieved_frequency_mhz:.0f} MHz "
            f"of the {target_frequency_mhz:.0f} MHz target"
        )
    return ClusteredFlowResult(
        cluster=cluster,
        target_frequency_mhz=target_frequency_mhz,
        netlist=netlist,
        optimization=optimization,
        synthesis=synthesis,
        layout=layout,
        issues=issues,
    )
