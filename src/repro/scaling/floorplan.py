"""Floorplanning of clustered G-GPUs (replicated memory controllers).

Each cluster becomes a rectangular tile containing its own memory controller
at the tile centre and its CUs arranged around it; tiles are arranged on a
near-square grid, and the low-density top-level glue keeps its strip at the
bottom of the die.  Because every CU's controller is inside the same tile, the
CU-to-controller route length is bounded by the tile size and no longer grows
with the total CU count -- which is exactly the mechanism the paper proposes
to recover 667 MHz for large CU counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import PhysicalDesignError
from repro.physical.floorplan import Floorplan, PartitionPlacement, Rect
from repro.rtl.netlist import Partition
from repro.scaling.cluster import ClusterConfig
from repro.synth.logic import SynthesisResult


@dataclass
class ClusteredFloorplan(Floorplan):
    """A floorplan whose CUs are served by per-cluster memory controllers.

    ``cu_controller`` maps every CU instance name to the partition-instance
    name of its local controller; the route-length queries the routing
    estimator relies on are overridden to use that local controller instead of
    the (single) central one assumed by the base class.
    """

    cu_controller: Dict[str, str] = field(default_factory=dict)

    def cu_to_memctrl_distance_um(self, cu_name: str) -> float:
        """Manhattan distance between a CU and its *local* memory controller."""
        controller = self.cu_controller.get(cu_name)
        if controller is None:
            raise PhysicalDesignError(f"no cluster controller recorded for {cu_name!r}")
        return self.placement(cu_name).rect.manhattan_distance_to(self.placement(controller).rect)


class ClusteredFloorplanner:
    """Produces a :class:`ClusteredFloorplan` from a synthesis result.

    The interface matches :class:`~repro.physical.floorplan.Floorplanner` so a
    :class:`~repro.physical.layout.PhysicalSynthesis` instance can use it as a
    drop-in replacement.
    """

    # Relative CU slots inside a cluster tile (fractions of the tile extent
    # from the tile centre) -- the same ring the monolithic floorplanner uses,
    # but confined to one tile.
    _RING: Tuple[Tuple[float, float], ...] = (
        (-0.30, 0.0),
        (0.30, 0.0),
        (0.0, -0.32),
        (0.0, 0.32),
        (-0.33, -0.33),
        (0.33, -0.33),
        (-0.33, 0.33),
        (0.33, 0.33),
    )

    def __init__(
        self,
        cluster: ClusterConfig,
        cu_density: float = 0.70,
        memctrl_density: float = 0.70,
        top_density: float = 0.30,
        base_whitespace: float = 1.15,
        congestion_whitespace: float = 0.20,
        reference_frequency_mhz: float = 500.0,
        frequency_span_mhz: float = 167.0,
    ) -> None:
        self.cluster = cluster
        self.cu_density = cu_density
        self.memctrl_density = memctrl_density
        self.top_density = top_density
        self.base_whitespace = base_whitespace
        self.congestion_whitespace = congestion_whitespace
        self.reference_frequency_mhz = reference_frequency_mhz
        self.frequency_span_mhz = frequency_span_mhz

    # ------------------------------------------------------------------ #
    # Sizing
    # ------------------------------------------------------------------ #
    def whitespace_factor(self, frequency_mhz: float) -> float:
        """Extra area reserved for routing at higher target frequencies."""
        overdrive = max(0.0, frequency_mhz - self.reference_frequency_mhz) / self.frequency_span_mhz
        return self.base_whitespace + self.congestion_whitespace * overdrive

    def _footprints(self, synthesis: SynthesisResult) -> Dict[Partition, float]:
        cu_total = synthesis.partitions[Partition.CU].total_area_um2
        memctrl_total = synthesis.partitions[Partition.MEMORY_CONTROLLER].total_area_um2
        top_total = synthesis.partitions[Partition.TOP].total_area_um2
        return {
            Partition.CU: cu_total / max(1, self.cluster.total_cus) / self.cu_density,
            Partition.MEMORY_CONTROLLER: memctrl_total
            / self.cluster.num_clusters
            / self.memctrl_density,
            Partition.TOP: top_total / self.top_density,
        }

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(self, synthesis: SynthesisResult, frequency_mhz: Optional[float] = None) -> ClusteredFloorplan:
        """Floorplan the clustered design for the given frequency."""
        frequency = frequency_mhz if frequency_mhz is not None else synthesis.frequency_mhz
        footprints = self._footprints(synthesis)
        whitespace = self.whitespace_factor(frequency)

        cluster_area = (
            self.cluster.cus_per_cluster * footprints[Partition.CU]
            + footprints[Partition.MEMORY_CONTROLLER]
        ) * whitespace
        tile_height = math.sqrt(cluster_area / 1.10)
        tile_width = cluster_area / tile_height

        columns = math.ceil(math.sqrt(self.cluster.num_clusters))
        rows = math.ceil(self.cluster.num_clusters / columns)
        top_height = max(footprints[Partition.TOP] / (columns * tile_width), 150.0)
        die_width = columns * tile_width
        die_height = rows * tile_height + top_height

        floorplan = ClusteredFloorplan(
            design=synthesis.design,
            target_frequency_mhz=frequency,
            die_width_um=die_width,
            die_height_um=die_height,
        )
        floorplan.placements.append(
            PartitionPlacement(
                "top",
                Partition.TOP,
                Rect(x=0.0, y=0.0, width=die_width, height=top_height),
                self.top_density,
            )
        )

        mc_side = math.sqrt(footprints[Partition.MEMORY_CONTROLLER])
        cu_area = footprints[Partition.CU]
        cu_height = math.sqrt(cu_area / 1.25)
        cu_width = cu_area / cu_height

        for cluster_index in range(self.cluster.num_clusters):
            column = cluster_index % columns
            row = cluster_index // columns
            tile_x = column * tile_width
            tile_y = top_height + row * tile_height
            centre_x = tile_x + tile_width / 2.0
            centre_y = tile_y + tile_height / 2.0

            controller = self.cluster.controller_name(cluster_index)
            floorplan.placements.append(
                PartitionPlacement(
                    controller,
                    Partition.MEMORY_CONTROLLER,
                    Rect(
                        x=centre_x - mc_side / 2.0,
                        y=centre_y - mc_side / 2.0,
                        width=mc_side,
                        height=mc_side,
                    ),
                    self.memctrl_density,
                )
            )
            for local_index, cu_name in enumerate(self.cluster.cu_names(cluster_index)):
                dx, dy = self._RING[local_index]
                cx = centre_x + dx * tile_width
                cy = centre_y + dy * tile_height
                rect = Rect(
                    x=min(max(cx - cu_width / 2.0, tile_x), tile_x + tile_width - cu_width),
                    y=min(max(cy - cu_height / 2.0, tile_y), tile_y + tile_height - cu_height),
                    width=cu_width,
                    height=cu_height,
                )
                floorplan.placements.append(
                    PartitionPlacement(cu_name, Partition.CU, rect, self.cu_density)
                )
                floorplan.cu_controller[cu_name] = controller
        return floorplan
