"""Scaling extensions of GPUPlanner (the paper's future-work section).

The paper's 8-CU layout cannot close 667 MHz because the routes between the
peripheral CUs and the single, central global memory controller are too long;
the authors propose to fix this -- and to scale beyond 8 CUs -- by
*replicating the general memory controller* so every CU sits next to its own
controller.  This package implements that proposal:

* :class:`~repro.scaling.cluster.ClusterConfig` describes a G-GPU built as
  ``num_clusters`` clusters of up to 8 CUs, each cluster with its own global
  memory controller.
* :func:`~repro.scaling.cluster.generate_clustered_netlist` produces the
  corresponding netlist (replicated controllers, per-cluster CU-to-controller
  interface paths, an inter-cluster interconnect).
* :class:`~repro.scaling.floorplan.ClusteredFloorplanner` floorplans the
  clusters as tiles so every CU's controller is nearby, which is what removes
  the wire-delay wall.
* :func:`~repro.scaling.flow.run_clustered_flow` chains netlist generation,
  timing closure, logic synthesis, and physical synthesis for a clustered
  specification -- the clustered counterpart of
  :class:`~repro.planner.flow.GpuPlannerFlow`.
"""

from repro.scaling.cluster import ClusterConfig, generate_clustered_netlist
from repro.scaling.floorplan import ClusteredFloorplan, ClusteredFloorplanner
from repro.scaling.flow import ClusteredFlowResult, run_clustered_flow

__all__ = [
    "ClusterConfig",
    "generate_clustered_netlist",
    "ClusteredFloorplan",
    "ClusteredFloorplanner",
    "ClusteredFlowResult",
    "run_clustered_flow",
]
