"""Clustered G-GPU configuration and netlist generation.

A *clustered* G-GPU is built from ``num_clusters`` identical clusters; each
cluster contains up to 8 CUs and one replica of the global memory controller
(cache, tag store, data movers, AXI FIFOs).  Clusters talk to the shared top
level (runtime memory, AXI control interface, workgroup dispatcher) over a
pipelinable inter-cluster ring.

Compared with the paper's monolithic design this changes two things:

* the CU-to-controller interface paths connect each CU to its *local*
  controller, so their routed length no longer grows with the total CU count
  (the fix the paper proposes for the 8-CU, 667 MHz wall), and
* the total CU count may exceed 8 (the second item of the paper's future
  work), at the cost of one extra controller's area and power per cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.arch.config import GGPUConfig
from repro.errors import ConfigurationError
from repro.rtl.generator import (
    CROSSING_LOGIC_LEVELS,
    CROSSING_WIDTH_BITS,
    CU_LOGIC,
    CU_LOGIC_PATHS,
    CU_MEMORIES,
    GeneratorOptions,
    MEMCTRL_LOGIC,
    MEMCTRL_LOGIC_PATHS,
    MEMCTRL_MEMORIES,
    TOP_LOGIC,
    TOP_MEMORIES,
    _add_partition_logic,
    _add_partition_memories,
)
from repro.rtl.netlist import LogicBlock, Netlist, Partition, TimingPath

# Structure of the inter-cluster interconnect (a registered ring between the
# cluster controllers and the shared top level).
RING_LOGIC_LEVELS = 10
RING_WIDTH_BITS = 64
RING_FF_PER_CLUSTER = 1400
RING_GATES_PER_CLUSTER = 1800


@dataclass(frozen=True)
class ClusterConfig:
    """A G-GPU built as ``num_clusters`` clusters of ``cus_per_cluster`` CUs.

    Attributes
    ----------
    num_clusters:
        Number of clusters, each with its own global memory controller.
    cus_per_cluster:
        CUs per cluster; the FGPU-derived cluster keeps the paper's 1-8 limit.
    base:
        Per-cluster architecture configuration (cache and AXI geometry of each
        cluster's controller).  Defaults to the standard configuration with
        ``cus_per_cluster`` CUs.
    """

    num_clusters: int
    cus_per_cluster: int
    base: Optional[GGPUConfig] = field(default=None)

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ConfigurationError(f"at least one cluster is required, got {self.num_clusters}")
        if self.num_clusters > 8:
            raise ConfigurationError(
                f"the clustered floorplanner supports up to 8 clusters, got {self.num_clusters}"
            )
        if not 1 <= self.cus_per_cluster <= 8:
            raise ConfigurationError(
                f"a cluster holds 1 to 8 CUs (the FGPU limit), got {self.cus_per_cluster}"
            )
        if self.base is not None and self.base.num_cus != self.cus_per_cluster:
            raise ConfigurationError(
                "the base GGPUConfig must match cus_per_cluster "
                f"({self.base.num_cus} != {self.cus_per_cluster})"
            )

    @property
    def total_cus(self) -> int:
        """Total number of CUs across all clusters."""
        return self.num_clusters * self.cus_per_cluster

    @property
    def label(self) -> str:
        """Short identifier used in reports (e.g. ``16cu_4x4``)."""
        return f"{self.total_cus}cu_{self.num_clusters}x{self.cus_per_cluster}"

    def cluster_architecture(self) -> GGPUConfig:
        """The architecture configuration of one cluster."""
        if self.base is not None:
            return self.base
        return GGPUConfig(num_cus=self.cus_per_cluster)

    def cu_names(self, cluster_index: int):
        """Global CU instance names belonging to one cluster."""
        start = cluster_index * self.cus_per_cluster
        return [f"cu{start + local}" for local in range(self.cus_per_cluster)]

    def controller_name(self, cluster_index: int) -> str:
        """Partition-instance name of one cluster's memory controller."""
        return f"memctrl{cluster_index}"

    def cluster_of_cu(self, cu_name: str) -> int:
        """Cluster index owning the named CU instance."""
        try:
            index = int(cu_name.removeprefix("cu"))
        except ValueError as exc:
            raise ConfigurationError(f"not a CU instance name: {cu_name!r}") from exc
        if not 0 <= index < self.total_cus:
            raise ConfigurationError(f"{cu_name!r} is outside this {self.total_cus}-CU design")
        return index // self.cus_per_cluster


def generate_clustered_netlist(
    cluster: ClusterConfig,
    name: str = "",
    options: Optional[GeneratorOptions] = None,
) -> Netlist:
    """Generate the netlist of a clustered G-GPU with replicated controllers."""
    netlist_name = name or f"ggpu_{cluster.label}"
    netlist = Netlist(netlist_name, num_cus=cluster.total_cus)

    for cluster_index in range(cluster.num_clusters):
        controller = cluster.controller_name(cluster_index)
        # CUs of this cluster.
        for cu_name in cluster.cu_names(cluster_index):
            _add_partition_memories(netlist, CU_MEMORIES, Partition.CU, cu_name, options)
            _add_partition_logic(netlist, CU_LOGIC, Partition.CU, cu_name)
            for suffix, levels, width in CU_LOGIC_PATHS:
                netlist.add_timing_path(
                    TimingPath(
                        name=f"{cu_name}/{suffix}",
                        partition=Partition.CU,
                        logic_levels=levels,
                        width_bits=width,
                    )
                )
            # Interface to the *local* (same-cluster) memory controller.  The
            # physical stage annotates these with the in-cluster route length,
            # which stays short regardless of the total CU count.
            for direction in ("request", "response"):
                netlist.add_timing_path(
                    TimingPath(
                        name=f"top/{cu_name}_{direction}",
                        partition=Partition.TOP,
                        logic_levels=CROSSING_LOGIC_LEVELS,
                        width_bits=CROSSING_WIDTH_BITS,
                        crosses_partitions=True,
                        pipelinable=False,
                    )
                )
        # This cluster's replica of the global memory controller.
        _add_partition_memories(
            netlist, MEMCTRL_MEMORIES, Partition.MEMORY_CONTROLLER, controller, options
        )
        for block in MEMCTRL_LOGIC:
            netlist.add_logic_block(
                LogicBlock(
                    name=f"{controller}/{block.name}",
                    partition=Partition.MEMORY_CONTROLLER,
                    num_ff=block.num_ff,
                    num_gates=block.num_gates,
                    description=block.description,
                )
            )
        for suffix, levels, width in MEMCTRL_LOGIC_PATHS:
            netlist.add_timing_path(
                TimingPath(
                    name=f"{controller}/{suffix}",
                    partition=Partition.MEMORY_CONTROLLER,
                    logic_levels=levels,
                    width_bits=width,
                )
            )

    # Shared top level: runtime memory, AXI control, dispatcher, plus the
    # inter-cluster ring that replaces the single controller's star topology.
    _add_partition_memories(netlist, TOP_MEMORIES, Partition.TOP, "top", options)
    _add_partition_logic(netlist, TOP_LOGIC, Partition.TOP, "top")
    if cluster.num_clusters > 1:
        netlist.add_logic_block(
            LogicBlock(
                name="top/cluster_interconnect",
                partition=Partition.TOP,
                num_ff=RING_FF_PER_CLUSTER * cluster.num_clusters,
                num_gates=RING_GATES_PER_CLUSTER * cluster.num_clusters,
                description="registered ring between the cluster memory controllers",
            )
        )
        netlist.add_timing_path(
            TimingPath(
                name="top/cluster_ring",
                partition=Partition.TOP,
                logic_levels=RING_LOGIC_LEVELS,
                width_bits=RING_WIDTH_BITS,
                pipelinable=True,
            )
        )
    return netlist
