"""Standard-cell library model."""

import pytest

from repro.errors import TechnologyError
from repro.tech.stdcell import StdCellLibrary


@pytest.fixture
def lib() -> StdCellLibrary:
    return StdCellLibrary()


def test_logic_area_scales_with_instances(lib):
    small = lib.logic_area(1000, 1000)
    large = lib.logic_area(2000, 2000)
    assert large == pytest.approx(2 * small)
    assert lib.logic_area(0, 0) == 0.0


def test_ff_larger_than_gate(lib):
    assert lib.ff_area_um2 > lib.gate_area_um2


def test_logic_area_rejects_negative_counts(lib):
    with pytest.raises(TechnologyError):
        lib.logic_area(-1, 10)
    with pytest.raises(TechnologyError):
        lib.logic_area(10, -1)


def test_leakage_positive_and_additive(lib):
    ff_only = lib.logic_leakage_mw(1000, 0)
    gate_only = lib.logic_leakage_mw(0, 1000)
    both = lib.logic_leakage_mw(1000, 1000)
    assert ff_only > 0 and gate_only > 0
    assert both == pytest.approx(ff_only + gate_only)


def test_dynamic_power_scales_with_frequency(lib):
    at_500 = lib.logic_dynamic_mw(10000, 10000, 500.0)
    at_667 = lib.logic_dynamic_mw(10000, 10000, 667.0)
    assert at_667 == pytest.approx(at_500 * 667.0 / 500.0)


def test_dynamic_power_rejects_bad_frequency(lib):
    with pytest.raises(TechnologyError):
        lib.logic_dynamic_mw(10, 10, 0.0)


def test_path_delay_levels(lib):
    assert lib.path_delay(0) == 0.0
    assert lib.path_delay(10) == pytest.approx(10 * lib.gate_delay_ns)
    assert lib.path_delay(4, 2) == pytest.approx(4 * lib.gate_delay_ns + 2 * lib.mux2_delay_ns)


def test_path_delay_rejects_negative_levels(lib):
    with pytest.raises(TechnologyError):
        lib.path_delay(-1)


def test_register_overhead_is_clk_to_q_plus_setup(lib):
    assert lib.register_to_register_overhead() == pytest.approx(
        lib.ff_clk_to_q_ns + lib.ff_setup_ns
    )
