"""Three-way differential conformance harness for the kernel library.

For every registered kernel — the paper's seven and the six extended-suite
ones — this module computes the outputs on four independent paths and pins
them bit-exactly (as 32-bit words) against each other:

1. an *independent pure-python reference* (plain loops, no numpy, written
   from the kernel's mathematical definition — deliberately not the numpy
   expression the workload generator uses),
2. the hand-written G-GPU kernel (``repro.kernels``) at 1/2/4 CUs,
3. the CL-compiled G-GPU kernel (``repro.cl``),
4. the hand-written scalar RISC-V program (``repro.riscv.programs``).

This is the invariant that makes the kernel suite safe to grow: any
divergence between the compiler, either backend, the workload generators, or
the simulator's functional model fails here with the kernel, size, and CU
count in the test id.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.arch.config import GGPUConfig
from repro.cl import compile_source, get_benchmark_source
from repro.kernels import all_kernel_names, get_kernel_spec, run_workload
from repro.kernels.library import GpuWorkload
from repro.riscv.programs import get_riscv_program_spec
from repro.simt.gpu import GGPUSimulator

MASK = 0xFFFFFFFF
SEED = 13
SIZES = (128, 256)
CU_COUNTS = (1, 2, 4)


# --------------------------------------------------------------------------- #
# Pure-python references (plain loops, 32-bit wrap-around arithmetic)
# --------------------------------------------------------------------------- #
def _ref_mat_mul(w: GpuWorkload) -> Dict[str, List[int]]:
    a = [int(v) for v in w.buffers["a"]]
    b = [int(v) for v in w.buffers["b"]]
    size = int(w.scalars["n"])
    rows = size // 64
    out = []
    for row in range(rows):
        for col in range(64):
            acc = 0
            for k in range(64):
                acc = (acc + a[row * 64 + k] * b[k * 64 + col]) & MASK
            out.append(acc)
    return {"c": out}


def _ref_copy(w: GpuWorkload) -> Dict[str, List[int]]:
    return {"dst": [int(v) & MASK for v in w.buffers["src"]]}


def _ref_vec_mul(w: GpuWorkload) -> Dict[str, List[int]]:
    a, b = w.buffers["a"], w.buffers["b"]
    return {"out": [(int(x) * int(y)) & MASK for x, y in zip(a, b, strict=True)]}


def _ref_fir(w: GpuWorkload) -> Dict[str, List[int]]:
    x = [int(v) for v in w.buffers["x"]]
    coeff = [int(v) for v in w.buffers["coeff"]]
    size = int(w.scalars["n"])
    out = []
    for i in range(size):
        acc = 0
        for tap, weight in enumerate(coeff):
            acc = (acc + x[i + tap] * weight) & MASK
        out.append(acc)
    return {"y": out}


def _ref_div_int(w: GpuWorkload) -> Dict[str, List[int]]:
    # The 32-step restoring division the hardware-less FGPU runs in software.
    out = []
    for a, b in zip(w.buffers["a"], w.buffers["b"], strict=True):
        dividend, divisor = int(a) & MASK, int(b) & MASK
        remainder = quotient = 0
        for _ in range(32):
            bit = dividend >> 31
            dividend = (dividend << 1) & MASK
            remainder = ((remainder << 1) | bit) & MASK
            quotient = (quotient << 1) & MASK
            if remainder >= divisor:
                remainder -= divisor
                quotient |= 1
        out.append(quotient)
    return {"q": out}


def _ref_xcorr(w: GpuWorkload) -> Dict[str, List[int]]:
    x = [int(v) for v in w.buffers["x"]]
    y = [int(v) for v in w.buffers["y"]]
    size = int(w.scalars["n"])
    out = []
    for i in range(size):
        acc = 0
        for t in range(256):
            acc = (acc + x[t] * y[i * 16 + t]) & MASK
        out.append(acc)
    return {"out": out}


def _ref_parallel_sel(w: GpuWorkload) -> Dict[str, List[int]]:
    a = [int(v) for v in w.buffers["a"]]
    out = [0] * len(a)
    for value in a:
        rank = sum(1 for other in a if other < value)
        out[rank] = value & MASK
    return {"out": out}


def _ref_saxpy(w: GpuWorkload) -> Dict[str, List[int]]:
    alpha = int(w.scalars["alpha"])
    x, y = w.buffers["x"], w.buffers["y"]
    return {"out": [(alpha * int(u) + int(v)) & MASK for u, v in zip(x, y, strict=True)]}


def _ref_dot(w: GpuWorkload) -> Dict[str, List[int]]:
    a = [int(v) for v in w.buffers["a"]]
    b = [int(v) for v in w.buffers["b"]]
    group = w.ndrange.workgroup_size
    out = []
    for start in range(0, len(a), group):
        acc = 0
        for i in range(start, start + group):
            acc = (acc + a[i] * b[i]) & MASK
        out.append(acc)
    return {"partial": out}


def _ref_reduce_sum(w: GpuWorkload) -> Dict[str, List[int]]:
    a = [int(v) for v in w.buffers["a"]]
    group = w.ndrange.workgroup_size
    out = []
    for start in range(0, len(a), group):
        out.append(sum(a[start : start + group]) & MASK)
    return {"partial": out}


def _ref_inclusive_scan(w: GpuWorkload) -> Dict[str, List[int]]:
    a = [int(v) for v in w.buffers["a"]]
    group = w.ndrange.workgroup_size
    out = []
    for start in range(0, len(a), group):
        acc = 0
        for i in range(start, start + group):
            acc = (acc + a[i]) & MASK
            out.append(acc)
    return {"out": out}


def _ref_histogram(w: GpuWorkload) -> Dict[str, List[int]]:
    counts = [0] * 256
    for value in w.buffers["a"]:
        counts[(int(value) & MASK) >> 24] += 1
    return {"hist": counts}


def _ref_transpose(w: GpuWorkload) -> Dict[str, List[int]]:
    a = [int(v) for v in w.buffers["a"]]
    rows = int(w.scalars["rows"])
    out = [0] * len(a)
    for i, value in enumerate(a):
        row, col = i // 64, i % 64
        out[col * rows + row] = value & MASK
    return {"out": out}


def _ref_matmul2d(w: GpuWorkload) -> Dict[str, List[int]]:
    a = [int(v) for v in w.buffers["a"]]
    b = [int(v) for v in w.buffers["b"]]
    rows = int(w.scalars["m"])
    out = []
    for row in range(rows):
        for col in range(16):
            acc = 0
            for k in range(16):
                acc = (acc + a[row * 16 + k] * b[k * 16 + col]) & MASK
            out.append(acc)
    return {"c": out}


def _ref_conv2d(w: GpuWorkload) -> Dict[str, List[int]]:
    src = [int(v) for v in w.buffers["src"]]
    krn = [int(v) for v in w.buffers["krn"]]
    height = int(w.scalars["h"])
    stride = 16 + 2
    out = []
    for y in range(height):
        for x in range(16):
            acc = 0
            for ky in range(3):
                for kx in range(3):
                    acc = (acc + src[(y + ky) * stride + x + kx] * krn[ky * 3 + kx]) & MASK
            out.append(acc)
    return {"out": out}


def _ref_bitonic_sort(w: GpuWorkload) -> Dict[str, List[int]]:
    a = [int(v) & MASK for v in w.buffers["a"]]
    out: List[int] = []
    for base in range(0, len(a), 64):
        out.extend(sorted(a[base : base + 64]))
    return {"out": out}


PYTHON_REFERENCES = {
    "mat_mul": _ref_mat_mul,
    "copy": _ref_copy,
    "vec_mul": _ref_vec_mul,
    "fir": _ref_fir,
    "div_int": _ref_div_int,
    "xcorr": _ref_xcorr,
    "parallel_sel": _ref_parallel_sel,
    "saxpy": _ref_saxpy,
    "dot": _ref_dot,
    "reduce_sum": _ref_reduce_sum,
    "inclusive_scan": _ref_inclusive_scan,
    "histogram": _ref_histogram,
    "transpose": _ref_transpose,
    "matmul2d": _ref_matmul2d,
    "conv2d": _ref_conv2d,
    "bitonic_sort": _ref_bitonic_sort,
}


def _as_u32(values) -> List[int]:
    return [int(v) & MASK for v in values]


def test_every_library_kernel_has_a_python_reference():
    assert sorted(PYTHON_REFERENCES) == sorted(all_kernel_names())


# --------------------------------------------------------------------------- #
# The differential matrix
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(PYTHON_REFERENCES))
def test_python_reference_matches_workload_expectation(name, size):
    """The independent python loops agree with the numpy workload generator."""
    workload = get_kernel_spec(name).workload(size, SEED)
    reference = PYTHON_REFERENCES[name](workload)
    assert sorted(reference) == sorted(workload.expected)
    for buffer_name, values in reference.items():
        assert values == _as_u32(workload.expected[buffer_name]), (
            f"{name}: python reference disagrees with the numpy expectation "
            f"in {buffer_name!r}"
        )


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("name", sorted(PYTHON_REFERENCES))
def test_ggpu_riscv_and_python_agree_bit_exactly(name, size):
    """Hand-written G-GPU (1/2/4 CUs) == scalar RISC-V == python reference."""
    spec = get_kernel_spec(name)
    workload = spec.workload(size, SEED)
    reference = {
        buffer: values
        for buffer, values in PYTHON_REFERENCES[name](workload).items()
    }

    for num_cus in CU_COUNTS:
        simulator = GGPUSimulator(GGPUConfig(num_cus=num_cus), memory_bytes=16 * 1024 * 1024)
        # check=False: this test *is* the checker; it must compare raw outputs.
        _, gpu_outputs = run_workload(
            simulator, spec.build(), spec.workload(size, SEED), check=False
        )
        for buffer, values in reference.items():
            assert _as_u32(gpu_outputs[buffer]) == values, (
                f"{name} at size {size} on {num_cus} CU(s): G-GPU output "
                f"{buffer!r} diverges from the python reference"
            )

    riscv_case = get_riscv_program_spec(name).build_case(size, SEED)
    _, riscv_outputs = riscv_case.run(check=False)
    for buffer, values in reference.items():
        assert _as_u32(riscv_outputs[buffer]) == values, (
            f"{name} at size {size}: RISC-V output {buffer!r} diverges from "
            f"the python reference"
        )


@pytest.mark.parametrize("name", sorted(PYTHON_REFERENCES))
def test_cl_compiled_kernel_agrees_with_python_reference(name):
    """The CL-compiled G-GPU kernel joins the same equivalence class."""
    size = SIZES[0]
    spec = get_kernel_spec(name)
    workload = spec.workload(size, SEED)
    reference = PYTHON_REFERENCES[name](workload)
    kernel = compile_source(get_benchmark_source(name)).to_ggpu_kernel()
    simulator = GGPUSimulator(GGPUConfig(num_cus=2), memory_bytes=16 * 1024 * 1024)
    _, outputs = run_workload(simulator, kernel, workload, check=False)
    for buffer, values in reference.items():
        assert _as_u32(outputs[buffer]) == values, (
            f"{name}: CL-compiled output {buffer!r} diverges from the python reference"
        )


def test_differential_harness_detects_divergence():
    """Sanity check that the comparison really bites: corrupt one output."""
    workload = get_kernel_spec("copy").workload(128, SEED)
    reference = PYTHON_REFERENCES["copy"](workload)
    corrupted = list(reference["dst"])
    corrupted[17] ^= 1
    assert corrupted != reference["dst"]
