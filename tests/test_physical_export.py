"""Tests for the DEF/LEF/SVG layout exporters."""

from __future__ import annotations

import json

import pytest

from repro.arch.config import GGPUConfig
from repro.errors import PhysicalDesignError
from repro.physical.export import (
    DEF_UNITS_PER_UM,
    build_def,
    build_lef,
    export_layout_bundle,
    macro_cell_name,
    parse_def_components,
    parse_def_die_area_um,
    render_svg,
)
from repro.physical.layout import PhysicalSynthesis
from repro.planner.optimizer import TimingOptimizer
from repro.rtl.generator import generate_ggpu_netlist
from repro.synth.logic import LogicSynthesis
from repro.tech.sram import SramMacroSpec, SramPort
from repro.tech.technology import default_65nm


@pytest.fixture(scope="module")
def implemented():
    """One fully implemented 1-CU, 667 MHz version (netlist + layout)."""
    tech = default_65nm()
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1), name="export_1cu_667")
    TimingOptimizer(tech).close_timing(netlist, 667.0)
    synthesis = LogicSynthesis(tech).run(netlist, 667.0)
    layout = PhysicalSynthesis(tech).run(netlist, synthesis, 667.0)
    return tech, netlist, layout


def test_macro_cell_names():
    assert macro_cell_name(SramMacroSpec(1024, 32, SramPort.DUAL)) == "SRAM_DP_1024X32"
    assert macro_cell_name(SramMacroSpec(64, 8, SramPort.SINGLE)) == "SRAM_SP_64X8"


def test_def_contains_every_placed_macro(implemented):
    tech, netlist, layout = implemented
    text = build_def(layout, netlist)
    components = parse_def_components(text)
    assert len(components) == len(layout.macro_placements)
    die_w, die_h = parse_def_die_area_um(text)
    assert die_w == pytest.approx(layout.floorplan.die_width_um, abs=0.01)
    assert die_h == pytest.approx(layout.floorplan.die_height_um, abs=0.01)


def test_def_component_coordinates_round_trip(implemented):
    tech, netlist, layout = implemented
    text = build_def(layout, netlist)
    components = {name: (x, y) for name, _, x, y in parse_def_components(text)}
    for macro in layout.macro_placements[:25]:
        name = macro.name.replace("/", "_")
        assert name in components
        x_dbu, y_dbu = components[name]
        assert x_dbu == pytest.approx(macro.rect.x * DEF_UNITS_PER_UM, abs=1)
        assert y_dbu == pytest.approx(macro.rect.y * DEF_UNITS_PER_UM, abs=1)


def test_def_components_stay_inside_the_die(implemented):
    tech, netlist, layout = implemented
    text = build_def(layout, netlist)
    die_w, die_h = parse_def_die_area_um(text)
    for _, _, x, y in parse_def_components(text):
        assert 0 <= x <= die_w * DEF_UNITS_PER_UM
        assert 0 <= y <= die_h * DEF_UNITS_PER_UM * 2.5  # shelf packer may overflow vertically


def test_def_regions_cover_all_partitions(implemented):
    tech, netlist, layout = implemented
    text = build_def(layout, netlist)
    for placement in layout.floorplan.placements:
        assert f"- {placement.name} (" in text


def test_lef_lists_every_distinct_geometry(implemented):
    tech, netlist, layout = implemented
    text = build_lef(netlist, tech)
    expected = {macro_cell_name(group.macro) for group in netlist.memory_group_list()}
    for cell in expected:
        assert f"MACRO {cell}" in text
        assert f"END {cell}" in text
    assert text.count("MACRO ") == len(expected)
    assert "SIZE" in text and "END LIBRARY" in text


def test_svg_renders_partitions_and_macros(implemented):
    tech, netlist, layout = implemented
    svg = render_svg(layout, netlist)
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert svg.count('class="partition"') == len(layout.floorplan.placements)
    assert svg.count('class="macro"') == len(layout.macro_placements)


def test_svg_colours_divided_macros_differently(implemented):
    tech, netlist, layout = implemented
    svg = render_svg(layout, netlist)
    assert 'fill="#b8b8b8"' in svg  # untouched memories
    assert 'fill="#3cb44b"' in svg  # CU memories divided for 667 MHz


def test_svg_width_validation(implemented):
    tech, netlist, layout = implemented
    with pytest.raises(PhysicalDesignError):
        render_svg(layout, netlist, width_px=10)


def test_export_bundle_writes_all_four_artifacts(tmp_path, implemented):
    tech, netlist, layout = implemented
    paths = export_layout_bundle(layout, netlist, tech, str(tmp_path / "ip"))
    assert set(paths) == {"def", "lef", "svg", "json"}
    for path in paths.values():
        assert (tmp_path / "ip").exists()
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read().strip()
    with open(paths["json"], "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["design"] == layout.design
    assert len(payload["macros"]) == len(layout.macro_placements)
