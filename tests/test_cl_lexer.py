"""Unit tests for the OpenCL-C lexer."""

from __future__ import annotations

import pytest

from repro.cl.lexer import Token, TokenKind, tokenize
from repro.errors import CompilationError


def kinds(source: str):
    return [token.kind for token in tokenize(source)[:-1]]


def texts(source: str):
    return [token.text for token in tokenize(source)[:-1]]


def test_empty_source_yields_only_end_token():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.END


def test_keywords_and_identifiers_are_distinguished():
    tokens = tokenize("__kernel void foo int uint bar")
    assert [token.kind for token in tokens[:-1]] == [
        TokenKind.KEYWORD,
        TokenKind.KEYWORD,
        TokenKind.IDENT,
        TokenKind.KEYWORD,
        TokenKind.KEYWORD,
        TokenKind.IDENT,
    ]


def test_decimal_and_hex_numbers_carry_their_value():
    tokens = tokenize("42 0x1F 0 123456789")
    assert [token.value for token in tokens[:-1]] == [42, 31, 0, 123456789]
    assert all(token.kind is TokenKind.NUMBER for token in tokens[:-1])


def test_integer_suffixes_are_accepted_and_discarded():
    tokens = tokenize("7u 8U 9L")
    assert [token.value for token in tokens[:-1]] == [7, 8, 9]


def test_identifier_starting_with_digit_is_rejected():
    with pytest.raises(CompilationError):
        tokenize("int 3abc;")


def test_multi_character_operators_use_maximal_munch():
    assert texts("a <<= b >> c >= d == e && f") == [
        "a",
        "<<=",
        "b",
        ">>",
        "c",
        ">=",
        "d",
        "==",
        "e",
        "&&",
        "f",
    ]


def test_increment_and_decrement_tokens():
    assert texts("i++ ; j--") == ["i", "++", ";", "j", "--"]


def test_line_comments_are_skipped():
    assert texts("a // comment with * and /\n b") == ["a", "b"]


def test_block_comments_are_skipped_and_may_span_lines():
    assert texts("a /* one\n two */ b") == ["a", "b"]


def test_unterminated_block_comment_is_an_error():
    with pytest.raises(CompilationError):
        tokenize("a /* never closed")


def test_unexpected_character_is_an_error():
    with pytest.raises(CompilationError):
        tokenize("int a = @;")


def test_line_and_column_tracking():
    tokens = tokenize("int a;\n  b = 1;")
    ident_b = [token for token in tokens if token.text == "b"][0]
    assert ident_b.line == 2
    assert ident_b.column == 3


def test_token_helpers():
    token = Token(TokenKind.OPERATOR, "+", 1, 1)
    assert token.is_op("+")
    assert not token.is_op("-")
    assert not token.is_keyword("if")
    assert token.location() == "1:1"


def test_kernel_source_tokenizes_end_to_end():
    source = "__kernel void f(__global int *a) { a[0] = 1; }"
    token_kinds = kinds(source)
    assert TokenKind.KEYWORD in token_kinds
    assert TokenKind.IDENT in token_kinds
    assert TokenKind.NUMBER in token_kinds
    assert tokenize(source)[-1].kind is TokenKind.END
