"""Hypothesis fuzz tests for the CL compiler paths the extended suite exercises.

Three templates, each instantiated with randomly drawn constants, compiled
and executed on *both* backends (G-GPU SIMT and scalar RISC-V) and compared
bit-exactly against a pure-python model:

* **barriers in loops + local-memory accumulation** — a counted loop whose
  body stages through ``__local`` memory with two barriers per iteration;
* **cross-lane local gather** — lanes read a lower lane's slot after a
  barrier, under a divergent mask (serialization-safe: only *backward* lane
  dependencies, which the RISC-V work-item loop preserves);
* **strided global indexing** — block-transpose-style scatter stores plus
  modular strided gather reads.

The drawn constants steer register pressure, immediate-vs-register operand
selection, mask nesting, and address patterns through compiler paths the
fixed benchmark sources touch only at single points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch.config import GGPUConfig
from repro.arch.kernel import NDRange
from repro.cl import compile_source
from repro.kernels.library import GpuWorkload
from repro.simt.gpu import GGPUSimulator

MASK = 0xFFFFFFFF

FUZZ_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run_both_backends(source: str, workload: GpuWorkload, expected: np.ndarray):
    """Compile ``source`` and pin GGPU, RISC-V, and the model bit-exactly."""
    program = compile_source(source)
    expected_u32 = np.asarray(expected, dtype=np.int64) & MASK

    kernel = program.to_ggpu_kernel()
    simulator = GGPUSimulator(GGPUConfig(num_cus=2), memory_bytes=4 * 1024 * 1024)
    addresses = {}
    args = {}
    for name, contents in workload.buffers.items():
        addresses[name] = simulator.create_buffer(np.asarray(contents, dtype=np.int64) & MASK)
        args[name] = addresses[name]
    args.update({name: int(value) for name, value in workload.scalars.items()})
    simulator.launch(kernel, workload.ndrange, args)
    (out_name, out_expected), = workload.expected.items()
    gpu_out = simulator.read_buffer(addresses[out_name], len(out_expected)).astype(np.int64)
    assert np.array_equal(gpu_out, expected_u32), "G-GPU output diverges from the model"

    case = program.to_riscv_case(workload, memory_bytes=64 * 1024)
    _, riscv_outputs = case.run(check=False)
    riscv_out = riscv_outputs[out_name].astype(np.int64)
    assert np.array_equal(riscv_out, expected_u32), "RISC-V output diverges from the model"


# --------------------------------------------------------------------------- #
# Template 1: barriers inside a counted loop, own-slot local accumulation
# --------------------------------------------------------------------------- #
@FUZZ_SETTINGS
@given(
    rounds=st.integers(min_value=1, max_value=4),
    c0=st.integers(min_value=0, max_value=8000),
    c1=st.integers(min_value=1, max_value=127),
    c2=st.integers(min_value=0, max_value=8000),
    op=st.sampled_from(["+", "^", "|"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fuzz_barrier_loop_local_accumulation(rounds, c0, c1, c2, op, seed):
    source = f"""
    __kernel void fuzz_local(__global int *a, __global int *out, int n) {{
        int gid = get_global_id(0);
        int lid = get_local_id(0);
        __local int tmp[64];
        int acc = {c0};
        for (int r = 0; r < {rounds}; r += 1) {{
            tmp[lid] = acc + a[gid] * (r + {c1});
            barrier(CLK_LOCAL_MEM_FENCE);
            acc = (acc {op} tmp[lid]) + {c2};
            barrier(CLK_LOCAL_MEM_FENCE);
        }}
        out[gid] = acc;
    }}
    """
    n = 128
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 16, size=n, dtype=np.int64)

    acc = np.full(n, c0, dtype=np.int64)
    for r in range(rounds):
        staged = (acc + a * (r + c1)) & MASK
        if op == "+":
            acc = acc + staged
        elif op == "^":
            acc = acc ^ staged
        else:
            acc = acc | staged
        acc = (acc + c2) & MASK

    workload = GpuWorkload(
        buffers={"a": a, "out": np.zeros(n, dtype=np.int64)},
        scalars={"n": n},
        expected={"out": acc},
        ndrange=NDRange(n, 64),
    )
    _run_both_backends(source, workload, acc)


# --------------------------------------------------------------------------- #
# Template 2: cross-lane local gather (backward dependencies only)
# --------------------------------------------------------------------------- #
@FUZZ_SETTINGS
@given(
    shift=st.integers(min_value=1, max_value=63),
    scale=st.integers(min_value=1, max_value=100),
    weight=st.integers(min_value=1, max_value=100),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fuzz_cross_lane_local_gather(shift, scale, weight, seed):
    source = f"""
    __kernel void fuzz_gather(__global int *a, __global int *out, int n) {{
        int gid = get_global_id(0);
        int lid = get_local_id(0);
        __local int tmp[64];
        tmp[lid] = a[gid] * {scale};
        barrier(CLK_LOCAL_MEM_FENCE);
        int acc = tmp[lid];
        if (lid >= {shift}) {{
            acc += tmp[lid - {shift}] * {weight};
        }}
        out[gid] = acc;
    }}
    """
    n = 192  # three 64-lane workgroups
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 16, size=n, dtype=np.int64)

    staged = (a * scale) & MASK
    acc = staged.copy()
    lids = np.arange(n) % 64
    gather = np.where(lids >= shift, np.roll(staged, shift), 0)
    acc = (acc + np.where(lids >= shift, gather * weight, 0)) & MASK

    workload = GpuWorkload(
        buffers={"a": a, "out": np.zeros(n, dtype=np.int64)},
        scalars={"n": n},
        expected={"out": acc},
        ndrange=NDRange(n, 64),
    )
    _run_both_backends(source, workload, acc)


# --------------------------------------------------------------------------- #
# Template 3: strided global indexing (scatter stores + modular gathers)
# --------------------------------------------------------------------------- #
@FUZZ_SETTINGS
@given(
    width=st.sampled_from([2, 4, 8, 16]),
    stride=st.integers(min_value=1, max_value=63),
    taps=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_fuzz_strided_global_indexing(width, stride, taps, seed):
    source = f"""
    __kernel void fuzz_stride(__global int *a, __global int *out, int n) {{
        int gid = get_global_id(0);
        int acc = 0;
        for (int j = 0; j < {taps}; j += 1) {{
            acc += a[(gid + j * {stride}) % n];
        }}
        int row = gid / {width};
        int col = gid % {width};
        out[col * (n / {width}) + row] = acc;
    }}
    """
    n = 128
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 16, size=n, dtype=np.int64)

    gids = np.arange(n)
    acc = np.zeros(n, dtype=np.int64)
    for j in range(taps):
        acc = (acc + a[(gids + j * stride) % n]) & MASK
    out = np.zeros(n, dtype=np.int64)
    rows, cols = gids // width, gids % width
    out[cols * (n // width) + rows] = acc

    workload = GpuWorkload(
        buffers={"a": a, "out": np.zeros(n, dtype=np.int64)},
        scalars={"n": n},
        expected={"out": out},
        ndrange=NDRange(n, 64),
    )
    _run_both_backends(source, workload, out)


def test_fuzz_harness_rejects_wrong_model():
    """The comparison in the fuzz helper actually bites."""
    source = """
    __kernel void identity(__global int *a, __global int *out, int n) {
        int gid = get_global_id(0);
        out[gid] = a[gid];
    }
    """
    n = 64
    a = np.arange(n, dtype=np.int64)
    wrong = a + 1
    workload = GpuWorkload(
        buffers={"a": a, "out": np.zeros(n, dtype=np.int64)},
        scalars={"n": n},
        expected={"out": wrong},
        ndrange=NDRange(n, 64),
    )
    with pytest.raises(AssertionError):
        _run_both_backends(source, workload, wrong)
