"""Geometric invariants of the clustered floorplanner."""

from __future__ import annotations

import pytest

from repro.rtl.netlist import Partition
from repro.scaling import ClusterConfig, ClusteredFloorplanner, generate_clustered_netlist
from repro.synth.logic import LogicSynthesis


def _plan(tech, num_clusters: int, cus_per_cluster: int, frequency: float = 590.0):
    cluster = ClusterConfig(num_clusters=num_clusters, cus_per_cluster=cus_per_cluster)
    netlist = generate_clustered_netlist(cluster, name=f"fp_{cluster.label}")
    synthesis = LogicSynthesis(tech).run(netlist, frequency)
    return cluster, ClusteredFloorplanner(cluster).plan(synthesis, frequency)


@pytest.mark.parametrize(
    "num_clusters, cus_per_cluster", [(1, 2), (2, 4), (3, 3), (4, 8)]
)
def test_every_partition_is_placed_inside_the_die(tech, num_clusters, cus_per_cluster):
    cluster, floorplan = _plan(tech, num_clusters, cus_per_cluster)
    assert len(floorplan.cu_placements) == cluster.total_cus
    controllers = [
        placement
        for placement in floorplan.placements
        if placement.kind is Partition.MEMORY_CONTROLLER
    ]
    assert len(controllers) == cluster.num_clusters
    for placement in floorplan.placements:
        assert placement.rect.x >= -1e-6
        assert placement.rect.y >= -1e-6
        assert placement.rect.x + placement.rect.width <= floorplan.die_width_um + 1e-6
        assert placement.rect.y + placement.rect.height <= floorplan.die_height_um + 1e-6


@pytest.mark.parametrize("num_clusters, cus_per_cluster", [(2, 4), (4, 4), (3, 3)])
def test_each_cu_is_closest_to_its_own_cluster_controller(tech, num_clusters, cus_per_cluster):
    cluster, floorplan = _plan(tech, num_clusters, cus_per_cluster)
    for cluster_index in range(cluster.num_clusters):
        own_controller = cluster.controller_name(cluster_index)
        for cu_name in cluster.cu_names(cluster_index):
            own_distance = floorplan.cu_to_memctrl_distance_um(cu_name)
            cu_rect = floorplan.placement(cu_name).rect
            for other_index in range(cluster.num_clusters):
                if other_index == cluster_index:
                    continue
                other = floorplan.placement(cluster.controller_name(other_index)).rect
                assert own_distance < cu_rect.manhattan_distance_to(other)
            assert floorplan.cu_controller[cu_name] == own_controller


def test_cluster_count_does_not_stretch_the_in_cluster_routes(tech):
    _, two = _plan(tech, 2, 4)
    _, four = _plan(tech, 4, 4)
    assert four.max_cu_distance_um() == pytest.approx(two.max_cu_distance_um(), rel=0.25)


def test_whitespace_grows_with_the_target_frequency(tech):
    cluster = ClusterConfig(num_clusters=2, cus_per_cluster=2)
    netlist = generate_clustered_netlist(cluster, name="fp_ws")
    synthesis = LogicSynthesis(tech).run(netlist, 500.0)
    planner = ClusteredFloorplanner(cluster)
    slow = planner.plan(synthesis, 500.0)
    fast = planner.plan(synthesis, 667.0)
    assert fast.die_area_mm2 > slow.die_area_mm2
    assert planner.whitespace_factor(667.0) > planner.whitespace_factor(500.0)


def test_die_area_scales_with_the_cluster_count(tech):
    _, two = _plan(tech, 2, 4)
    _, four = _plan(tech, 4, 4)
    ratio = four.die_area_mm2 / two.die_area_mm2
    assert 1.6 <= ratio <= 2.4
