"""Functional tests for the G-GPU back end of the OpenCL-C compiler.

Each test compiles a small kernel, runs it on the cycle-approximate simulator,
and checks the output buffers against a numpy reference.  Divergent control
flow (masked ifs, divergent loops) and the work-item builtins get dedicated
coverage because those are the parts the FGPU compiler has to get right.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.isa import Opcode
from repro.arch.kernel import NDRange
from repro.cl import compile_kernel, compile_source
from repro.errors import CompilationError
from repro.simt.gpu import GGPUSimulator


def run_compiled(source, buffers, scalars, ndrange, kernel_name=None, num_read=None):
    """Compile ``source``, launch it, and return the final buffer contents."""
    kernel = compile_kernel(source, kernel_name)
    simulator = GGPUSimulator(memory_bytes=8 * 1024 * 1024)
    args = {}
    addresses = {}
    for name, data in buffers.items():
        address = simulator.create_buffer(np.asarray(data, dtype=np.int64) & 0xFFFFFFFF)
        addresses[name] = address
        args[name] = address
    args.update(scalars)
    simulator.launch(kernel, ndrange, args)
    return {
        name: simulator.read_buffer(address, num_read or len(buffers[name]))
        for name, address in addresses.items()
    }


def test_vector_add_end_to_end():
    n = 256
    a = np.arange(n, dtype=np.int64)
    b = np.arange(n, dtype=np.int64) * 3
    out = run_compiled(
        """
        __kernel void vec_add(__global int *a, __global int *b, __global int *out, int n) {
            int gid = get_global_id(0);
            out[gid] = a[gid] + b[gid];
        }
        """,
        {"a": a, "b": b, "out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        NDRange(n, 64),
    )
    np.testing.assert_array_equal(out["out"], (a + b) & 0xFFFFFFFF)


def test_expression_operators_match_python_semantics():
    n = 64
    a = np.array([5, -7, 123456, 0, 1, -1, 2**31 - 1, -(2**31)] * 8, dtype=np.int64)
    b = np.array([3, 2, -5, 7, 1, 4, 13, 3] * 8, dtype=np.int64)
    out = run_compiled(
        """
        __kernel void mix(__global int *a, __global int *b, __global int *out, int n) {
            int gid = get_global_id(0);
            int x = a[gid];
            int y = b[gid];
            out[gid] = ((x * 3 - y) ^ (x & y)) + ((x | 1) << 2) + (y >> 1);
        }
        """,
        {"a": a, "b": b, "out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        NDRange(n, 64),
    )
    x, y = a, b
    expected = (((x * 3 - y) ^ (x & y)) + ((x | 1) << 2) + (y >> 1)) & 0xFFFFFFFF
    np.testing.assert_array_equal(out["out"].astype(np.int64), expected)


def test_comparisons_and_logical_operators():
    n = 64
    a = np.arange(-32, 32, dtype=np.int64)
    out = run_compiled(
        """
        __kernel void classify(__global int *a, __global int *out, int n) {
            int gid = get_global_id(0);
            int v = a[gid];
            out[gid] = (v > 0) * 4 + (v == 0) * 2 + (v < 0 && v > -10) + (v <= -10 || v >= 10) * 8;
        }
        """,
        {"a": a, "out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        NDRange(n, 64),
    )
    expected = (
        (a > 0) * 4 + (a == 0) * 2 + ((a < 0) & (a > -10)) + ((a <= -10) | (a >= 10)) * 8
    ).astype(np.int64)
    np.testing.assert_array_equal(out["out"].astype(np.int64), expected)


def test_unary_operators():
    n = 64
    a = np.arange(-32, 32, dtype=np.int64)
    out = run_compiled(
        """
        __kernel void unary(__global int *a, __global int *out, int n) {
            int gid = get_global_id(0);
            int v = a[gid];
            out[gid] = -v + (~v & 15) + !v;
        }
        """,
        {"a": a, "out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        NDRange(n, 64),
    )
    expected = ((-a) + (~a & 15) + (a == 0)) & 0xFFFFFFFF
    np.testing.assert_array_equal(out["out"].astype(np.int64), expected)


def test_min_max_builtins():
    n = 64
    a = np.arange(-32, 32, dtype=np.int64)
    out = run_compiled(
        """
        __kernel void clamp(__global int *a, __global int *out, int n) {
            int gid = get_global_id(0);
            out[gid] = min(max(a[gid], -5), 5);
        }
        """,
        {"a": a, "out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        NDRange(n, 64),
    )
    expected = np.clip(a, -5, 5) & 0xFFFFFFFF
    np.testing.assert_array_equal(out["out"].astype(np.int64), expected)


def test_workitem_builtins_are_consistent_with_the_ndrange():
    n, wg = 256, 64
    out = run_compiled(
        """
        __kernel void ids(__global int *gid_out, __global int *lid_out, __global int *grp_out,
                          __global int *sizes, int n) {
            int gid = get_global_id(0);
            gid_out[gid] = gid;
            lid_out[gid] = get_local_id(0);
            grp_out[gid] = get_group_id(0);
            sizes[gid] = get_local_size(0) + get_global_size(0) * 1000 + get_num_groups(0) * 100000000;
        }
        """,
        {
            "gid_out": np.zeros(n, dtype=np.int64),
            "lid_out": np.zeros(n, dtype=np.int64),
            "grp_out": np.zeros(n, dtype=np.int64),
            "sizes": np.zeros(n, dtype=np.int64),
        },
        {"n": n},
        NDRange(n, wg),
    )
    gids = np.arange(n)
    np.testing.assert_array_equal(out["gid_out"], gids)
    np.testing.assert_array_equal(out["lid_out"], gids % wg)
    np.testing.assert_array_equal(out["grp_out"], gids // wg)
    expected_sizes = wg + n * 1000 + (n // wg) * 100000000
    np.testing.assert_array_equal(out["sizes"], np.full(n, expected_sizes))


def test_divergent_if_else_assigns_per_lane():
    n = 128
    a = np.arange(n, dtype=np.int64)
    out = run_compiled(
        """
        __kernel void parity(__global int *a, __global int *out, int n) {
            int gid = get_global_id(0);
            int v = a[gid];
            if (v & 1) {
                out[gid] = v * 3;
            } else {
                out[gid] = v >> 1;
            }
        }
        """,
        {"a": a, "out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        NDRange(n, 64),
    )
    expected = np.where(a & 1, a * 3, a >> 1)
    np.testing.assert_array_equal(out["out"].astype(np.int64), expected)


def test_nested_divergent_ifs():
    n = 128
    a = np.arange(n, dtype=np.int64)
    out = run_compiled(
        """
        __kernel void nested(__global int *a, __global int *out, int n) {
            int gid = get_global_id(0);
            int v = a[gid];
            int r = 0;
            if (v > 32) {
                if (v > 96) {
                    r = 3;
                } else {
                    r = 2;
                }
            } else {
                if (v > 8) { r = 1; }
            }
            out[gid] = r;
        }
        """,
        {"a": a, "out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        NDRange(n, 64),
    )
    expected = np.where(a > 96, 3, np.where(a > 32, 2, np.where(a > 8, 1, 0)))
    np.testing.assert_array_equal(out["out"].astype(np.int64), expected)


def test_divergent_while_loop_collatz_style():
    n = 64
    a = (np.arange(n, dtype=np.int64) % 13) + 1
    out = run_compiled(
        """
        __kernel void count_halvings(__global int *a, __global int *out, int n) {
            int gid = get_global_id(0);
            int v = a[gid];
            int steps = 0;
            while (v > 1) {
                v = v >> 1;
                steps += 1;
            }
            out[gid] = steps;
        }
        """,
        {"a": a, "out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        NDRange(n, 64),
    )
    expected = np.array([int(v).bit_length() - 1 for v in a], dtype=np.int64)
    np.testing.assert_array_equal(out["out"].astype(np.int64), expected)


def test_uniform_for_loop_with_accumulation():
    n = 64
    out = run_compiled(
        """
        __kernel void triangle(__global int *out, int n) {
            int gid = get_global_id(0);
            int total = 0;
            for (int i = 0; i < 10; i += 1) {
                total += i * gid;
            }
            out[gid] = total;
        }
        """,
        {"out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        NDRange(n, 64),
    )
    expected = 45 * np.arange(n)
    np.testing.assert_array_equal(out["out"].astype(np.int64), expected)


def test_compound_assignment_to_buffer_element():
    n = 64
    a = np.arange(n, dtype=np.int64)
    out = run_compiled(
        """
        __kernel void scale_in_place(__global int *a, int n) {
            int gid = get_global_id(0);
            a[gid] *= 5;
            a[gid] += 1;
        }
        """,
        {"a": a},
        {"n": n},
        NDRange(n, 64),
    )
    np.testing.assert_array_equal(out["a"].astype(np.int64), a * 5 + 1)


def test_barrier_compiles_to_a_barrier_instruction():
    kernel = compile_kernel(
        """
        __kernel void with_barrier(__global int *a, int n) {
            int gid = get_global_id(0);
            a[gid] = gid;
            barrier(CLK_GLOBAL_MEM_FENCE);
            a[gid] += 1;
        }
        """
    )
    opcodes = [instruction.opcode for instruction in kernel.program.instructions]
    assert Opcode.BARRIER in opcodes
    assert opcodes[-1] is Opcode.RET


def test_uniform_branch_avoids_mask_instructions():
    kernel = compile_kernel(
        """
        __kernel void uniform_branch(__global int *a, int n) {
            int gid = get_global_id(0);
            if (n > 100) {
                a[gid] = 1;
            } else {
                a[gid] = 2;
            }
        }
        """
    )
    opcodes = [instruction.opcode for instruction in kernel.program.instructions]
    assert Opcode.PUSHM not in opcodes
    assert Opcode.BEQ in opcodes


def test_varying_branch_uses_mask_instructions():
    kernel = compile_kernel(
        """
        __kernel void varying_branch(__global int *a, int n) {
            int gid = get_global_id(0);
            if (gid > 100) {
                a[gid] = 1;
            } else {
                a[gid] = 2;
            }
        }
        """
    )
    opcodes = [instruction.opcode for instruction in kernel.program.instructions]
    assert Opcode.PUSHM in opcodes
    assert Opcode.INVM in opcodes
    assert Opcode.POPM in opcodes


def test_register_exhaustion_is_reported():
    declarations = "".join(f"int v{i} = {i};" for i in range(40))
    with pytest.raises(CompilationError, match="registers"):
        compile_kernel(f"__kernel void too_many(__global int *a, int n) {{ {declarations} }}")


def test_kernel_selection_by_name():
    source = """
    __kernel void first(__global int *a, int n) { int gid = get_global_id(0); a[gid] = 1; }
    __kernel void second(__global int *a, int n) { int gid = get_global_id(0); a[gid] = 2; }
    """
    program = compile_source(source)
    assert program.kernel_names == ["first", "second"]
    assert program.to_ggpu_kernel("second").name == "second"
    with pytest.raises(CompilationError, match="no kernel named"):
        program.to_ggpu_kernel("third")
