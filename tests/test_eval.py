"""Evaluation harness: Table III measurements, speed-ups, tables, and figures.

All simulation here runs at strongly reduced input sizes so the suite stays
fast; the full paper-sized regeneration lives in ``benchmarks/``.
"""

import pytest

from repro.errors import KernelError
from repro.eval.benchmarks import (
    BenchmarkSizes,
    measure_gpu_kernel,
    measure_riscv_program,
    run_table3,
)
from repro.eval.comparison import (
    AreaRatios,
    compute_area_ratios,
    compute_speedups,
    derate_by_area,
)
from repro.eval.figures import build_figure3, build_figure4, format_speedup_chart
from repro.eval.paper_data import (
    PAPER_AREA_RATIOS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    paper_speedup,
    paper_speedup_per_area,
)
from repro.eval.multidevice import run_multidevice_table, run_pipeline_table
from repro.eval.reports import (
    multidevice_to_csv,
    multidevice_to_markdown,
    pipeline_to_csv,
    pipeline_to_markdown,
)
from repro.eval.tables import (
    build_physical_versions,
    build_table2,
    format_multidevice_table,
    format_pipeline_table,
    format_table3,
)


@pytest.fixture(scope="module")
def small_table3():
    return run_table3(kernels=["copy", "div_int"], cu_counts=(1, 2), scale=0.125)


def test_benchmark_sizes_scaling():
    sizes = BenchmarkSizes.paper("vec_mul")
    assert sizes.riscv_size == 1024 and sizes.gpu_size == 65536
    scaled = sizes.scaled(0.01)
    assert scaled.riscv_size >= 64 and scaled.gpu_size >= 64
    assert scaled.gpu_size % 64 == 0
    with pytest.raises(KernelError):
        sizes.scaled(2.0)


def test_measurements_report_cycles_and_sizes():
    gpu = measure_gpu_kernel("copy", num_cus=1, input_size=256)
    riscv = measure_riscv_program("copy", input_size=64)
    assert gpu.cycles > 0 and riscv.cycles > 0
    assert gpu.kcycles == pytest.approx(gpu.cycles / 1000)
    assert gpu.input_size == 256 and riscv.input_size == 64


def test_table3_structure(small_table3):
    assert small_table3.kernels == ["copy", "div_int"]
    row = small_table3.row("copy")
    assert row.riscv_size >= 64
    assert set(row.gpu) == {1, 2}
    assert row.gpu_kcycles(1) >= row.gpu_kcycles(2) * 0.9
    with pytest.raises(KernelError):
        small_table3.row("missing")
    text = format_table3(small_table3)
    assert "copy" in text and "RISC-V" in text


def test_multidevice_table_structure_and_rendering():
    table = run_multidevice_table(
        device_counts=(1, 2), kernels=["copy", "saxpy"], scale=0.125, jobs=1
    )
    assert table.device_counts == [1, 2]
    assert table.kernels == ["copy", "saxpy"]
    baseline = table.cell(1)
    wide = table.cell(2)
    assert baseline.launches == 2 and wide.launches == 2
    # Independent launches: two devices can only help (or tie).
    assert wide.makespan <= baseline.makespan
    assert table.speedup(1) == pytest.approx(1.0)
    assert table.speedup(2) >= 1.0
    # The same launch costs the same simulated cycles in every cell.
    assert [entry[5] for entry in baseline.schedule] == [
        entry[5] for entry in wide.schedule
    ]
    assert baseline.makespan >= baseline.critical_path_cycles
    with pytest.raises(KernelError):
        table.cell(8)
    with pytest.raises(KernelError):
        run_multidevice_table(device_counts=())
    with pytest.raises(KernelError):
        run_multidevice_table(device_counts=(2, 2))

    text = format_multidevice_table(table)
    assert "Devices" in text and "Makespan" in text and "2 kernels" in text
    csv_text = multidevice_to_csv(table)
    assert csv_text.splitlines()[0].startswith("devices,makespan_kcycles,speedup")
    assert len(csv_text.strip().splitlines()) == 3
    markdown = multidevice_to_markdown(table)
    assert markdown.startswith("| devices |")


def test_multidevice_table_identical_serial_vs_fanned_out():
    """jobs=1 (shared, reset pool) and jobs=2 (fresh pools) agree bit-exactly."""
    serial = run_multidevice_table(
        device_counts=(1, 2), kernels=["copy", "dot"], scale=0.125, jobs=1
    )
    fanned = run_multidevice_table(
        device_counts=(1, 2), kernels=["copy", "dot"], scale=0.125, jobs=2
    )
    for count in (1, 2):
        assert serial.cell(count).schedule == fanned.cell(count).schedule
        assert serial.cell(count).makespan == fanned.cell(count).makespan
        assert serial.cell(count).utilization == fanned.cell(count).utilization


def test_pipeline_table_modes_structure_and_rendering():
    table = run_pipeline_table(device_counts=(1, 2), lanes=4, size=128, jobs=1)
    assert table.device_counts == [1, 2]
    assert table.modes == ["host", "p2p", "p2p-prefetch"]
    # Host baseline defines the improvement ratio.
    assert table.improvement("host", 2) == pytest.approx(1.0)
    # Direct transfers can only help (or tie) the cross-device shuffle.
    assert table.improvement("p2p", 2) >= 1.0
    assert table.cell("p2p", 2).transfers_p2p > 0
    assert table.cell("p2p", 2).transfers_from_device == 0
    # One device never crosses devices: the modes tie exactly.
    assert table.cell("p2p", 1).makespan == table.cell("host", 1).makespan
    # Per-launch cycles identical across every (mode, device count) cell.
    reference = [entry[5] for entry in sorted(table.cell("host", 1).schedule)]
    for key in table.cells:
        assert [entry[5] for entry in sorted(table.cells[key].schedule)] == reference
    with pytest.raises(KernelError):
        table.cell("host", 8)
    with pytest.raises(KernelError):
        run_pipeline_table(device_counts=(), lanes=4, size=128)
    with pytest.raises(KernelError):
        run_pipeline_table(device_counts=(1,), lanes=1, size=128)
    with pytest.raises(KernelError):
        run_pipeline_table(device_counts=(1,), lanes=4, size=128, modes=("p2p",))

    text = format_pipeline_table(table)
    assert "Mode" in text and "p2p-prefetch" in text and "4 lanes" in text
    csv_text = pipeline_to_csv(table)
    assert csv_text.splitlines()[0].startswith("mode,devices,makespan_kcycles")
    assert len(csv_text.strip().splitlines()) == 1 + 3 * 2
    markdown = pipeline_to_markdown(table)
    assert markdown.startswith("| mode |")


def test_pipeline_table_identical_serial_vs_fanned_out():
    serial = run_pipeline_table(device_counts=(1, 2), lanes=4, size=128, jobs=1)
    fanned = run_pipeline_table(device_counts=(1, 2), lanes=4, size=128, jobs=2)
    assert set(serial.cells) == set(fanned.cells)
    for key in serial.cells:
        assert serial.cells[key].schedule == fanned.cells[key].schedule
        assert serial.cells[key].makespan == fanned.cells[key].makespan


def test_speedup_computation_uses_input_ratio(small_table3):
    speedups = compute_speedups(small_table3)
    row = small_table3.row("copy")
    expected = row.riscv.cycles * (row.gpu_size / row.riscv_size) / row.gpu[1].cycles
    assert speedups.value("copy", 1) == pytest.approx(expected)
    assert speedups.best() > 0
    assert speedups.best_kernel() in ("copy", "div_int")
    with pytest.raises(KernelError):
        speedups.value("copy", 8)
    chart = format_speedup_chart(speedups)
    assert "copy" in chart and "#" in chart


def test_area_ratio_derating(small_table3):
    speedups = compute_speedups(small_table3)
    ratios = AreaRatios(riscv_area_mm2=0.5, ggpu_area_mm2={1: 2.0, 2: 4.0})
    derated = derate_by_area(speedups, ratios)
    assert derated.value("copy", 1) == pytest.approx(speedups.value("copy", 1) / 4.0)
    assert ratios.ratio(2) == pytest.approx(8.0)
    with pytest.raises(KernelError):
        ratios.ratio(8)


def test_computed_area_ratios_match_paper_shape(tech):
    ratios = compute_area_ratios(tech, cu_counts=(1, 8))
    assert ratios.ratio(1) == pytest.approx(PAPER_AREA_RATIOS[1], rel=0.15)
    assert ratios.ratio(8) == pytest.approx(PAPER_AREA_RATIOS[8], rel=0.15)
    assert ratios.ratio(8) > 5 * ratios.ratio(1)


@pytest.fixture(scope="module")
def physical_layouts(tech):
    return build_physical_versions(tech)


def test_table2_and_figures_3_4(tech, physical_layouts):
    estimates = build_table2(tech, physical_layouts)
    assert len(estimates) == 4
    labels = [f"{estimate.design}@{estimate.frequency_mhz:.0f}MHz" for estimate in estimates]
    assert labels[0] == "1CU@500MHz"
    assert labels[3].startswith("8CU@")  # achieved ~600 MHz, not the 667 target
    assert not labels[3].endswith("667MHz")
    slow_1cu, fast_1cu = build_figure3(tech, physical_layouts)
    assert fast_1cu.floorplan.die_area_mm2 > slow_1cu.floorplan.die_area_mm2
    slow_8cu, fast_8cu = build_figure4(tech, physical_layouts)
    assert len(fast_8cu.floorplan.cu_placements) == 8
    assert fast_8cu.achieved_frequency_mhz < 667.0


def test_paper_data_consistency():
    assert len(PAPER_TABLE1) == 12
    assert set(PAPER_TABLE2) == {"M2", "M3", "M4", "M5", "M6", "M7"}
    assert len(PAPER_TABLE3) == 7
    # The abstract's headline: up to 223x raw speed-up, up to ~10x per area.
    assert paper_speedup("mat_mul", 8) == pytest.approx(223.0, rel=0.05)
    assert paper_speedup_per_area("mat_mul", 1) == pytest.approx(10.2, rel=0.05)
    # Derated by area the 8-CU configuration is the worst (paper's Fig. 6 trend).
    assert paper_speedup_per_area("mat_mul", 8) < paper_speedup_per_area("mat_mul", 1)


def test_topology_table_structure_and_rendering():
    from repro.eval.multidevice import run_topology_table
    from repro.eval.reports import topology_to_csv, topology_to_markdown
    from repro.eval.tables import format_topology_table

    table = run_topology_table(
        device_counts=(2, 4),
        width=8,
        depth=4,
        size=128,
        lanes=4,
        stages=2,
        jobs=1,
    )
    assert table.device_counts == [2, 4]
    assert table.dags == ["layered", "shuffle"]
    assert table.topologies == ["flat", "two-switch", "ring"]
    assert table.schedulers == ["lpt", "heft", "stealing"]
    # LPT is its own baseline in every cell.
    for dag in table.dags:
        for topo in table.topologies:
            assert table.speedup_vs_lpt(dag, topo, "lpt", 2) == pytest.approx(1.0)
    # Per-launch cycles identical across every (topology, scheduler, count)
    # cell of a DAG — run_topology_table asserts it internally; spot-check.
    reference = {
        entry[0]: entry[5] for entry in table.cell("layered", "flat", "lpt", 2).schedule
    }
    other = table.cell("layered", "ring", "stealing", 4)
    assert {entry[0]: entry[5] for entry in other.schedule} == reference
    with pytest.raises(KernelError):
        table.cell("layered", "flat", "lpt", 8)
    with pytest.raises(KernelError):
        run_topology_table(device_counts=())
    with pytest.raises(KernelError):
        run_topology_table(device_counts=(2, 2))
    with pytest.raises(KernelError):
        run_topology_table(device_counts=(2,), schedulers=("heft",))

    text = format_topology_table(table)
    assert "Topology" in text and "stealing" in text and "vs LPT" in text
    csv_text = topology_to_csv(table)
    assert csv_text.splitlines()[0].startswith("dag,topology,scheduler,devices")
    assert len(csv_text.strip().splitlines()) == 1 + 2 * 3 * 3 * 2
    markdown = topology_to_markdown(table)
    assert markdown.startswith("| dag |")


def test_topology_table_identical_serial_vs_fanned_out():
    from repro.eval.multidevice import run_topology_table

    kwargs = dict(
        device_counts=(2, 4),
        dags=("shuffle",),
        topologies=("flat", "ring"),
        width=8,
        depth=4,
        size=128,
        lanes=4,
        stages=2,
    )
    serial = run_topology_table(jobs=1, **kwargs)
    fanned = run_topology_table(jobs=2, **kwargs)
    assert set(serial.cells) == set(fanned.cells)
    for key in serial.cells:
        assert serial.cells[key].schedule == fanned.cells[key].schedule
        assert serial.cells[key].makespan == fanned.cells[key].makespan
