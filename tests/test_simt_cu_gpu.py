"""Compute unit and top-level simulator behaviour on small hand-built kernels."""

import numpy as np
import pytest

from repro.arch.config import GGPUConfig
from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.errors import ConfigurationError, KernelError
from repro.simt.gpu import GGPUSimulator
from repro.simt.timing import TimingModel
from repro.arch.isa import OpClass


def _iota_kernel() -> Kernel:
    """out[gid] = gid * 2 + 1"""
    builder = KernelBuilder("iota", args=(KernelArg("out"),))
    gid = builder.alloc("gid")
    out = builder.alloc("out")
    addr = builder.alloc("addr")
    value = builder.alloc("value")
    builder.global_id(gid)
    builder.load_arg(out, "out")
    builder.emit(Opcode.SLLI, rd=value, rs=gid, imm=1)
    builder.emit(Opcode.ADDI, rd=value, rs=value, imm=1)
    builder.address_of_element(addr, out, gid)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.ret()
    return builder.build()


def _divergent_kernel() -> Kernel:
    """out[gid] = 100 if gid is even else 200 (exercises the mask stack)."""
    builder = KernelBuilder("evens", args=(KernelArg("out"),))
    gid = builder.alloc("gid")
    out = builder.alloc("out")
    addr = builder.alloc("addr")
    value = builder.alloc("value")
    parity = builder.alloc("parity")
    builder.global_id(gid)
    builder.load_arg(out, "out")
    builder.emit(Opcode.ANDI, rd=parity, rs=gid, imm=1)
    builder.emit(Opcode.XORI, rd=parity, rs=parity, imm=1)  # 1 when gid even
    with builder.lane_if_else(parity) as branch:
        builder.emit(Opcode.LI, rd=value, imm=100)
        with branch.otherwise():
            builder.emit(Opcode.LI, rd=value, imm=200)
    builder.address_of_element(addr, out, gid)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.ret()
    return builder.build()


def _barrier_kernel() -> Kernel:
    """Exercises BARRIER and local memory: stage data in LRAM, then read back."""
    builder = KernelBuilder("staged", args=(KernelArg("out"),))
    gid = builder.alloc("gid")
    lid = builder.alloc("lid")
    out = builder.alloc("out")
    addr = builder.alloc("addr")
    value = builder.alloc("value")
    builder.global_id(gid)
    builder.emit(Opcode.LID, rd=lid)
    builder.load_arg(out, "out")
    builder.emit(Opcode.ADDI, rd=value, rs=gid, imm=7)
    builder.emit(Opcode.SLLI, rd=addr, rs=lid, imm=2)
    builder.emit(Opcode.LSW, rs=addr, rt=value, imm=0)
    builder.emit(Opcode.BARRIER)
    builder.emit(Opcode.LLW, rd=value, rs=addr, imm=0)
    builder.address_of_element(addr, out, gid)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.ret()
    return builder.build()


def test_simple_kernel_produces_expected_values(simulator):
    kernel = _iota_kernel()
    out = simulator.allocate_buffer(128)
    result = simulator.launch(kernel, NDRange(128, 64), {"out": out})
    values = simulator.read_buffer(out, 128)
    assert list(values) == [2 * i + 1 for i in range(128)]
    assert result.cycles > 0
    assert result.stats.workgroups_dispatched == 2


def test_divergent_kernel_is_correct_and_costs_both_paths(simulator):
    kernel = _divergent_kernel()
    out = simulator.allocate_buffer(64)
    result = simulator.launch(kernel, NDRange(64, 64), {"out": out})
    values = simulator.read_buffer(out, 64)
    assert list(values) == [100 if i % 2 == 0 else 200 for i in range(64)]
    # Both sides of the branch are issued, so SIMD efficiency drops below 1.
    assert result.stats.simd_efficiency < 1.0


def test_barrier_and_local_memory(simulator):
    kernel = _barrier_kernel()
    out = simulator.allocate_buffer(128)
    result = simulator.launch(kernel, NDRange(128, 128), {"out": out})
    values = simulator.read_buffer(out, 128)
    assert list(values) == [i + 7 for i in range(128)]
    assert result.stats.mix.counts.get("sync") == 2


def test_missing_and_unknown_arguments_rejected(simulator):
    kernel = _iota_kernel()
    with pytest.raises(KernelError):
        simulator.launch(kernel, NDRange(64, 64), {})
    with pytest.raises(KernelError):
        simulator.launch(kernel, NDRange(64, 64), {"out": 64, "bogus": 1})


def test_kernel_too_large_for_cram_rejected():
    config = GGPUConfig(cram_words=8)
    simulator = GGPUSimulator(config, memory_bytes=1024 * 1024)
    kernel = _divergent_kernel()
    out = simulator.allocate_buffer(64)
    with pytest.raises(KernelError):
        simulator.launch(kernel, NDRange(64, 64), {"out": out})


def test_more_cus_do_not_change_results_but_reduce_cycles(dual_cu_simulator, simulator):
    kernel = _iota_kernel()
    single_out = simulator.allocate_buffer(1024)
    single = simulator.launch(kernel, NDRange(1024, 256), {"out": single_out})
    dual_out = dual_cu_simulator.allocate_buffer(1024)
    dual = dual_cu_simulator.launch(kernel, NDRange(1024, 256), {"out": dual_out})
    assert np.array_equal(
        simulator.read_buffer(single_out, 1024), dual_cu_simulator.read_buffer(dual_out, 1024)
    )
    assert dual.cycles < single.cycles


def test_cache_and_axi_traffic_are_observed(simulator):
    kernel = _iota_kernel()
    out = simulator.allocate_buffer(512)
    result = simulator.launch(kernel, NDRange(512, 256), {"out": out})
    assert result.stats.cache.write_accesses > 0
    assert result.stats.traffic.line_fills > 0
    assert 0.0 <= result.stats.cache.hit_rate <= 1.0


def test_launch_resets_state_between_kernels(simulator):
    kernel = _iota_kernel()
    out = simulator.allocate_buffer(64)
    first = simulator.launch(kernel, NDRange(64, 64), {"out": out})
    second = simulator.launch(kernel, NDRange(64, 64), {"out": out})
    assert second.cycles == pytest.approx(first.cycles)


def test_timing_model_validation_and_classes():
    with pytest.raises(ConfigurationError):
        TimingModel(alu_latency=0)
    timing = TimingModel()
    assert timing.latency_for(OpClass.DIV) > timing.latency_for(OpClass.MUL) > timing.latency_for(OpClass.ALU)
    assert timing.uses_pe_array(OpClass.ALU)
    assert not timing.uses_pe_array(OpClass.BRANCH)
    assert not timing.uses_pe_array(OpClass.MASK)


def test_stats_summary_mentions_kernel(simulator):
    kernel = _iota_kernel()
    out = simulator.allocate_buffer(64)
    result = simulator.launch(kernel, NDRange(64, 64), {"out": out})
    assert "iota" in result.stats.summary()
    assert result.kcycles == pytest.approx(result.cycles / 1000.0)
