"""Architecture configuration (GGPUConfig, CacheConfig, AxiConfig, TransferConfig)."""

import pytest

from repro.arch.config import AxiConfig, CacheConfig, GGPUConfig, Topology, TransferConfig
from repro.errors import ConfigurationError


def test_default_config_matches_fgpu():
    config = GGPUConfig()
    assert config.num_cus == 1
    assert config.pes_per_cu == 8
    assert config.wavefront_size == 64
    # "A single CU can run up to 512 work-items."
    assert config.work_items_per_cu == 512
    assert config.lanes_rounds_per_wavefront == 8


def test_cu_count_range():
    for num_cus in (1, 2, 4, 8):
        assert GGPUConfig(num_cus=num_cus).num_cus == num_cus
    with pytest.raises(ConfigurationError):
        GGPUConfig(num_cus=0)
    with pytest.raises(ConfigurationError):
        GGPUConfig(num_cus=9)


def test_pes_per_cu_is_fixed_at_8():
    with pytest.raises(ConfigurationError):
        GGPUConfig(pes_per_cu=16)


def test_wavefront_size_must_be_multiple_of_pes():
    assert GGPUConfig(wavefront_size=32).lanes_rounds_per_wavefront == 4
    with pytest.raises(ConfigurationError):
        GGPUConfig(wavefront_size=60)
    with pytest.raises(ConfigurationError):
        GGPUConfig(wavefront_size=0)


def test_register_count_range():
    with pytest.raises(ConfigurationError):
        GGPUConfig(num_registers=4)
    with pytest.raises(ConfigurationError):
        GGPUConfig(num_registers=128)


def test_memory_sizes_must_be_powers_of_two():
    with pytest.raises(ConfigurationError):
        GGPUConfig(cram_words=1000)
    with pytest.raises(ConfigurationError):
        GGPUConfig(rtm_words=0)


def test_with_cus_copies_everything_else():
    base = GGPUConfig(num_cus=1, lram_words_per_cu=4096)
    grown = base.with_cus(8)
    assert grown.num_cus == 8
    assert grown.lram_words_per_cu == 4096
    assert grown.max_work_items == 8 * base.work_items_per_cu


def test_cache_config_defaults_and_validation():
    cache = CacheConfig()
    assert cache.num_lines * cache.line_bytes == cache.size_bytes
    assert cache.words_per_line == cache.line_bytes // 4
    with pytest.raises(ConfigurationError):
        CacheConfig(size_bytes=1000, line_bytes=64)
    with pytest.raises(ConfigurationError):
        CacheConfig(line_bytes=6)
    with pytest.raises(ConfigurationError):
        CacheConfig(ports=0)
    with pytest.raises(ConfigurationError):
        CacheConfig(size_bytes=48 * 1024, line_bytes=64)  # 768 lines, not a power of two


def test_transfer_config_cycles_and_validation():
    transfer = TransferConfig(latency_cycles=100, bytes_per_cycle=8.0)
    assert transfer.cycles(0) == 0.0  # zero-byte copies are free
    assert transfer.cycles(1) == 101.0  # latency + one beat
    assert transfer.cycles(8) == 101.0
    assert transfer.cycles(9) == 102.0  # partial beats round up
    # Fractional bandwidths still charge whole beats.
    assert TransferConfig(latency_cycles=0, bytes_per_cycle=3.0).cycles(10) == 4.0
    with pytest.raises(ConfigurationError):
        TransferConfig(latency_cycles=-1)
    with pytest.raises(ConfigurationError):
        TransferConfig(bytes_per_cycle=0)
    with pytest.raises(ConfigurationError):
        transfer.cycles(-4)


def test_transfer_config_p2p_model():
    base = TransferConfig(latency_cycles=100, bytes_per_cycle=8.0)
    # Disabled by default: a device->device move is priced as two host hops.
    assert not base.p2p_enabled
    assert base.p2p_cycles(64) == 2 * base.cycles(64)
    assert base.p2p_cycles(0) == 0.0
    p2p = base.with_p2p(10, 32.0)
    assert p2p.p2p_enabled
    assert p2p.latency_cycles == base.latency_cycles  # host model untouched
    assert p2p.p2p_cycles(0) == 0.0
    assert p2p.p2p_cycles(1) == 11.0  # latency + one beat
    assert p2p.p2p_cycles(32) == 11.0
    assert p2p.p2p_cycles(33) == 12.0  # partial beats round up
    with pytest.raises(ConfigurationError):
        TransferConfig(p2p_latency_cycles=10)  # bandwidth missing
    with pytest.raises(ConfigurationError):
        TransferConfig(p2p_bytes_per_cycle=8.0)  # latency missing
    with pytest.raises(ConfigurationError):
        base.with_p2p(-1, 8.0)
    with pytest.raises(ConfigurationError):
        base.with_p2p(10, 0.0)
    with pytest.raises(ConfigurationError):
        p2p.p2p_cycles(-4)


def test_transfer_config_rides_along_ggpu_config():
    config = GGPUConfig(transfer=TransferConfig(latency_cycles=7, bytes_per_cycle=16.0))
    assert config.transfer.latency_cycles == 7
    assert config.with_cus(4).transfer == config.transfer
    # The default model is present on every config.
    assert GGPUConfig().transfer.latency_cycles > 0


def test_axi_config_matches_fgpu_limits():
    axi = AxiConfig()
    assert 1 <= axi.data_ports <= 4
    assert axi.control_ports == 1
    assert axi.data_width_words == axi.data_width_bits // 32
    with pytest.raises(ConfigurationError):
        AxiConfig(data_ports=5)
    with pytest.raises(ConfigurationError):
        AxiConfig(data_width_bits=48)
    with pytest.raises(ConfigurationError):
        AxiConfig(memory_latency_cycles=0)
    with pytest.raises(ConfigurationError):
        AxiConfig(control_ports=2)


def test_topology_flat_matches_single_p2p_link():
    # The flat preset's defaults price every pair exactly like the PR 5
    # single-link P2P model, so attaching it changes nothing.
    flat = Topology.flat(4)
    p2p = TransferConfig().with_p2p(150, 32.0)
    for num_bytes in (1, 32, 33, 1024, 4096):
        for src in range(4):
            for dst in range(4):
                if src == dst:
                    assert flat.p2p_cycles(src, dst, num_bytes) == 0.0
                else:
                    assert flat.p2p_cycles(src, dst, num_bytes) == p2p.p2p_cycles(num_bytes)
    assert flat.num_devices == 4
    assert flat.p2p_cycles(0, 1, 0) == 0.0  # zero-byte copies are free
    with pytest.raises(ConfigurationError):
        flat.p2p_cycles(0, 1, -4)


def test_topology_two_switch_prices_the_cross_domain_hop():
    topo = Topology.two_switch(4)
    # Devices {0, 1} and {2, 3} are the two switch domains.
    intra = topo.p2p_cycles(0, 1, 1024)
    inter = topo.p2p_cycles(0, 2, 1024)
    assert intra == 150.0 + 32.0  # 150-cycle setup + 1024/32 beats
    assert inter == 900.0 + 128.0  # inter hop: 900-cycle setup + 1024/8 beats
    assert inter > intra
    assert topo.p2p_cycles(2, 3, 1024) == intra
    assert topo.distance(0, 2) > topo.distance(0, 1)
    # Odd device counts put the extra device in the first domain.
    odd = Topology.two_switch(5)
    assert odd.p2p_cycles(0, 2, 1024) == intra
    assert odd.p2p_cycles(0, 3, 1024) == inter


def test_topology_ring_scales_with_hop_distance():
    topo = Topology.ring(8)
    one_hop = topo.p2p_cycles(0, 1, 1024)
    two_hops = topo.p2p_cycles(0, 2, 1024)
    assert one_hop == 150.0 + 32.0
    assert two_hops == 300.0 + 64.0  # 2x setup, half bandwidth
    # The ring is bidirectional: 0->7 is one hop, not seven.
    assert topo.p2p_cycles(0, 7, 1024) == one_hop
    assert topo.p2p_cycles(0, 4, 1024) == topo.p2p_cycles(4, 0, 1024)


def test_topology_preset_dispatch_and_host_override():
    for name in ("flat", "two-switch", "ring"):
        topo = Topology.preset(name, 4)
        assert topo.name == name
        assert topo.num_devices == 4
        assert topo.host is None
    with pytest.raises(ConfigurationError):
        Topology.preset("torus", 4)
    host = TransferConfig(latency_cycles=7, bytes_per_cycle=16.0)
    assert Topology.preset("flat", 4, host=host).host == host
    assert Topology.flat(4).with_host(host).host == host


def test_topology_matrix_validation():
    with pytest.raises(ConfigurationError):
        Topology.flat(0)
    with pytest.raises(ConfigurationError):  # non-square latency matrix
        Topology(
            name="bad",
            latency_cycles=((0.0, 1.0),),
            bytes_per_cycle=((float("inf"), 8.0), (8.0, float("inf"))),
        )
    with pytest.raises(ConfigurationError):  # non-zero diagonal latency
        Topology(
            name="bad",
            latency_cycles=((1.0, 1.0), (1.0, 0.0)),
            bytes_per_cycle=((float("inf"), 8.0), (8.0, float("inf"))),
        )
    with pytest.raises(ConfigurationError):  # negative off-diagonal latency
        Topology(
            name="bad",
            latency_cycles=((0.0, -1.0), (1.0, 0.0)),
            bytes_per_cycle=((float("inf"), 8.0), (8.0, float("inf"))),
        )
    with pytest.raises(ConfigurationError):  # non-positive bandwidth
        Topology(
            name="bad",
            latency_cycles=((0.0, 1.0), (1.0, 0.0)),
            bytes_per_cycle=((float("inf"), 0.0), (8.0, float("inf"))),
        )
