"""Labeled corpus of CL kernels for the static analyzer and the race oracle.

Each :class:`CorpusEntry` carries a CL source, the check IDs the static
analyzer is expected to report (``expect_checks``, matched as *at least*
these), and — where the kernel is launchable — an oracle launch
configuration so the dynamic cross-check can confirm or refute the verdict.

The corpus is the ground truth for the soundness contract: every entry in
``RACY`` must produce at least one ``RACE*`` finding, every entry in
``DIVERGENT`` at least one ``BAR*`` finding, every entry in ``OUT_OF_BOUNDS``
at least one ``BND*`` finding, and no entry in ``CLEAN`` may produce any
error-severity finding at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class OracleLaunch:
    """How to run a corpus kernel under the dynamic oracle."""

    global_size: int
    workgroup_size: int
    buffers: Tuple[Tuple[str, int], ...]  # (name, length) pairs, zero-filled
    scalars: Tuple[Tuple[str, int], ...] = ()

    def buffer_dict(self) -> Dict[str, List[int]]:
        return {name: [0] * length for name, length in self.buffers}

    def scalar_dict(self) -> Dict[str, int]:
        return dict(self.scalars)


@dataclass(frozen=True)
class CorpusEntry:
    """One labeled kernel: source, expected static checks, oracle launch."""

    name: str
    source: str
    expect_checks: Tuple[str, ...] = ()
    launch: Optional[OracleLaunch] = None


DIVERGENT: Sequence[CorpusEntry] = (
    CorpusEntry(
        name="barrier_in_divergent_if",
        source="""
__kernel void k(__global int *out) {
    __local int tmp[64];
    int lid = get_local_id(0);
    if (lid < 32) {
        tmp[lid] = lid;
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_global_id(0)] = tmp[0];
}
""",
        expect_checks=("BAR001",),
        launch=OracleLaunch(64, 64, (("out", 64),)),
    ),
    CorpusEntry(
        name="barrier_in_divergent_else",
        source="""
__kernel void k(__global int *out) {
    int lid = get_local_id(0);
    int v = 0;
    if (lid == 0) {
        v = 1;
    } else {
        barrier(CLK_LOCAL_MEM_FENCE);
        v = 2;
    }
    out[get_global_id(0)] = v;
}
""",
        expect_checks=("BAR001",),
        launch=OracleLaunch(8, 8, (("out", 8),)),
    ),
    CorpusEntry(
        name="barrier_in_lane_trip_loop",
        source="""
__kernel void k(__global int *out) {
    int lid = get_local_id(0);
    int acc = 0;
    for (int i = 0; i < lid; i = i + 1) {
        barrier(CLK_LOCAL_MEM_FENCE);
        acc = acc + i;
    }
    out[get_global_id(0)] = acc;
}
""",
        expect_checks=("BAR002",),
        launch=OracleLaunch(8, 8, (("out", 8),)),
    ),
    CorpusEntry(
        name="barrier_in_lane_while",
        source="""
__kernel void k(__global int *out) {
    int lid = get_local_id(0);
    int i = lid;
    while (i > 0) {
        barrier(CLK_LOCAL_MEM_FENCE);
        i = i - 1;
    }
    out[get_global_id(0)] = i;
}
""",
        expect_checks=("BAR002",),
        launch=OracleLaunch(8, 8, (("out", 8),)),
    ),
)


RACY: Sequence[CorpusEntry] = (
    CorpusEntry(
        name="all_lanes_write_slot_zero",
        source="""
__kernel void k(__global int *out) {
    __local int tmp[64];
    int lid = get_local_id(0);
    tmp[0] = lid;
    out[get_global_id(0)] = tmp[0];
}
""",
        expect_checks=("RACE001",),
        launch=OracleLaunch(64, 64, (("out", 64),)),
    ),
    CorpusEntry(
        name="barrierless_neighbor_read",
        source="""
__kernel void k(__global int *out) {
    __local int tmp[512];
    int lid = get_local_id(0);
    tmp[lid] = lid;
    int v = tmp[lid + 1];
    out[get_global_id(0)] = v;
}
""",
        expect_checks=("RACE002",),
        launch=OracleLaunch(64, 64, (("out", 64),)),
    ),
    CorpusEntry(
        name="scan_missing_barrier",
        source="""
__kernel void k(__global int *a, __global int *out) {
    __local int tmp[512];
    int lid = get_local_id(0);
    tmp[lid] = a[get_global_id(0)];
    if (lid > 0) {
        tmp[lid] = tmp[lid] + tmp[lid - 1];
    }
    out[get_global_id(0)] = tmp[lid];
}
""",
        expect_checks=("RACE003",),
        launch=OracleLaunch(64, 64, (("a", 64), ("out", 64))),
    ),
    CorpusEntry(
        name="strided_write_overlap",
        source="""
__kernel void k(__global int *out) {
    __local int tmp[512];
    int lid = get_local_id(0);
    tmp[lid * 2] = lid;
    tmp[lid * 4] = lid;
    out[get_global_id(0)] = tmp[lid];
}
""",
        expect_checks=("RACE001",),
        launch=OracleLaunch(64, 64, (("out", 64),)),
    ),
    CorpusEntry(
        name="cross_workgroup_global_write",
        source="""
__kernel void k(__global int *out) {
    int lid = get_local_id(0);
    out[lid] = get_group_id(0);
}
""",
        expect_checks=("RACE004",),
        launch=OracleLaunch(16, 8, (("out", 8),)),
    ),
)


OUT_OF_BOUNDS: Sequence[CorpusEntry] = (
    CorpusEntry(
        name="local_constant_oob",
        source="""
__kernel void k(__global int *out) {
    __local int tmp[4];
    tmp[300] = 1;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tmp[0];
}
""",
        expect_checks=("BND001",),
        launch=OracleLaunch(4, 4, (("out", 4),)),
    ),
    CorpusEntry(
        name="local_affine_oob",
        source="""
__kernel void k(__global int *out) {
    __local int tmp[4];
    int lid = get_local_id(0);
    tmp[lid + 300] = 1;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tmp[0];
}
""",
        expect_checks=("BND001",),
        launch=OracleLaunch(4, 4, (("out", 4),)),
    ),
    CorpusEntry(
        name="local_negative_index",
        source="""
__kernel void k(__global int *out) {
    __local int tmp[8];
    int lid = get_local_id(0);
    tmp[lid - 300] = 1;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tmp[0];
}
""",
        expect_checks=("BND001",),
        launch=OracleLaunch(4, 4, (("out", 4),)),
    ),
)


CLEAN: Sequence[CorpusEntry] = (
    CorpusEntry(
        name="saxpy_like",
        source="""
__kernel void k(__global int *x, __global int *y, __global int *out, int a) {
    int gid = get_global_id(0);
    out[gid] = a * x[gid] + y[gid];
}
""",
        launch=OracleLaunch(32, 8, (("x", 32), ("y", 32), ("out", 32)), (("a", 3),)),
    ),
    CorpusEntry(
        name="staged_local_broadcast",
        source="""
__kernel void k(__global int *a, __global int *out) {
    __local int tmp[256];
    int lid = get_local_id(0);
    tmp[lid] = a[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tmp[0];
}
""",
        launch=OracleLaunch(32, 8, (("a", 32), ("out", 32))),
    ),
    CorpusEntry(
        name="tree_reduce_with_barriers",
        source="""
__kernel void k(__global int *a, __global int *partial) {
    __local int tmp[256];
    int lid = get_local_id(0);
    tmp[lid] = a[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (int s = get_local_size(0) / 2; s > 0; s = s / 2) {
        if (lid < s) {
            tmp[lid] = tmp[lid] + tmp[lid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        partial[get_group_id(0)] = tmp[0];
    }
}
""",
        launch=OracleLaunch(32, 8, (("a", 32), ("partial", 4))),
    ),
    CorpusEntry(
        name="uniform_loop_accumulate",
        source="""
__kernel void k(__global int *a, __global int *out, int n) {
    int gid = get_global_id(0);
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
        acc = acc + a[i];
    }
    out[gid] = acc;
}
""",
        launch=OracleLaunch(16, 8, (("a", 16), ("out", 16)), (("n", 16),)),
    ),
)


ALL_ENTRIES: Sequence[CorpusEntry] = tuple(DIVERGENT) + tuple(RACY) + tuple(
    OUT_OF_BOUNDS
) + tuple(CLEAN)
