"""ISA-level lint tests: defective hand-assembled kernels and the clean suite.

The defects are built with :class:`KernelBuilder` so they are *assemblable*
— they pass the assembler's structural checks but violate the deeper
properties the linter enforces (register def-before-use, mask-region barrier
placement, LRAM windows, reachability).
"""

from __future__ import annotations

import pytest

from repro.analysis import Severity, lint_kernel, verify_kernel_or_raise
from repro.arch.isa import Opcode
from repro.arch.kernel import KernelBuilder
from repro.cl.compiler import compile_source
from repro.cl.sources import BENCHMARK_CL_SOURCES, EXTRA_CL_SOURCES
from repro.errors import KernelError
from repro.kernels import all_kernel_names, get_kernel_spec


def _checks(report):
    return {f.check for f in report.findings}


def test_use_before_def_is_an_error() -> None:
    b = KernelBuilder("use_before_def")
    b.emit(Opcode.ADD, rd=1, rs=2, rt=3)  # r2/r3 never written
    b.ret()
    report = lint_kernel(b.build())
    errors = [f for f in report.errors if f.check == "ISA001"]
    assert errors, report.render()


def test_branch_only_def_is_a_warning_not_error() -> None:
    b = KernelBuilder("maybe_def")
    b.emit(Opcode.LID, rd=1)
    with b.lane_if(condition=1):
        b.emit(Opcode.LI, rd=2, imm=7)  # r2 defined only under the mask
    b.emit(Opcode.ADD, rd=3, rs=2, rt=1)
    b.ret()
    report = lint_kernel(b.build())
    isa1 = [f for f in report.findings if f.check == "ISA001"]
    assert isa1, report.render()
    assert all(f.severity is Severity.WARNING for f in isa1), report.render()


def test_barrier_inside_lane_if_is_an_error() -> None:
    b = KernelBuilder("divergent_barrier")
    b.declare_local("tmp", 16)
    b.emit(Opcode.LID, rd=1)
    with b.lane_if(condition=1):
        b.emit(Opcode.BARRIER)
    b.ret()
    report = lint_kernel(b.build())
    assert "ISA002" in _checks(report)
    assert report.errors


def test_barrier_inside_divergent_while_is_an_error() -> None:
    b = KernelBuilder("divergent_loop_barrier")
    b.declare_local("tmp", 16)
    b.emit(Opcode.LID, rd=1)
    with b.divergent_while() as loop:
        loop.check(condition=1)
        b.emit(Opcode.BARRIER)
        b.emit(Opcode.ADDI, rd=1, rs=1, imm=-1)
    b.ret()
    report = lint_kernel(b.build())
    assert "ISA002" in _checks(report)


def test_local_access_without_local_words_is_an_error() -> None:
    b = KernelBuilder("no_lram")
    b.emit(Opcode.LI, rd=1, imm=0)
    b.emit(Opcode.LSW, rs=1, rt=1, imm=0)
    b.ret()
    report = lint_kernel(b.build())
    assert "ISA003" in _checks(report)
    assert report.errors


def test_constant_lram_index_out_of_window_is_an_error() -> None:
    b = KernelBuilder("lram_oob")
    b.declare_local("tmp", 4)  # 16-byte window
    b.emit(Opcode.LI, rd=1, imm=64)
    b.emit(Opcode.LSW, rs=1, rt=1, imm=0)
    b.ret()
    report = lint_kernel(b.build())
    isa3 = [f for f in report.findings if f.check == "ISA003"]
    assert isa3, report.render()
    assert any(f.severity is Severity.ERROR for f in isa3), report.render()


def test_unreachable_code_is_a_warning() -> None:
    b = KernelBuilder("unreachable")
    end = b.asm.unique_label("end")
    b.emit(Opcode.JMP, label=end)
    b.emit(Opcode.LI, rd=1, imm=1)  # skipped forever
    b.label(end)
    b.ret()
    report = lint_kernel(b.build())
    assert "ISA004" in _checks(report)


def test_verify_kernel_or_raise_rejects_defective_kernel() -> None:
    b = KernelBuilder("bad")
    b.emit(Opcode.ADD, rd=1, rs=2, rt=3)
    b.ret()
    with pytest.raises(KernelError, match="ISA001"):
        verify_kernel_or_raise(b.build())


def test_verify_kernel_or_raise_returns_report_when_clean() -> None:
    spec = get_kernel_spec("copy")
    report = verify_kernel_or_raise(spec.build())
    assert report.errors == []


@pytest.mark.parametrize("name", all_kernel_names())
def test_library_kernels_lint_clean(name: str) -> None:
    report = lint_kernel(get_kernel_spec(name).build())
    assert report.errors == [], report.render()


@pytest.mark.parametrize(
    "name", sorted(dict(BENCHMARK_CL_SOURCES, **EXTRA_CL_SOURCES))
)
def test_compiled_cl_kernels_lint_clean(name: str) -> None:
    sources = dict(BENCHMARK_CL_SOURCES, **EXTRA_CL_SOURCES)
    program = compile_source(sources[name])
    report = lint_kernel(program.to_ggpu_kernel())
    assert report.errors == [], report.render()


def test_findings_name_the_kernel_and_address() -> None:
    b = KernelBuilder("named")
    b.emit(Opcode.ADD, rd=1, rs=2, rt=3)
    b.ret()
    report = lint_kernel(b.build())
    finding = next(f for f in report.errors if f.check == "ISA001")
    assert finding.kernel == "named"
    assert finding.address is not None
