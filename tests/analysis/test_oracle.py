"""Dynamic race-oracle tests and the static/dynamic soundness cross-check.

The oracle runs corpus kernels on a pure-python instrumented interpreter and
must observe the defects concretely; ``soundness_violations`` then asserts
the contract that anything the oracle catches carries a matching static
finding.  A hypothesis harness generates randomized local-memory access
patterns (stride, offset, optional barrier) and cross-validates every drawn
kernel the same way.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import check_source, run_oracle, soundness_violations
from repro.cl.compiler import compile_source
from repro.errors import SimulationError

from analysis.analysis_corpus import (
    ALL_ENTRIES,
    CLEAN,
    DIVERGENT,
    OUT_OF_BOUNDS,
    RACY,
)

LAUNCHABLE = tuple(e for e in ALL_ENTRIES if e.launch is not None)


def _run(entry):
    program = compile_source(entry.source)
    launch = entry.launch
    return run_oracle(
        program.declaration(),
        global_size=launch.global_size,
        workgroup_size=launch.workgroup_size,
        buffers=launch.buffer_dict(),
        scalars=launch.scalar_dict(),
    )


@pytest.mark.parametrize("entry", RACY, ids=lambda e: e.name)
def test_oracle_observes_corpus_races(entry) -> None:
    report = _run(entry)
    assert report.races, entry.name
    described = report.races[0].describe()
    assert entry.launch is not None
    assert "lane" in described


@pytest.mark.parametrize("entry", DIVERGENT, ids=lambda e: e.name)
def test_oracle_observes_barrier_divergence(entry) -> None:
    report = _run(entry)
    assert report.barrier_divergence, entry.name


@pytest.mark.parametrize("entry", OUT_OF_BOUNDS, ids=lambda e: e.name)
def test_oracle_observes_out_of_bounds(entry) -> None:
    report = _run(entry)
    assert report.out_of_bounds, entry.name


@pytest.mark.parametrize("entry", CLEAN, ids=lambda e: e.name)
def test_oracle_confirms_clean_kernels(entry) -> None:
    report = _run(entry)
    assert not report.racy
    assert not report.barrier_divergence
    assert not report.out_of_bounds
    assert report.num_accesses > 0


@pytest.mark.parametrize("entry", LAUNCHABLE, ids=lambda e: e.name)
def test_static_verdicts_are_sound_against_oracle(entry) -> None:
    static = check_source(entry.source)
    dynamic = _run(entry)
    assert soundness_violations(static, dynamic) == []


def test_oracle_rejects_bad_geometry() -> None:
    program = compile_source(CLEAN[0].source)
    with pytest.raises(SimulationError):
        run_oracle(
            program.declaration(),
            global_size=10,
            workgroup_size=4,  # 10 % 4 != 0
            buffers={"x": [0] * 10, "y": [0] * 10, "out": [0] * 10},
            scalars={"a": 1},
        )


def test_oracle_rejects_missing_params() -> None:
    program = compile_source(CLEAN[0].source)
    with pytest.raises(SimulationError):
        run_oracle(
            program.declaration(),
            global_size=8,
            workgroup_size=4,
            buffers={"x": [0] * 8},  # y/out/a missing
            scalars={},
        )


def test_oracle_bounds_runaway_kernels() -> None:
    source = """
__kernel void spin(__global int *out) {
    int i = 1;
    while (i > 0) {
        i = i + 0;
    }
    out[get_global_id(0)] = i;
}
"""
    program = compile_source(source)
    with pytest.raises(SimulationError):
        run_oracle(
            program.declaration(),
            global_size=1,
            workgroup_size=1,
            buffers={"out": [0]},
            scalars={},
            max_steps=10_000,
        )


_TEMPLATE = """
__kernel void fuzz(__global int *a, __global int *out) {{
    __local int tmp[1024];
    int lid = get_local_id(0);
    tmp[lid * {wstride} + {woffset}] = a[get_global_id(0)];
    {sync}
    int v = tmp[lid * {rstride} + {roffset}];
    out[get_global_id(0)] = v;
}}
"""


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    wstride=st.integers(min_value=1, max_value=4),
    woffset=st.integers(min_value=0, max_value=8),
    rstride=st.integers(min_value=0, max_value=4),
    roffset=st.integers(min_value=0, max_value=8),
    barrier=st.booleans(),
    wg=st.sampled_from([4, 8, 16]),
)
def test_fuzzed_local_patterns_never_violate_soundness(
    wstride: int, woffset: int, rstride: int, roffset: int, barrier: bool, wg: int
) -> None:
    source = _TEMPLATE.format(
        wstride=wstride,
        woffset=woffset,
        rstride=rstride,
        roffset=roffset,
        sync="barrier(CLK_LOCAL_MEM_FENCE);" if barrier else "",
    )
    static = check_source(source)
    program = compile_source(source)
    dynamic = run_oracle(
        program.declaration(),
        global_size=2 * wg,
        workgroup_size=wg,
        buffers={"a": list(range(2 * wg)), "out": [0] * (2 * wg)},
        scalars={},
    )
    assert soundness_violations(static, dynamic) == []
