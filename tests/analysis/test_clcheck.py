"""CL-level static analyzer tests over the labeled corpus.

Every defective corpus kernel must be flagged with the expected check ID and
a real source span; every clean kernel must produce zero error-severity
findings.  The compile-path integration (``check=`` policy) is covered in
``test_suite_clean.py``.
"""

from __future__ import annotations

import pytest

from repro.analysis import CHECKS, Severity, check_source
from repro.analysis.findings import AnalysisReport, Finding
from repro.cl.compiler import compile_source
from repro.errors import CompilationError

from analysis.analysis_corpus import (
    ALL_ENTRIES,
    CLEAN,
    DIVERGENT,
    OUT_OF_BOUNDS,
    RACY,
)

DEFECTIVE = tuple(DIVERGENT) + tuple(RACY) + tuple(OUT_OF_BOUNDS)


@pytest.mark.parametrize("entry", DEFECTIVE, ids=lambda e: e.name)
def test_defective_kernel_flagged_with_expected_check(entry) -> None:
    report = check_source(entry.source)
    found = {f.check for f in report.findings}
    for check in entry.expect_checks:
        assert check in found, (
            f"{entry.name}: expected {check}, got {sorted(found)}"
        )


@pytest.mark.parametrize("entry", DEFECTIVE, ids=lambda e: e.name)
def test_defective_kernel_findings_carry_spans(entry) -> None:
    report = check_source(entry.source)
    expected = [f for f in report.findings if f.check in entry.expect_checks]
    assert expected
    for finding in expected:
        assert finding.span is not None
        assert finding.span.line > 0 and finding.span.column > 0
        assert f"{finding.span.line}:{finding.span.column}" in finding.render()


@pytest.mark.parametrize("entry", CLEAN, ids=lambda e: e.name)
def test_clean_kernel_has_no_errors(entry) -> None:
    report = check_source(entry.source)
    assert report.errors == [], [f.render() for f in report.errors]


@pytest.mark.parametrize("entry", ALL_ENTRIES, ids=lambda e: e.name)
def test_every_finding_uses_a_registered_check(entry) -> None:
    report = check_source(entry.source)
    for finding in report.findings:
        assert finding.check in CHECKS
        assert finding.check in finding.render()


def test_divergent_kernels_produce_error_severity() -> None:
    for entry in DIVERGENT:
        report = check_source(entry.source)
        bar_errors = [f for f in report.errors if f.check.startswith("BAR")]
        assert bar_errors, entry.name


def test_finding_rejects_unknown_check_id() -> None:
    with pytest.raises(ValueError):
        Finding(check="XYZ999", severity=Severity.ERROR, message="nope")


def test_report_severity_partitions() -> None:
    report = check_source(DIVERGENT[0].source)
    assert len(report.findings) == (
        len(report.errors) + len(report.warnings) + len(report.infos)
    )
    assert not report.clean
    counts = report.counts
    assert counts[Severity.ERROR] == len(report.errors)


def test_single_lane_guard_inside_loop_is_not_trusted() -> None:
    # `if (lid == i)` selects a *different* lane each iteration, so writes to
    # the same slot from different iterations still race; the guard must not
    # be treated as a stable single-lane section.
    source = """
__kernel void k(__global int *out) {
    __local int tmp[8];
    int lid = get_local_id(0);
    for (int i = 0; i < 4; i = i + 1) {
        if (lid == i) {
            tmp[0] = lid;
        }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = tmp[0];
}
"""
    report = check_source(source)
    assert any(f.check.startswith("RACE") for f in report.findings)


def test_single_lane_guard_outside_loop_is_trusted() -> None:
    source = """
__kernel void k(__global int *partial) {
    __local int tmp[8];
    int lid = get_local_id(0);
    tmp[lid] = lid;
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lid == 0) {
        partial[get_group_id(0)] = tmp[0];
    }
}
"""
    report = check_source(source)
    assert report.errors == [], [f.render() for f in report.errors]


def test_uneven_barrier_counts_across_uniform_if_warn() -> None:
    source = """
__kernel void k(__global int *out, int n) {
    int lid = get_local_id(0);
    if (n > 4) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_global_id(0)] = lid;
}
"""
    report = check_source(source)
    assert any(f.check == "BAR003" for f in report.findings)
    assert report.errors == []


def test_check_source_rejects_invalid_source() -> None:
    with pytest.raises(CompilationError):
        check_source("__kernel void broken(")


def test_analyze_is_cached_on_program() -> None:
    program = compile_source(CLEAN[0].source)
    first = program.analyze()
    assert isinstance(first, AnalysisReport)
    assert program.analyze() is first
