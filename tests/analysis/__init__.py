"""Analyzer test package (labeled corpus + static/dynamic cross-checks)."""
