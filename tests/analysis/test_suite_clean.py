"""Whole-suite cleanliness and compile/launch-path integration.

The shipped CL benchmark sources and every hand-built library kernel must
pass the analyzer with zero error-severity findings; the ``check=`` compile
policy and the ``verify=`` launch/enqueue gates must behave as documented
(and ``check='off'`` must not perturb generated code at all).
"""

from __future__ import annotations

import pytest

from repro.analysis import lint_kernel
from repro.analysis.__main__ import main as analysis_main
from repro.arch.isa import Opcode
from repro.arch.kernel import KernelBuilder, NDRange
from repro.cl.compiler import CHECK_POLICIES, compile_source
from repro.cl.sources import BENCHMARK_CL_SOURCES, EXTRA_CL_SOURCES
from repro.errors import CompilationError, KernelError
from repro.kernels import all_kernel_names, get_kernel_spec
from repro.runtime.queue import CommandQueue
from repro.simt.gpu import GGPUSimulator

from analysis.analysis_corpus import RACY

ALL_CL_SOURCES = dict(BENCHMARK_CL_SOURCES, **EXTRA_CL_SOURCES)

DEFECTIVE_SOURCE = RACY[0].source  # all-lanes write to tmp[0]: RACE001 error


@pytest.mark.parametrize("name", sorted(ALL_CL_SOURCES))
def test_shipped_cl_source_has_no_analyzer_errors(name: str) -> None:
    program = compile_source(ALL_CL_SOURCES[name], check="warn")
    assert program.findings is not None
    assert program.findings.errors == [], program.findings.render()


@pytest.mark.parametrize("name", all_kernel_names())
def test_hand_built_kernel_has_no_lint_errors(name: str) -> None:
    report = lint_kernel(get_kernel_spec(name).build())
    assert report.errors == [], report.render()


def test_check_off_is_the_default_and_skips_analysis() -> None:
    program = compile_source(ALL_CL_SOURCES["dot"])
    assert program.findings is None


def test_check_off_output_is_bit_identical() -> None:
    source = ALL_CL_SOURCES["reduce_sum"]
    plain = compile_source(source).to_ggpu_kernel()
    checked = compile_source(source, check="warn").to_ggpu_kernel()
    assert len(plain.program) == len(checked.program)
    for a, b in zip(plain.program.instructions, checked.program.instructions, strict=True):
        assert (a.opcode, a.rd, a.rs, a.rt, a.imm) == (b.opcode, b.rd, b.rs, b.rt, b.imm)
    assert plain.local_words == checked.local_words


def test_check_warn_stores_findings_but_compiles() -> None:
    program = compile_source(DEFECTIVE_SOURCE, check="warn")
    assert program.findings is not None
    assert program.findings.errors
    assert program.to_ggpu_kernel() is not None


def test_check_error_rejects_defective_source() -> None:
    with pytest.raises(CompilationError, match="static verification failed"):
        compile_source(DEFECTIVE_SOURCE, check="error")


def test_check_error_passes_clean_source() -> None:
    program = compile_source(ALL_CL_SOURCES["saxpy"], check="error")
    assert program.findings is not None
    assert program.findings.errors == []


def test_unknown_check_policy_is_rejected() -> None:
    assert set(CHECK_POLICIES) == {"off", "warn", "error"}
    with pytest.raises(CompilationError, match="check policy"):
        compile_source(ALL_CL_SOURCES["saxpy"], check="loud")


def _defective_kernel():
    b = KernelBuilder("defective")
    b.emit(Opcode.ADD, rd=1, rs=2, rt=3)
    b.ret()
    return b.build()


def test_launch_verify_rejects_defective_kernel() -> None:
    simulator = GGPUSimulator(memory_bytes=1 << 20)
    kernel = _defective_kernel()
    with pytest.raises(KernelError, match="ISA001"):
        simulator.launch(kernel, NDRange(8, 8), {}, verify=True)


def test_enqueue_verify_rejects_defective_kernel() -> None:
    queue = CommandQueue(memory_bytes=1 << 20)
    kernel = _defective_kernel()
    with pytest.raises(KernelError, match="ISA001"):
        queue.enqueue(kernel, NDRange(8, 8), {}, verify=True)
    assert queue.pending == 0


def test_launch_verify_accepts_clean_kernel() -> None:
    simulator = GGPUSimulator(memory_bytes=1 << 20)
    spec = get_kernel_spec("copy")
    kernel = spec.build()
    out = simulator.allocate_buffer(64)
    src = simulator.create_buffer(list(range(64)))
    result = simulator.launch(
        kernel, NDRange(64, 64), {"src": src, "dst": out, "n": 64}, verify=True
    )
    assert result is not None


def test_cli_suite_is_clean() -> None:
    assert analysis_main(["--suite"]) == 0


def test_cli_flags_defective_file(tmp_path) -> None:
    path = tmp_path / "racy.cl"
    path.write_text(DEFECTIVE_SOURCE)
    assert analysis_main([str(path)]) == 1
    assert analysis_main([str(path), "--fail-on", "never"]) == 0


def test_cli_writes_report_file(tmp_path) -> None:
    path = tmp_path / "clean.cl"
    path.write_text(ALL_CL_SOURCES["saxpy"])
    out = tmp_path / "report.txt"
    assert analysis_main([str(path), "--output", str(out)]) == 0
    assert "saxpy" in out.read_text() or "error" in out.read_text()


def test_cli_list_checks() -> None:
    assert analysis_main(["--list-checks"]) == 0
