"""Tests for deterministic fault injection and recovery (PR 7).

The contract under test, from the module docstrings of
``repro.runtime.faults`` and ``repro.runtime.multidevice``:

* **No plan ⇒ bit-identical.**  A queue with ``faults=None`` and a queue with
  an *empty* ``FaultPlan`` produce byte-for-byte the same schedules, cycle
  statistics, and results.
* **Any plan with a survivor ⇒ bit-exact results.**  Seeded fault plans —
  transient launch drops, permanent device failures, transfer stalls,
  detected transfer corruption — may reshape the schedule and stretch the
  makespan, but every kernel result read back equals the fault-free run
  exactly.  A hypothesis fuzz drives that over randomized
  :meth:`FaultPlan.random` draws.
* **Exhausted budgets fail fast and structured.**  A command out of retries
  (or with every device dead) raises :class:`DeviceFailureError` with the
  failed event-graph slice; dependents cascade with the root chained as
  ``__cause__``; waiting on a failed event raises immediately.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import GGPUConfig
from repro.arch.kernel import NDRange
from repro.errors import ConfigurationError, DeviceFailureError
from repro.kernels import get_kernel_spec
from repro.runtime.faults import (
    DEVICE_FAIL,
    DEVICE_TRANSIENT,
    FAULT_KINDS,
    TRANSFER_CORRUPT,
    TRANSFER_STALL,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.runtime.multidevice import MultiDeviceQueue, OutOfOrderQueue

MEM = 8 * 1024 * 1024
N = 128


def _queue(num_devices=2, faults=None, cls=OutOfOrderQueue, lpt=False):
    kwargs = {
        "config": GGPUConfig(num_cus=1),
        "num_devices": num_devices,
        "memory_bytes": MEM,
        "faults": faults,
    }
    if cls is OutOfOrderQueue:
        kwargs["lpt"] = lpt
    return cls(**kwargs)


def _enqueue_copy(queue, src, dst, wait_for=(), label=None, device=None):
    kernel = get_kernel_spec("copy").build()
    return queue.enqueue(
        kernel,
        NDRange(N, 64),
        {"src": src, "dst": dst, "n": N},
        label=label,
        wait_for=wait_for,
        writes=("dst",),
        device=device,
    )


def _run_chain(queue):
    """A three-launch dependency chain; returns (queue, final host values)."""
    src = queue.create_buffer(np.arange(N))
    mid = queue.allocate_buffer(N)
    out = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, mid, label="first")
    _enqueue_copy(queue, mid, out, label="second")
    _enqueue_copy(queue, out, src, label="third")
    queue.flush()
    return queue.enqueue_read(out)


def _snapshot(queue):
    """Everything the no-fault bit-identical pin compares."""
    return {
        "events": [
            (e.label, e.device, e.start_cycle, e.end_cycle, e.compute_cycles,
             e.transfer_cycles, e.readback_cycles)
            for e in queue.events
        ],
        "makespan": queue.stats.makespan,
        "total_cycles": queue.stats.total_cycles,
        "transfer_cycles": queue.stats.transfer_cycles,
        "critical_path": queue.stats.critical_path_cycles,
    }


# --------------------------------------------------------------------------- #
# FaultSpec / FaultPlan validation and determinism
# --------------------------------------------------------------------------- #
def test_fault_spec_needs_exactly_one_trigger():
    with pytest.raises(ConfigurationError):
        FaultSpec(kind=DEVICE_TRANSIENT, device=0)
    with pytest.raises(ConfigurationError):
        FaultSpec(kind=DEVICE_TRANSIENT, device=0, at_command=0, at_cycle=10.0)


def test_fault_spec_rejects_unknown_kind_and_bad_values():
    with pytest.raises(ConfigurationError):
        FaultSpec(kind="gamma-ray", device=0, at_command=0)
    with pytest.raises(ConfigurationError):
        FaultSpec(kind=DEVICE_FAIL, device=-1, at_command=0)
    with pytest.raises(ConfigurationError):
        FaultSpec(kind=DEVICE_FAIL, device=0, at_command=-1)


def test_fault_plan_rejects_bad_budget():
    with pytest.raises(ConfigurationError):
        FaultPlan(max_retries=-1)
    with pytest.raises(ConfigurationError):
        FaultPlan(backoff_cycles=-1.0)


def test_retry_delay_is_exponential():
    plan = FaultPlan(backoff_cycles=100.0)
    assert plan.retry_delay(1) == 100.0
    assert plan.retry_delay(2) == 200.0
    assert plan.retry_delay(3) == 400.0
    assert plan.retry_delay(0) == 0.0


def test_random_plan_is_reproducible_and_keeps_a_survivor():
    for seed in range(25):
        a = FaultPlan.random(seed, num_devices=3)
        b = FaultPlan.random(seed, num_devices=3)
        assert a == b
        assert len(a.permanent_devices) < 3  # at least one survivor
    assert FaultPlan.random(1, num_devices=3) != FaultPlan.random(2, num_devices=3)


def test_injector_rejects_out_of_range_device():
    plan = FaultPlan(specs=(FaultSpec(kind=DEVICE_FAIL, device=5, at_command=0),))
    with pytest.raises(ConfigurationError):
        FaultInjector(plan, num_devices=2)


def test_each_spec_fires_at_most_once():
    plan = FaultPlan(specs=(FaultSpec(kind=DEVICE_TRANSIENT, device=0, at_command=0),))
    injector = FaultInjector(plan, num_devices=1)
    assert injector.launch_fault(0, 0.0, "a") is not None
    assert injector.launch_fault(0, 0.0, "b") is None  # consumed
    assert len(injector.fired) == 1


def test_at_cycle_trigger_fires_on_first_late_attempt():
    plan = FaultPlan(specs=(FaultSpec(kind=DEVICE_TRANSIENT, device=0, at_cycle=100.0),))
    injector = FaultInjector(plan, num_devices=1)
    assert injector.launch_fault(0, 50.0, "early") is None
    assert injector.launch_fault(0, 150.0, "late") is not None


# --------------------------------------------------------------------------- #
# No fault plan ⇒ bit-identical to PR 5 behaviour
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("lpt", [False, True])
def test_empty_plan_is_bit_identical_to_no_plan(lpt):
    baseline = _queue(lpt=lpt)
    values_base = _run_chain(baseline)
    empty = _queue(faults=FaultPlan(), lpt=lpt)
    values_empty = _run_chain(empty)
    assert np.array_equal(values_base, values_empty)
    assert _snapshot(baseline) == _snapshot(empty)
    # Fault accounting stays untouched on the no-fault path.
    for stats in (baseline.stats, empty.stats):
        assert stats.launch_faults == 0
        assert stats.launch_retries == 0
        assert stats.transfer_faults == 0
        assert stats.transfer_retries == 0
        assert stats.commands_failed == 0
        assert stats.devices_lost == 0
        assert stats.fault_cycles == 0.0
        assert stats.degraded_fraction == 0.0


def test_unfired_plan_is_bit_identical_to_no_plan():
    # A plan whose trigger never matches must not perturb the schedule.
    plan = FaultPlan(
        specs=(FaultSpec(kind=DEVICE_TRANSIENT, device=0, at_command=999),)
    )
    baseline = _queue()
    faulted = _queue(faults=plan)
    assert np.array_equal(_run_chain(baseline), _run_chain(faulted))
    assert _snapshot(baseline) == _snapshot(faulted)


def test_in_order_queue_accepts_fault_plan():
    plan = FaultPlan(specs=(FaultSpec(kind=DEVICE_TRANSIENT, device=0, at_command=0),))
    baseline = _queue(cls=MultiDeviceQueue)
    faulted = _queue(cls=MultiDeviceQueue, faults=plan)
    assert np.array_equal(_run_chain(baseline), _run_chain(faulted))
    assert faulted.stats.launch_faults == 1
    assert faulted.stats.launch_retries == 1


# --------------------------------------------------------------------------- #
# Recovery: results stay bit-exact, schedules may degrade
# --------------------------------------------------------------------------- #
def test_transient_fault_retries_and_recovers():
    plan = FaultPlan(specs=(FaultSpec(kind=DEVICE_TRANSIENT, device=0, at_command=0),))
    baseline = _queue()
    faulted = _queue(faults=plan)
    assert np.array_equal(_run_chain(baseline), _run_chain(faulted))
    assert faulted.stats.launch_faults == 1
    assert faulted.stats.launch_retries == 1
    assert faulted.stats.commands_failed == 0
    assert faulted.stats.fault_cycles > 0.0
    retried = [e for e in faulted.events if e.attempts > 1]
    assert len(retried) == 1


def test_permanent_failure_retires_device_and_migrates_work():
    plan = FaultPlan(specs=(FaultSpec(kind=DEVICE_FAIL, device=0, at_command=0),))
    baseline = _queue()
    faulted = _queue(faults=plan)
    assert np.array_equal(_run_chain(baseline), _run_chain(faulted))
    assert faulted.stats.devices_lost == 1
    assert faulted.alive_devices == [1]
    assert faulted.fault_injector.is_dead(0)
    # Every launch after the failure lands on the survivor.
    assert all(e.device == 1 for e in faulted.schedule)


def test_permanent_failure_evacuates_sole_copy_buffers():
    # Produce a dirty buffer on device 0, then kill device 0 on the *next*
    # launch attempt: the only valid copy must be salvaged host-ward before
    # the device disappears, and the dependent launch must still see it.
    plan = FaultPlan(specs=(FaultSpec(kind=DEVICE_FAIL, device=0, at_command=1),))
    queue = _queue(faults=plan)
    src = queue.create_buffer(np.arange(N))
    mid = queue.allocate_buffer(N)
    out = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, mid, label="produce", device=0)
    queue.flush()
    assert not mid.host_valid and mid.valid_on == {0}
    _enqueue_copy(queue, mid, out, label="consume", device=0)
    queue.flush()
    assert queue.stats.devices_lost == 1
    assert queue.stats.evacuated_buffers >= 1
    assert np.array_equal(queue.enqueue_read(out), np.arange(N, dtype=np.uint32))


def test_transfer_stall_charges_extra_cycles():
    stall = 7_500.0
    plan = FaultPlan(
        specs=(
            FaultSpec(
                kind=TRANSFER_STALL, device=0, at_command=0, stall_cycles=stall
            ),
        )
    )
    baseline = _queue()
    faulted = _queue(faults=plan)
    assert np.array_equal(_run_chain(baseline), _run_chain(faulted))
    assert faulted.stats.transfer_faults == 1
    assert faulted.stats.fault_cycles == stall
    assert (
        faulted.stats.transfer_cycles == baseline.stats.transfer_cycles + stall
    )


def test_transfer_corruption_resends_the_copy():
    plan = FaultPlan(
        specs=(FaultSpec(kind=TRANSFER_CORRUPT, device=0, at_command=0),)
    )
    baseline = _queue()
    faulted = _queue(faults=plan)
    assert np.array_equal(_run_chain(baseline), _run_chain(faulted))
    assert faulted.stats.transfer_faults == 1
    assert faulted.stats.transfer_retries == 1
    # The re-send doubles exactly one copy's charge.
    assert faulted.stats.transfer_cycles > baseline.stats.transfer_cycles


def test_dead_device_hint_degrades_to_scheduler_placement():
    plan = FaultPlan(specs=(FaultSpec(kind=DEVICE_FAIL, device=0, at_command=0),))
    queue = _queue(faults=plan)
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, dst, label="kill", device=0)
    queue.flush()
    assert queue.fault_injector.is_dead(0)
    # A later launch hinted at the dead device runs on the survivor instead.
    out = queue.allocate_buffer(N)
    event = _enqueue_copy(queue, dst, out, label="hinted", device=0)
    queue.flush()
    assert event.device == 1
    assert np.array_equal(queue.enqueue_read(out), np.arange(N, dtype=np.uint32))


# --------------------------------------------------------------------------- #
# Failure paths: structured errors, cascades, Event.wait
# --------------------------------------------------------------------------- #
def _exhausting_plan(num_devices=2, max_retries=1):
    """Enough transients on every device to out-spend the retry budget."""
    specs = tuple(
        FaultSpec(kind=DEVICE_TRANSIENT, device=device, at_command=index)
        for device in range(num_devices)
        for index in range(max_retries + 2)
    )
    return FaultPlan(specs=specs, max_retries=max_retries, backoff_cycles=10.0)


def test_exhausted_retries_raise_structured_error():
    queue = _queue(faults=_exhausting_plan())
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    event = _enqueue_copy(queue, src, dst, label="doomed")
    with pytest.raises(DeviceFailureError) as excinfo:
        queue.flush()
    error = excinfo.value
    assert error.event_label == "doomed"
    assert error.attempts == 2  # max_retries=1 ⇒ two attempts
    assert "doomed" in error.graph_slice
    assert event.failed and event.error is error
    assert queue.failures == [error]
    assert queue.stats.commands_failed == 1


def test_dependents_of_a_failed_command_cascade():
    queue = _queue(faults=_exhausting_plan())
    src = queue.create_buffer(np.arange(N))
    mid = queue.allocate_buffer(N)
    out = queue.allocate_buffer(N)
    root_event = _enqueue_copy(queue, src, mid, label="root")
    dep_event = _enqueue_copy(queue, mid, out, label="dep")
    with pytest.raises(DeviceFailureError):
        queue.flush()
    assert root_event.failed and dep_event.failed
    # The dependent's error chains the root failure and never invoked the
    # simulator (the cascade is fail-fast, not a second retry storm).  Its
    # event_label names the *dependency* it failed on, pointing at the root.
    assert dep_event.error.__cause__ is root_event.error
    assert dep_event.error.event_label == "root"
    # The root's graph slice grew to cover the casualty.
    assert root_event.error.graph_slice == ("root", "dep")
    assert queue.stats.commands_failed == 2
    assert len(queue.failures) == 1  # one *root* failure


def test_wait_on_failed_event_raises_immediately():
    queue = _queue(faults=_exhausting_plan())
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    event = _enqueue_copy(queue, src, dst, label="doomed")
    with pytest.raises(DeviceFailureError):
        queue.flush()
    # The event already failed: wait() must re-raise without hanging and
    # without flushing anything new.
    with pytest.raises(DeviceFailureError) as excinfo:
        event.wait()
    assert excinfo.value is event.error


def test_wait_drives_the_queue_and_raises_for_pending_failures():
    queue = _queue(faults=_exhausting_plan())
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    event = _enqueue_copy(queue, src, dst, label="doomed")
    assert not event.settled
    with pytest.raises(DeviceFailureError):
        event.wait()  # flushes internally, then surfaces the failure
    assert event.failed


def test_wait_completes_successful_events():
    queue = _queue()
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    event = _enqueue_copy(queue, src, dst)
    event.wait()
    assert event.done and not event.failed


def test_read_of_failed_buffer_fails_fast_with_cause():
    queue = _queue(faults=_exhausting_plan())
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    event = _enqueue_copy(queue, src, dst, label="doomed")
    with pytest.raises(DeviceFailureError):
        queue.flush()
    with pytest.raises(DeviceFailureError) as excinfo:
        queue.enqueue_read(dst)
    assert excinfo.value.__cause__ is event.error


def test_rewriting_a_failed_buffer_recovers_it():
    # Writes are data-independent of failed producers: re-establishing the
    # contents from the host is the documented recovery path.
    queue = _queue(faults=_exhausting_plan())
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, dst, label="doomed")
    with pytest.raises(DeviceFailureError):
        queue.flush()
    queue.enqueue_write(dst, np.full(N, 7))
    assert np.array_equal(queue.enqueue_read(dst), np.full(N, 7, dtype=np.uint32))


def test_every_device_dead_fails_remaining_commands():
    plan = FaultPlan(
        specs=(
            FaultSpec(kind=DEVICE_FAIL, device=0, at_command=0),
            FaultSpec(kind=DEVICE_FAIL, device=1, at_command=0),
        ),
        max_retries=3,
    )
    queue = _queue(faults=plan)
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, dst, label="first")
    with pytest.raises(DeviceFailureError):
        queue.flush()
    assert queue.alive_devices == []
    # Anything enqueued afterwards fails too — with the structured error,
    # not a hang or an index crash.
    out = queue.allocate_buffer(N)
    event = _enqueue_copy(queue, src, out, label="late")
    with pytest.raises(DeviceFailureError):
        queue.flush()
    assert event.failed
    assert "every device" in str(event.error)


def test_flush_completes_independent_work_despite_a_failure():
    # Only device 0 exhausts its budget *for the hinted command*; an
    # independent launch in the same flush still runs and verifies.
    specs = tuple(
        FaultSpec(kind=DEVICE_TRANSIENT, device=0, at_command=index)
        for index in range(3)
    )
    plan = FaultPlan(specs=specs, max_retries=1, backoff_cycles=10.0)
    queue = _queue(faults=plan)
    src = queue.create_buffer(np.arange(N))
    doomed_dst = queue.allocate_buffer(N)
    ok_dst = queue.allocate_buffer(N)
    doomed = _enqueue_copy(queue, src, doomed_dst, label="doomed", device=0)
    ok = _enqueue_copy(queue, src, ok_dst, label="ok", device=1)
    with pytest.raises(DeviceFailureError):
        queue.flush()
    assert doomed.failed
    assert ok.done and not ok.failed
    assert np.array_equal(queue.enqueue_read(ok_dst), np.arange(N, dtype=np.uint32))


# --------------------------------------------------------------------------- #
# Fuzz: randomized seeded plans keep results bit-exact
# --------------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_devices=st.integers(min_value=1, max_value=4),
    num_faults=st.integers(min_value=0, max_value=6),
    max_retries=st.integers(min_value=2, max_value=4),
    lpt=st.booleans(),
)
def test_fuzz_random_plans_recover_bit_exactly(
    seed, num_devices, num_faults, max_retries, lpt
):
    plan = FaultPlan.random(
        seed,
        num_devices=num_devices,
        num_faults=num_faults,
        max_retries=max_retries,
        allow_permanent=num_devices > 1,
    )
    baseline = _queue(num_devices=num_devices, lpt=lpt)
    values_base = _run_chain(baseline)
    faulted = _queue(num_devices=num_devices, faults=plan, lpt=lpt)
    values_faulted = _run_chain(faulted)
    # Bit-exact results; the schedule may only have degraded.
    assert np.array_equal(values_base, values_faulted)
    assert faulted.stats.makespan >= baseline.stats.makespan
    assert faulted.stats.commands_failed == 0
    # Kernel compute is identical: faults never reach the simulators.
    assert faulted.stats.total_cycles == baseline.stats.total_cycles
    # Determinism: the same plan replays to the identical schedule.
    replay = _queue(num_devices=num_devices, faults=plan, lpt=lpt)
    _run_chain(replay)
    assert _snapshot(replay) == _snapshot(faulted)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fuzz_fault_kinds_cover_the_registry(seed):
    plan = FaultPlan.random(seed, num_devices=4, num_faults=8)
    for spec in plan.specs:
        assert spec.kind in FAULT_KINDS
        assert 0 <= spec.device < 4


# --------------------------------------------------------------------------- #
# PR 8 bugfix batch: accounting reconciliation, prefetch degrade, zero-safety
# --------------------------------------------------------------------------- #
def test_transfer_accounting_reconciles_with_a_fired_plan():
    """Regression: evacuation read-backs were charged to the device stats but
    to no event, so ``sum(events) == sum(device_transfer_cycles)`` broke the
    moment a ``device-fail`` salvaged a sole-copy buffer.  They now land on
    the casualty command's event (``readback_cycles``), and stall / corrupt
    charges stay on the transfer's own event."""
    plan = FaultPlan(
        specs=(
            FaultSpec(kind=TRANSFER_STALL, device=0, at_command=0, stall_cycles=500.0),
            FaultSpec(kind=TRANSFER_CORRUPT, device=1, at_command=1),
            FaultSpec(kind=DEVICE_FAIL, device=0, at_command=1),
        )
    )
    queue = _queue(num_devices=8, faults=plan)
    src = queue.create_buffer(np.arange(N))
    mid = queue.allocate_buffer(N)
    out = queue.allocate_buffer(N)
    # Dirty sole copy on device 0, then kill device 0 on the next dispatch:
    # the salvage read-back must be charged to the killing command's event.
    _enqueue_copy(queue, src, mid, label="produce", device=0)
    queue.flush()
    assert not mid.host_valid and mid.valid_on == {0}
    _enqueue_copy(queue, mid, out, label="consume", device=0)
    queue.flush()
    queue.enqueue_read(out)
    assert queue.stats.devices_lost == 1
    assert queue.stats.transfer_faults >= 1
    per_event = sum(e.transfer_cycles + e.readback_cycles for e in queue.events)
    per_device = sum(queue.stats.device_transfer_cycles.values())
    assert per_event == pytest.approx(per_device)
    assert per_event == pytest.approx(queue.stats.transfer_cycles)
    # The casualty event carries the evacuation read-back explicitly.
    consume = next(e for e in queue.events if e.label == "consume")
    assert consume.readback_cycles > 0.0
    assert np.array_equal(queue.enqueue_read(out), np.arange(N, dtype=np.uint32))


def test_dead_device_prefetch_write_degrades_like_a_launch_hint():
    """Regression: a launch hinted at a retired device degrades to scheduler
    placement, but an ``enqueue_write`` prefetch hinted at the same corpse
    re-polluted its residency (or targeted it outright).  Both hints now
    degrade through the same liveness check."""
    plan = FaultPlan(specs=(FaultSpec(kind=DEVICE_FAIL, device=0, at_command=0),))
    queue = _queue(num_devices=8, faults=plan)
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, dst, label="kill", device=0)
    queue.flush()
    assert queue.fault_injector.is_dead(0)
    # Prefetch hinted at the corpse: the write must degrade to a host-only
    # update instead of erroring or marking the dead device resident.
    payload = np.arange(N) + 42
    queue.enqueue_write(src, payload, device=0)
    queue.flush()
    assert 0 not in src.valid_on
    out = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, out, label="consume")
    queue.flush()
    assert np.array_equal(
        queue.enqueue_read(out).astype(np.int64), payload
    )


def test_queue_stats_are_zero_safe_at_scale():
    """Regression: empty flushes with faults armed and devices that retire
    before executing anything must never divide by zero."""
    plan = FaultPlan(specs=(FaultSpec(kind=DEVICE_FAIL, device=3, at_command=0),))
    # Empty flush, faults armed: makespan 0 ⇒ every utilization is 0.0.
    idle = _queue(num_devices=8, faults=plan)
    idle.flush()
    assert idle.stats.makespan == 0.0
    assert idle.stats.utilization == 0.0
    assert idle.stats.degraded_fraction == 0.0
    assert all(value == 0.0 for value in idle.stats.device_utilization().values())
    # Device 3 dies on its first dispatch: it retires having executed
    # nothing, and its utilization reads 0.0 rather than raising.
    queue = _queue(num_devices=8, faults=plan)
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, dst, label="first", device=3)
    queue.flush()
    assert queue.stats.devices_lost == 1
    utilization = queue.stats.device_utilization()
    assert utilization[3] == 0.0
    assert 0.0 <= queue.stats.degraded_fraction <= 1.0
    assert np.array_equal(queue.enqueue_read(dst), np.arange(N, dtype=np.uint32))


def test_injector_surviving_filters_an_arbitrary_subset():
    plan = FaultPlan(specs=(FaultSpec(kind=DEVICE_FAIL, device=1, at_command=0),))
    injector = FaultInjector(plan, num_devices=4)
    assert injector.surviving(range(4)) == [0, 1, 2, 3]
    injector.mark_dead(1)
    assert injector.is_dead(1)
    assert injector.surviving(range(4)) == [0, 2, 3]
    assert injector.surviving([1]) == []
    assert injector.surviving([3, 2]) == [3, 2]
