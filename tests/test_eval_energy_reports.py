"""Tests for the energy-efficiency extension and the report exporters."""

from __future__ import annotations

import csv
import io

import pytest

from repro.errors import KernelError
from repro.eval.benchmarks import run_table3
from repro.eval.comparison import compute_area_ratios, compute_speedups, derate_by_area
from repro.eval.energy import (
    EnergyFigures,
    build_energy_comparison,
    format_energy_table,
    riscv_power_w,
    synthesized_power_w,
)
from repro.eval.reports import (
    energy_to_csv,
    speedups_to_csv,
    speedups_to_markdown,
    table1_to_csv,
    table1_to_markdown,
    table2_to_csv,
    table3_to_csv,
    table3_to_markdown,
    write_report_bundle,
)
from repro.eval.tables import build_table1, build_table2


@pytest.fixture(scope="module")
def small_table3():
    """A scaled-down Table III shared by the energy and report tests."""
    return run_table3(kernels=["copy", "div_int"], cu_counts=(1, 2), scale=0.125)


@pytest.fixture(scope="module")
def energy_comparison(small_table3, tech):
    return build_energy_comparison(small_table3, tech, frequency_mhz=667.0, cu_counts=(1, 2))


# --------------------------------------------------------------------------- #
# Energy model
# --------------------------------------------------------------------------- #
def test_energy_figures_runtime_energy_and_edp():
    figures = EnergyFigures(
        kernel="copy", target="riscv", cycles=667_000.0, frequency_mhz=667.0, power_w=0.5
    )
    assert figures.runtime_ms == pytest.approx(1.0)
    assert figures.energy_mj == pytest.approx(0.5)
    assert figures.edp_mj_ms == pytest.approx(0.5)


def test_synthesized_power_grows_with_cu_count(tech):
    powers = synthesized_power_w(tech, (1, 2), 667.0)
    assert powers[2] > 1.5 * powers[1]
    assert riscv_power_w(tech, 667.0) < powers[1]


def test_energy_comparison_has_every_kernel_and_cu_count(energy_comparison):
    assert sorted(energy_comparison.kernels) == ["copy", "div_int"]
    assert energy_comparison.cu_counts == [1, 2]
    assert energy_comparison.riscv_power_w > 0
    for kernel in energy_comparison.kernels:
        for num_cus in energy_comparison.cu_counts:
            assert energy_comparison.gpu[kernel][num_cus].energy_mj > 0


def test_energy_gain_follows_the_parallelism_split(energy_comparison):
    """The parallel kernel gains far more energy efficiency than the divergent one."""
    copy_gain = energy_comparison.gain("copy", 1)
    div_gain = energy_comparison.gain("div_int", 1)
    assert copy_gain > div_gain
    assert energy_comparison.best() >= copy_gain


def test_energy_gain_for_unknown_kernel_raises(energy_comparison):
    with pytest.raises(KernelError):
        energy_comparison.gain("fft", 1)


def test_energy_gain_series_and_text_table(energy_comparison):
    series = energy_comparison.gain_series()
    assert series.metric == "energy_gain"
    assert series.value("copy", 2) == pytest.approx(energy_comparison.gain("copy", 2))
    text = format_energy_table(energy_comparison)
    assert "Kernel" in text and "copy" in text and "gain" in text


# --------------------------------------------------------------------------- #
# Report exporters
# --------------------------------------------------------------------------- #
def _parse_csv(text: str):
    return list(csv.reader(io.StringIO(text)))


def test_table1_exports(tech):
    results = build_table1(tech, cu_counts=(1,), frequencies_mhz=(500.0,))
    rows = _parse_csv(table1_to_csv(results))
    assert rows[0][0] == "version"
    assert rows[1][0] == "1@500MHz"
    assert len(rows) == 2
    markdown = table1_to_markdown(results)
    assert markdown.count("|") > 10
    assert "1@500MHz" in markdown


def test_table2_export_lists_six_metal_layers(tech):
    estimates = build_table2(tech)
    rows = _parse_csv(table2_to_csv(estimates))
    assert [row[0] for row in rows[1:]] == ["M2", "M3", "M4", "M5", "M6", "M7"]
    assert len(rows[0]) == 1 + len(estimates)


def test_table3_and_speedup_exports(small_table3, tech):
    rows = _parse_csv(table3_to_csv(small_table3))
    assert rows[0][:3] == ["kernel", "riscv_size", "gpu_size"]
    assert {row[0] for row in rows[1:]} == {"copy", "div_int"}
    assert "copy" in table3_to_markdown(small_table3)

    speedups = compute_speedups(small_table3)
    csv_rows = _parse_csv(speedups_to_csv(speedups))
    assert csv_rows[0] == ["kernel", "1cu", "2cu"]
    markdown = speedups_to_markdown(speedups)
    assert "| kernel |" in markdown

    ratios = compute_area_ratios(tech, cu_counts=(1, 2))
    derated = derate_by_area(speedups, ratios)
    derated_rows = _parse_csv(speedups_to_csv(derated))
    assert float(derated_rows[1][1]) < float(csv_rows[1][1])


def test_energy_csv_export(energy_comparison):
    rows = _parse_csv(energy_to_csv(energy_comparison))
    assert rows[0][0] == "kernel"
    assert len(rows) == 1 + len(energy_comparison.kernels)
    assert all(len(row) == len(rows[0]) for row in rows)


def test_write_report_bundle_skips_missing_and_writes_given(tmp_path, small_table3, energy_comparison):
    speedups = compute_speedups(small_table3)
    written = write_report_bundle(
        str(tmp_path / "reports"),
        table3=small_table3,
        figure5=speedups,
        energy=energy_comparison,
    )
    assert set(written) == {
        "table3.csv",
        "table3.md",
        "figure5_speedup.csv",
        "figure5_speedup.md",
        "energy_extension.csv",
        "energy_extension.md",
    }
    for path in written.values():
        with open(path, "r", encoding="utf-8") as handle:
            assert handle.read().strip()
