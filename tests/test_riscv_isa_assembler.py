"""RV32IM ISA encoding and assembler."""

import pytest

from repro.errors import AssemblyError
from repro.riscv.assembler import A0, RA, RvAssembler, T0, T1, ZERO
from repro.riscv.isa import (
    RvInstruction,
    RvOpcode,
    decode_rv,
    encode_rv,
    rv_opcode_from_mnemonic,
)


def test_known_encodings_match_the_architecture():
    # addi x1, x0, 5  ->  0x00500093 (a standard reference encoding)
    word = encode_rv(RvInstruction(RvOpcode.ADDI, rd=1, rs1=0, imm=5))
    assert word == 0x00500093
    # add x3, x1, x2 -> 0x002081B3
    assert encode_rv(RvInstruction(RvOpcode.ADD, rd=3, rs1=1, rs2=2)) == 0x002081B3
    # ebreak -> 0x00100073
    assert encode_rv(RvInstruction(RvOpcode.EBREAK)) == 0x00100073


@pytest.mark.parametrize(
    "instruction",
    [
        RvInstruction(RvOpcode.ADD, rd=5, rs1=6, rs2=7),
        RvInstruction(RvOpcode.SUB, rd=1, rs1=2, rs2=3),
        RvInstruction(RvOpcode.MUL, rd=10, rs1=11, rs2=12),
        RvInstruction(RvOpcode.DIVU, rd=10, rs1=11, rs2=12),
        RvInstruction(RvOpcode.ADDI, rd=4, rs1=4, imm=-128),
        RvInstruction(RvOpcode.SLLI, rd=4, rs1=4, imm=7),
        RvInstruction(RvOpcode.SRAI, rd=4, rs1=4, imm=31),
        RvInstruction(RvOpcode.LW, rd=8, rs1=2, imm=-16),
        RvInstruction(RvOpcode.SW, rs1=2, rs2=9, imm=124),
        RvInstruction(RvOpcode.BNE, rs1=1, rs2=2, imm=-64),
        RvInstruction(RvOpcode.BGEU, rs1=1, rs2=2, imm=4094),
        RvInstruction(RvOpcode.JAL, rd=1, imm=2048),
        RvInstruction(RvOpcode.JALR, rd=0, rs1=1, imm=0),
        RvInstruction(RvOpcode.LUI, rd=7, imm=0xFFFFF),
        RvInstruction(RvOpcode.AUIPC, rd=7, imm=1),
        RvInstruction(RvOpcode.EBREAK),
    ],
)
def test_encode_decode_round_trip(instruction):
    decoded = decode_rv(encode_rv(instruction))
    assert decoded.opcode is instruction.opcode
    assert decoded.rd == instruction.rd or not instruction.opcode.info.fmt.name == "R"
    assert decoded.imm == instruction.imm or instruction.opcode.info.fmt.name == "R"


def test_immediate_range_checks():
    with pytest.raises(AssemblyError):
        encode_rv(RvInstruction(RvOpcode.ADDI, rd=1, rs1=1, imm=5000))
    with pytest.raises(AssemblyError):
        encode_rv(RvInstruction(RvOpcode.BEQ, rs1=1, rs2=2, imm=3))  # odd offset
    with pytest.raises(AssemblyError):
        encode_rv(RvInstruction(RvOpcode.SLLI, rd=1, rs1=1, imm=40))
    with pytest.raises(AssemblyError):
        RvInstruction(RvOpcode.ADD, rd=40, rs1=0, rs2=0)


def test_mnemonic_lookup():
    assert rv_opcode_from_mnemonic("add") is RvOpcode.ADD
    with pytest.raises(AssemblyError):
        rv_opcode_from_mnemonic("vadd.vv")


def test_assembler_labels_resolve_to_pc_relative_offsets():
    asm = RvAssembler("loop")
    asm.li(T0, 3)
    asm.label("head")
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=-1)
    asm.emit(RvOpcode.BNE, rs1=T0, rs2=ZERO, label="head")
    asm.halt()
    program = asm.assemble()
    branch = program.instructions[2]
    assert branch.imm == -4  # one instruction backwards
    assert "head" in program.labels


def test_assembler_undefined_and_duplicate_labels():
    asm = RvAssembler("bad")
    asm.j("missing")
    with pytest.raises(AssemblyError):
        asm.assemble()
    asm2 = RvAssembler("dup")
    asm2.label("x")
    with pytest.raises(AssemblyError):
        asm2.label("x")


def test_li_handles_small_and_large_constants():
    asm = RvAssembler("consts")
    asm.li(A0, 42)
    asm.li(A0, 0x12345678)
    asm.li(A0, -1)
    asm.li(A0, 0xFFFFFFFF)
    program = asm.assemble()
    # 42 -> 1 instruction; 0x12345678 -> lui+addi; -1 -> 1; 0xFFFFFFFF (== -1) -> 1.
    assert len(program) == 5
    with pytest.raises(AssemblyError):
        asm.li(A0, 1 << 33)


def test_pseudo_instructions():
    asm = RvAssembler("pseudo")
    asm.mv(T1, T0)
    asm.nop()
    asm.la(RA, 0x100)
    asm.halt()
    program = asm.assemble()
    assert program.instructions[0].opcode is RvOpcode.ADDI
    assert program.instructions[-1].opcode is RvOpcode.EBREAK
    assert "ebreak" in program.listing()
    assert all(isinstance(word, int) for word in program.encode())
