"""Tests for the multi-device runtime (``repro.runtime.multidevice``).

Engine-level invariants: transfer charging, buffer residency (dirty tracking,
skip accounting), deterministic device assignment, pool reuse via
``GGPUSimulator.reset`` being bit-identical to fresh construction, and the
``QueueStats`` multi-device reporting (utilization, makespan, critical path)
including its zero-launch guards.  The DAG-shaped bit-exactness pins against
in-order execution live in ``tests/test_runtime_queue.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import GGPUConfig, Topology, TransferConfig
from repro.arch.kernel import NDRange
from repro.errors import KernelError
from repro.kernels import get_kernel_spec
from repro.runtime.multidevice import MultiDeviceQueue, OutOfOrderQueue
from repro.runtime.queue import QueueStats
from repro.simt.gpu import GGPUSimulator

MEM = 8 * 1024 * 1024
N = 128


def _queue(cls=MultiDeviceQueue, num_devices=1, transfer=None, num_cus=1):
    return cls(
        config=GGPUConfig(num_cus=num_cus),
        num_devices=num_devices,
        memory_bytes=MEM,
        transfer=transfer,
    )


def _enqueue_copy(queue, src, dst, wait_for=(), label=None, device=None):
    kernel = get_kernel_spec("copy").build()
    return queue.enqueue(
        kernel,
        NDRange(N, 64),
        {"src": src, "dst": dst, "n": N},
        label=label,
        wait_for=wait_for,
        writes=("dst",),
        device=device,
    )


# --------------------------------------------------------------------------- #
# Transfer model
# --------------------------------------------------------------------------- #
def test_transfer_cycles_formula():
    model = TransferConfig(latency_cycles=100, bytes_per_cycle=8.0)
    assert model.cycles(0) == 0.0
    assert model.cycles(1) == 101.0
    assert model.cycles(8) == 101.0
    assert model.cycles(9) == 102.0
    assert model.cycles(64 * 4) == 100.0 + 32.0


def test_launch_charges_one_write_per_stale_buffer():
    transfer = TransferConfig(latency_cycles=100, bytes_per_cycle=4.0)
    queue = _queue(transfer=transfer)
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)  # zero-filled: already valid on device 0
    event = _enqueue_copy(queue, src, dst)
    queue.flush()
    per_buffer = transfer.cycles(N * 4)
    assert event.transfer_cycles == per_buffer  # only src moved
    assert queue.stats.transfers_to_device == 1
    assert queue.stats.bytes_to_device == N * 4
    assert queue.stats.transfers_skipped == 1  # dst was already resident
    assert event.start_cycle == per_buffer
    assert event.end_cycle == event.start_cycle + event.compute_cycles
    assert queue.stats.makespan == event.end_cycle


def test_residency_skips_retransfer_of_clean_buffers():
    queue = _queue()
    src = queue.create_buffer(np.arange(N))
    dst_a = queue.allocate_buffer(N)
    dst_b = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, dst_a)
    queue.flush()
    to_device_before = queue.stats.transfers_to_device
    # src is now resident and clean on device 0: the second launch reusing it
    # must not pay the host→device copy again.
    _enqueue_copy(queue, src, dst_b)
    queue.flush()
    assert queue.stats.transfers_to_device == to_device_before
    assert queue.stats.transfers_skipped >= 2


def test_dirty_buffer_migrates_through_the_host():
    transfer = TransferConfig(latency_cycles=50, bytes_per_cycle=4.0)
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1), num_devices=2, memory_bytes=MEM, transfer=transfer
    )
    payload = np.arange(N) + 7
    src = queue.create_buffer(payload)
    mid = queue.allocate_buffer(N)
    dst = queue.allocate_buffer(N)
    first = _enqueue_copy(queue, src, mid, label="produce")
    queue.flush()
    producer = first.device
    # Force the consumer onto the other device: make it busy-free but strip
    # the producer's advantage by pre-loading the consumer's input there.
    consumer_event = _enqueue_copy(queue, mid, dst, wait_for=(first,), label="consume")
    queue.flush()
    if consumer_event.device != producer:
        # mid was dirty on the producer: it must have been read back and
        # re-written, charged on both timelines.
        assert queue.stats.transfers_from_device >= 1
        assert queue.stats.bytes_from_device >= N * 4
    # Whatever the placement, the data is right.
    assert np.array_equal(queue.enqueue_read(dst).astype(np.int64), payload)


def test_enqueue_read_charges_only_dirty_buffers():
    queue = _queue()
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, dst)
    queue.flush()
    from_device_before = queue.stats.transfers_from_device
    queue.enqueue_read(dst)  # dirty on device 0: charged
    assert queue.stats.transfers_from_device == from_device_before + 1
    queue.enqueue_read(dst)  # host image now valid: skipped
    assert queue.stats.transfers_from_device == from_device_before + 1
    queue.enqueue_read(src)  # never written by a kernel: skipped
    assert queue.stats.transfers_from_device == from_device_before + 1


# --------------------------------------------------------------------------- #
# Determinism and pool reuse
# --------------------------------------------------------------------------- #
def _schedule_digest(queue):
    return [
        (e.label, e.device, e.start_cycle, e.end_cycle, e.transfer_cycles, e.compute_cycles)
        for e in queue.schedule
    ]


def _run_independent_batch(queue):
    for index, name in enumerate(("saxpy", "dot", "copy", "transpose")):
        spec = get_kernel_spec(name)
        workload = spec.workload(N, 11)
        args = dict(workload.scalars)
        for buffer_name, contents in workload.buffers.items():
            args[buffer_name] = queue.create_buffer(
                np.asarray(contents, dtype=np.int64) & 0xFFFFFFFF
            )
        queue.enqueue(spec.build(), workload.ndrange, args, label=f"{name}#{index}")
    queue.finish()
    return queue


def test_schedule_is_deterministic_across_runs():
    first = _run_independent_batch(
        OutOfOrderQueue(config=GGPUConfig(num_cus=1), num_devices=3, memory_bytes=MEM)
    )
    second = _run_independent_batch(
        OutOfOrderQueue(config=GGPUConfig(num_cus=1), num_devices=3, memory_bytes=MEM)
    )
    assert _schedule_digest(first) == _schedule_digest(second)
    assert first.stats == second.stats


def test_reused_pool_matches_fresh_devices_bit_exactly():
    pool = [GGPUSimulator(GGPUConfig(num_cus=1), memory_bytes=MEM) for _ in range(2)]
    # Dirty the pool with a first run, then reuse it: the reset must bring
    # every simulator back to a fresh simulator's exact state.
    _run_independent_batch(OutOfOrderQueue(devices=pool))
    reused = _run_independent_batch(OutOfOrderQueue(devices=pool))
    fresh = _run_independent_batch(
        OutOfOrderQueue(config=GGPUConfig(num_cus=1), num_devices=2, memory_bytes=MEM)
    )
    assert _schedule_digest(reused) == _schedule_digest(fresh)
    assert reused.stats == fresh.stats


def test_independent_launches_spread_across_devices():
    queue = _run_independent_batch(
        OutOfOrderQueue(config=GGPUConfig(num_cus=1), num_devices=4, memory_bytes=MEM)
    )
    assert {event.device for event in queue.schedule} == {0, 1, 2, 3}
    assert queue.stats.makespan >= queue.stats.critical_path_cycles
    assert queue.stats.makespan < queue.stats.total_cycles + queue.stats.transfer_cycles


# --------------------------------------------------------------------------- #
# Validation and stats guards
# --------------------------------------------------------------------------- #
def test_queue_rejects_foreign_buffers_events_and_bad_writes():
    queue = _queue(cls=OutOfOrderQueue)
    other = _queue(cls=OutOfOrderQueue)
    kernel = get_kernel_spec("copy").build()
    foreign = other.create_buffer(np.arange(N))
    mine = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    with pytest.raises(KernelError):
        queue.enqueue(kernel, NDRange(N, 64), {"src": foreign, "dst": dst, "n": N})
    with pytest.raises(KernelError):
        queue.enqueue(kernel, NDRange(N, 64), {"src": 64, "dst": dst, "n": N})
    with pytest.raises(KernelError):
        queue.enqueue(
            kernel, NDRange(N, 64), {"src": mine, "dst": dst, "n": N}, writes=("n",)
        )
    foreign_event = _enqueue_copy(other, foreign, other.allocate_buffer(N))
    with pytest.raises(KernelError):
        _enqueue_copy(queue, mine, dst, wait_for=(foreign_event,))


def test_constructor_validation():
    with pytest.raises(KernelError):
        MultiDeviceQueue(num_devices=0)
    with pytest.raises(KernelError):
        MultiDeviceQueue(devices=[])
    with pytest.raises(KernelError):
        MultiDeviceQueue(config=GGPUConfig(), devices=[GGPUSimulator(memory_bytes=MEM)])
    # A mixed-config pool would make cycle counts depend on device assignment.
    with pytest.raises(KernelError):
        MultiDeviceQueue(
            devices=[
                GGPUSimulator(GGPUConfig(num_cus=1), memory_bytes=MEM),
                GGPUSimulator(GGPUConfig(num_cus=4), memory_bytes=MEM),
            ]
        )


def test_enqueue_write_size_mismatch():
    queue = _queue()
    buffer = queue.allocate_buffer(N)
    with pytest.raises(KernelError):
        queue.enqueue_write(buffer, np.arange(N + 1))


def test_zero_launch_stats_never_divide_by_zero():
    stats = QueueStats()
    assert stats.average_cycles_per_launch == 0.0
    assert stats.transfer_fraction == 0.0
    assert stats.utilization == 0.0
    assert stats.device_utilization() == {}

    queue = _queue(cls=OutOfOrderQueue, num_devices=2)
    assert queue.finish() == []
    assert queue.flush() == []
    assert queue.stats.makespan == 0.0
    assert queue.stats.utilization == 0.0
    assert queue.stats.device_utilization() == {0: 0.0, 1: 0.0}
    assert queue.stats.average_cycles_per_launch == 0.0


def test_in_order_queue_serializes_even_with_many_devices():
    queue = _queue(num_devices=3)
    src = queue.create_buffer(np.arange(N))
    destinations = [queue.allocate_buffer(N) for _ in range(3)]
    events = [_enqueue_copy(queue, src, dst) for dst in destinations]
    queue.flush()
    # In-order: each launch starts at or after the previous one's end.
    for earlier, later in zip(events, events[1:], strict=False):
        assert later.start_cycle >= earlier.end_cycle


# --------------------------------------------------------------------------- #
# Full-signature validation at enqueue time
# --------------------------------------------------------------------------- #
def test_enqueue_validates_the_full_kernel_signature():
    """Regression: an omitted argument used to slip through enqueue and blow
    up later inside ``GGPUSimulator.launch`` with a confusing error."""
    queue = _queue(cls=OutOfOrderQueue)
    kernel = get_kernel_spec("copy").build()
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    with pytest.raises(KernelError, match="missing argument"):
        queue.enqueue(kernel, NDRange(N, 64), {"src": src, "n": N})  # no dst
    with pytest.raises(KernelError, match="missing argument"):
        queue.enqueue(kernel, NDRange(N, 64), {"src": src, "dst": dst})  # no n
    with pytest.raises(KernelError, match="no argument"):
        queue.enqueue(
            kernel, NDRange(N, 64), {"src": src, "dst": dst, "n": N, "bogus": 1}
        )
    with pytest.raises(KernelError, match="scalar"):
        queue.enqueue(kernel, NDRange(N, 64), {"src": src, "dst": dst, "n": src})
    # Nothing was enqueued by the rejected calls: only the buffer-creation
    # write command is pending.
    assert queue.pending == 1 and queue.stats.launches == 0
    event = queue.enqueue(kernel, NDRange(N, 64), {"src": src, "dst": dst, "n": N})
    queue.flush()
    assert event.done


# --------------------------------------------------------------------------- #
# First-class transfer commands
# --------------------------------------------------------------------------- #
def test_create_buffer_no_longer_drains_pending_launches():
    """Regression: buffer creation used to flush the whole queue, serializing
    DAG construction in an out-of-order queue."""
    queue = _queue(cls=OutOfOrderQueue, num_devices=2)
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, dst)
    pending_before = queue.pending
    another = queue.create_buffer(np.arange(N) + 5)
    # The launch is still pending (plus the new write command); nothing ran.
    assert queue.pending == pending_before + 1
    assert queue.schedule == []
    assert queue.stats.launches == 0
    queue.flush()
    assert np.array_equal(queue.enqueue_read(dst).astype(np.int64), np.arange(N))
    assert np.array_equal(queue.enqueue_read(another).astype(np.int64), np.arange(N) + 5)


def test_enqueue_write_returns_a_waitable_event():
    queue = _queue(cls=OutOfOrderQueue, num_devices=2)
    buffer = queue.allocate_buffer(N)
    write = queue.enqueue_write(buffer, np.arange(N))
    assert write.kind == "write" and not write.done
    dst = queue.allocate_buffer(N)
    event = _enqueue_copy(queue, buffer, dst, wait_for=(write,))
    queue.flush()
    assert write.done and event.done
    assert event.start_cycle >= write.end_cycle
    assert np.array_equal(queue.enqueue_read(dst).astype(np.int64), np.arange(N))


def test_pending_launches_read_the_contents_they_were_enqueued_against():
    """An enqueue_write between two launches is ordered by hazard edges, not
    by a queue drain: the earlier launch still sees the old contents."""
    queue = _queue(cls=OutOfOrderQueue)
    src = queue.create_buffer(np.arange(N))
    first_dst = queue.allocate_buffer(N)
    second_dst = queue.allocate_buffer(N)
    _enqueue_copy(queue, src, first_dst, label="old-contents")
    queue.enqueue_write(src, np.arange(N) + 1000)
    _enqueue_copy(queue, src, second_dst, label="new-contents")
    assert queue.stats.launches == 0  # nothing drained early
    queue.flush()
    assert np.array_equal(queue.enqueue_read(first_dst).astype(np.int64), np.arange(N))
    assert np.array_equal(
        queue.enqueue_read(second_dst).astype(np.int64), np.arange(N) + 1000
    )


def test_transfer_accounting_reconciles_events_with_device_stats():
    """Regression: read-backs charged to the source device's DMA engine were
    invisible in the per-event totals.  ``Event.readback_cycles`` closes the
    gap: summed with ``transfer_cycles`` over *all* events (launches, writes,
    reads) it equals the per-device stats totals exactly."""
    transfer = TransferConfig(latency_cycles=50, bytes_per_cycle=4.0)
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1), num_devices=2, memory_bytes=MEM, transfer=transfer
    )
    src = queue.create_buffer(np.arange(N))
    mid = queue.allocate_buffer(N)
    dst = queue.allocate_buffer(N)
    produce = _enqueue_copy(queue, src, mid, label="produce")
    _enqueue_copy(queue, mid, dst, wait_for=(produce,), label="consume")
    queue.flush()
    queue.enqueue_read(dst)  # dirty: charges a read-back on a read event
    queue.enqueue_read(dst)  # host image valid: free
    per_event = sum(e.transfer_cycles + e.readback_cycles for e in queue.events)
    per_device = sum(queue.stats.device_transfer_cycles.values())
    assert per_event == pytest.approx(per_device)
    assert per_event == pytest.approx(queue.stats.transfer_cycles)
    # The launch-side readbacks (if any) sit on launch events, the
    # enqueue_read ones on read events.
    read_events = [e for e in queue.events if e.kind == "read"]
    assert len(read_events) == 2
    assert read_events[0].readback_cycles == transfer.cycles(N * 4)
    assert read_events[1].readback_cycles == 0.0


# --------------------------------------------------------------------------- #
# Peer-to-peer transfers
# --------------------------------------------------------------------------- #
def test_p2p_moves_dirty_buffers_without_the_host_bounce():
    transfer = TransferConfig(latency_cycles=50, bytes_per_cycle=4.0).with_p2p(10, 32.0)
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1), num_devices=2, memory_bytes=MEM, transfer=transfer
    )
    payload = np.arange(N) + 7
    src = queue.create_buffer(payload)
    mid = queue.allocate_buffer(N)
    dst = queue.allocate_buffer(N)
    # Force the hand-off: producer on device 0, consumer on device 1.
    produce = _enqueue_copy(queue, src, mid, label="produce", device=0)
    consume = _enqueue_copy(queue, mid, dst, wait_for=(produce,), label="consume", device=1)
    queue.flush()
    assert produce.device == 0 and consume.device == 1
    # The dirty intermediate moved directly device->device: one P2P copy,
    # zero read-backs, and the host image stayed stale until the final read.
    assert queue.stats.transfers_p2p == 1
    assert queue.stats.bytes_p2p == N * 4
    assert queue.stats.transfers_from_device == 0
    assert consume.transfer_cycles >= transfer.p2p_cycles(N * 4)
    assert not mid.host_valid and mid.valid_on == {0, 1}
    assert np.array_equal(queue.enqueue_read(dst).astype(np.int64), payload)
    # Reading dst (dirty on device 1) charges exactly one read-back.
    assert queue.stats.transfers_from_device == 1


def test_p2p_is_cheaper_than_the_host_bounce_on_the_same_dag():
    host = TransferConfig(latency_cycles=200, bytes_per_cycle=4.0)
    fast = host.with_p2p(20, 32.0)
    makespans = {}
    for name, transfer in (("host", host), ("p2p", fast)):
        queue = OutOfOrderQueue(
            config=GGPUConfig(num_cus=1),
            num_devices=2,
            memory_bytes=MEM,
            transfer=transfer,
        )
        src = queue.create_buffer(np.arange(N))
        mid = queue.allocate_buffer(N)
        dst = queue.allocate_buffer(N)
        produce = _enqueue_copy(queue, src, mid, label="produce")
        _enqueue_copy(queue, mid, dst, wait_for=(produce,), label="consume", device=1)
        queue.flush()
        makespans[name] = queue.stats.makespan
        assert np.array_equal(queue.enqueue_read(dst).astype(np.int64), np.arange(N))
    assert makespans["p2p"] < makespans["host"]


# --------------------------------------------------------------------------- #
# Prefetch and scheduling hints
# --------------------------------------------------------------------------- #
def test_prefetch_write_charges_at_write_time_and_consumer_skips():
    queue = _queue(cls=OutOfOrderQueue, num_devices=2)
    payload = np.arange(N) + 3
    buffer = queue.create_buffer(payload, device=1)
    dst = queue.allocate_buffer(N)
    launch = _enqueue_copy(queue, buffer, dst, label="consume", device=1)
    queue.flush()
    write = next(e for e in queue.events if e.kind == "write")
    assert write.device == 1
    assert write.transfer_cycles == queue.transfer.cycles(N * 4)
    assert write.end_cycle == write.start_cycle + write.transfer_cycles
    # The consumer found the buffer resident: no lazy copy for it...
    assert launch.transfer_cycles == 0.0
    # ...and it could not start before the prefetch landed.
    assert launch.start_cycle >= write.end_cycle
    assert np.array_equal(queue.enqueue_read(dst).astype(np.int64), payload)


def test_device_affinity_hint_forces_placement():
    queue = _queue(cls=OutOfOrderQueue, num_devices=3)
    src = queue.create_buffer(np.arange(N))
    events = []
    for device in (2, 0, 1):
        dst = queue.allocate_buffer(N)
        events.append(_enqueue_copy(queue, src, dst, label=f"on{device}", device=device))
    queue.flush()
    assert [event.device for event in events] == [2, 0, 1]
    with pytest.raises(KernelError):
        _enqueue_copy(queue, src, queue.allocate_buffer(N), device=3)
    with pytest.raises(KernelError):
        queue.create_buffer(np.arange(N), device=-1)


def test_lpt_flush_order_runs_long_launches_first():
    big_n = 4 * N
    results = {}
    for lpt in (False, True):
        queue = OutOfOrderQueue(
            config=GGPUConfig(num_cus=1), num_devices=1, memory_bytes=MEM, lpt=lpt
        )
        kernel = get_kernel_spec("copy").build()
        small_src = queue.create_buffer(np.arange(N))
        small_dst = queue.allocate_buffer(N)
        big_src = queue.create_buffer(np.arange(big_n))
        big_dst = queue.allocate_buffer(big_n)
        queue.enqueue(
            kernel,
            NDRange(N, 64),
            {"src": small_src, "dst": small_dst, "n": N},
            label="small",
            writes=("dst",),
        )
        queue.enqueue(
            kernel,
            NDRange(big_n, 64),
            {"src": big_src, "dst": big_dst, "n": big_n},
            label="big",
            writes=("dst",),
        )
        queue.finish()
        results[lpt] = [event.label for event in queue.schedule]
        assert np.array_equal(
            queue.enqueue_read(big_dst).astype(np.int64), np.arange(big_n)
        )
        assert np.array_equal(
            queue.enqueue_read(small_dst).astype(np.int64), np.arange(N)
        )
    assert results[False] == ["small", "big"]  # enqueue order
    assert results[True] == ["big", "small"]  # longest projected time first


def test_lpt_respects_event_dependencies():
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1), num_devices=2, memory_bytes=MEM, lpt=True
    )
    kernel = get_kernel_spec("copy").build()
    big_n = 4 * N
    src = queue.create_buffer(np.arange(N))
    mid = queue.allocate_buffer(N)
    dst = queue.allocate_buffer(N)
    big_src = queue.create_buffer(np.arange(big_n))
    big_dst = queue.allocate_buffer(big_n)
    first = _enqueue_copy(queue, src, mid, label="first")
    second = _enqueue_copy(queue, mid, dst, wait_for=(first,), label="second")
    queue.enqueue(
        kernel,
        NDRange(big_n, 64),
        {"src": big_src, "dst": big_dst, "n": big_n},
        label="big",
        writes=("dst",),
    )
    queue.finish()
    order = [event.label for event in queue.schedule]
    assert order.index("first") < order.index("second")
    assert order[0] == "big"  # the big independent launch jumped the queue
    assert second.start_cycle >= first.end_cycle
    assert np.array_equal(queue.enqueue_read(dst).astype(np.int64), np.arange(N))


# --------------------------------------------------------------------------- #
# Topology-aware scheduling (PR 8)
# --------------------------------------------------------------------------- #
def _shuffle_dag(queue, lanes=6):
    """A small two-stage shuffle; returns (outputs, expecteds) per lane."""
    saxpy = get_kernel_spec("saxpy").build()
    ndrange = NDRange(N, 64)
    mask = 0xFFFFFFFF
    stage1, hosts = [], []
    outs = []
    for lane in range(lanes):
        x_host = (np.arange(N, dtype=np.int64) + 17 * lane) & mask
        y_host = ((np.arange(N, dtype=np.int64) * 3 + lane) % 251) & mask
        x = queue.create_buffer(x_host)
        y = queue.create_buffer(y_host)
        out = queue.allocate_buffer(N)
        stage1.append(
            queue.enqueue(
                saxpy,
                ndrange,
                {"x": x, "y": y, "out": out, "alpha": 3, "n": N},
                label=f"s1[{lane}]",
                writes=("out",),
            )
        )
        outs.append(out)
        hosts.append((3 * x_host + y_host) & mask)
    checks = []
    for lane in range(lanes):
        peer = (lane + 1) % lanes
        out = queue.allocate_buffer(N)
        queue.enqueue(
            saxpy,
            ndrange,
            {"x": outs[lane], "y": outs[peer], "out": out, "alpha": 5, "n": N},
            label=f"s2[{lane}]",
            wait_for=(stage1[lane], stage1[peer]),
            writes=("out",),
        )
        checks.append((out, (5 * hosts[lane] + hosts[peer]) & mask))
    return checks


@pytest.mark.parametrize("scheduler", ["fifo", "lpt", "heft", "stealing"])
@pytest.mark.parametrize("topology_name", ["flat", "two-switch", "ring"])
def test_every_scheduler_topology_cell_is_bit_exact(topology_name, scheduler):
    """The standing invariant: topology and scheduler reshape the schedule
    only — kernel results and per-launch simulated cycles are bit-identical
    to the default-fabric FIFO run in every cell."""
    reference = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1), num_devices=4, memory_bytes=MEM
    )
    ref_checks = _shuffle_dag(reference)
    reference.finish()
    ref_cycles = {e.label: e.compute_cycles for e in reference.schedule}

    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1),
        num_devices=4,
        memory_bytes=MEM,
        topology=Topology.preset(topology_name, 4),
        scheduler=scheduler,
    )
    checks = _shuffle_dag(queue)
    queue.finish()
    for (out, expected), (ref_out, _) in zip(checks, ref_checks, strict=True):
        assert np.array_equal(queue.enqueue_read(out).astype(np.int64), expected)
        assert np.array_equal(
            reference.enqueue_read(ref_out).astype(np.int64), expected
        )
    assert {e.label: e.compute_cycles for e in queue.schedule} == ref_cycles


def test_topology_must_match_the_device_count():
    with pytest.raises(KernelError):
        OutOfOrderQueue(
            config=GGPUConfig(num_cus=1),
            num_devices=4,
            memory_bytes=MEM,
            topology=Topology.flat(2),
        )


def test_topology_host_override_prices_the_host_bridge():
    host = TransferConfig(latency_cycles=40, bytes_per_cycle=4.0)
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1),
        num_devices=2,
        memory_bytes=MEM,
        topology=Topology.flat(2, host=host),
    )
    assert queue.transfer == host
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    event = _enqueue_copy(queue, src, dst)
    queue.flush()
    assert event.transfer_cycles == host.cycles(N * 4)
    # An explicit transfer= still wins over the topology's host model.
    explicit = TransferConfig(latency_cycles=7, bytes_per_cycle=16.0)
    other = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1),
        num_devices=2,
        memory_bytes=MEM,
        transfer=explicit,
        topology=Topology.flat(2, host=host),
    )
    assert other.transfer == explicit


def test_topology_routes_p2p_over_the_cheapest_link():
    """With a topology attached, a dirty hand-off goes P2P over the per-pair
    link — and the nearest valid source wins on a non-uniform fabric."""
    topo = Topology.ring(4)
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1),
        num_devices=4,
        memory_bytes=MEM,
        topology=topo,
    )
    payload = np.arange(N) + 7
    src = queue.create_buffer(payload)
    mid = queue.allocate_buffer(N)
    dst = queue.allocate_buffer(N)
    produce = _enqueue_copy(queue, src, mid, label="produce", device=1)
    consume = _enqueue_copy(queue, mid, dst, wait_for=(produce,), label="consume", device=2)
    queue.finish()
    assert queue.stats.transfers_p2p == 1
    # One ring hop (1 -> 2) for N words.
    assert consume.transfer_cycles == topo.p2p_cycles(1, 2, N * 4)
    assert np.array_equal(queue.enqueue_read(dst), (payload & 0xFFFFFFFF).astype(np.uint32))


def test_prefetch_depth_retargets_input_writes():
    """With prefetch_depth > 0, an unhinted write whose consumer is pinned
    within the window turns into a prefetch onto the consumer's device."""
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1),
        num_devices=2,
        memory_bytes=MEM,
        transfer=TransferConfig(latency_cycles=50, bytes_per_cycle=4.0).with_p2p(10, 32.0),
        prefetch_depth=4,
    )
    src = queue.create_buffer(np.arange(N))
    dst = queue.allocate_buffer(N)
    write = queue.enqueue_write(src, np.arange(N) + 5)  # no device hint
    _enqueue_copy(queue, src, dst, wait_for=(write,), label="consume", device=1)
    queue.flush()
    # The write was retargeted: the consumer found its input resident.
    assert 1 in src.valid_on
    assert np.array_equal(
        queue.enqueue_read(dst).astype(np.int64), np.arange(N) + 5
    )
    with pytest.raises(KernelError):
        OutOfOrderQueue(
            config=GGPUConfig(num_cus=1),
            num_devices=2,
            memory_bytes=MEM,
            prefetch_depth=-1,
        )
