"""Global memory, runtime memory, and LRAM models."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simt.memory import GlobalMemory, LocalMemory, RuntimeMemory


def test_allocation_is_aligned_and_non_overlapping():
    memory = GlobalMemory(1024 * 1024)
    first = memory.allocate(10)
    second = memory.allocate(10)
    assert first % 64 == 0 and second % 64 == 0
    assert second >= first + 40


def test_allocation_overflow_raises():
    memory = GlobalMemory(4096)
    with pytest.raises(SimulationError):
        memory.allocate(10000)
    with pytest.raises(SimulationError):
        memory.allocate(0)


def test_buffer_round_trip():
    memory = GlobalMemory(1024 * 1024)
    base = memory.allocate(8)
    memory.write_buffer(base, [1, 2, 3, 0xFFFFFFFF])
    assert list(memory.read_buffer(base, 4)) == [1, 2, 3, 0xFFFFFFFF]


def test_vector_load_store():
    memory = GlobalMemory(1024 * 1024)
    base = memory.allocate(16)
    addresses = base + 4 * np.arange(8)
    memory.store_words(addresses, np.arange(8))
    assert list(memory.load_words(addresses)) == list(range(8))


def test_unaligned_and_out_of_range_accesses_raise():
    memory = GlobalMemory(4096)
    with pytest.raises(SimulationError):
        memory.load_words(np.array([2]))
    with pytest.raises(SimulationError):
        memory.load_words(np.array([8192]))
    with pytest.raises(SimulationError):
        memory.read_buffer(0, 10000)


def test_runtime_memory_descriptor():
    rtm = RuntimeMemory(64)
    rtm.write_descriptor(global_size=1024, workgroup_size=256, args=[100, 200, 5])
    assert rtm.global_size == 1024
    assert rtm.workgroup_size == 256
    assert rtm.num_args == 3
    assert rtm.read_arg(1) == 200
    with pytest.raises(SimulationError):
        rtm.read_arg(7)


def test_runtime_memory_capacity():
    rtm = RuntimeMemory(16)
    with pytest.raises(SimulationError):
        rtm.write_descriptor(64, 64, list(range(100)))


def test_local_memory_round_trip_and_bounds():
    lram = LocalMemory(64)
    lram.store_words(np.array([0, 1, 63]), np.array([7, 8, 9]))
    assert list(lram.load_words(np.array([0, 1, 63]))) == [7, 8, 9]
    with pytest.raises(SimulationError):
        lram.load_words(np.array([64]))
    with pytest.raises(SimulationError):
        LocalMemory(0)
