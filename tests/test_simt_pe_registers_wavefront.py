"""Lane ALU, register file, and wavefront divergence state."""

import numpy as np
import pytest

from repro.arch.isa import Opcode
from repro.errors import SimulationError
from repro.simt import pe
from repro.simt.registers import WavefrontRegisterFile
from repro.simt.wavefront import Wavefront


# --------------------------------------------------------------------------- #
# PE arithmetic
# --------------------------------------------------------------------------- #
def test_add_sub_wraparound():
    a = np.array([0xFFFFFFFF, 5])
    b = np.array([1, 3])
    assert list(pe.execute_binary(Opcode.ADD, a, b)) == [0, 8]
    assert list(pe.execute_binary(Opcode.SUB, np.array([0]), np.array([1]))) == [0xFFFFFFFF]


def test_signed_comparisons_and_minmax():
    a = np.array([pe.to_unsigned(np.array([-5]))[0], 3])
    b = np.array([2, 3])
    assert list(pe.execute_binary(Opcode.SLT, a, b)) == [1, 0]
    assert list(pe.execute_binary(Opcode.SLTU, a, b)) == [0, 0]
    assert list(pe.execute_binary(Opcode.MIN, a, b)) == [pe.to_unsigned(np.array([-5]))[0], 3]
    assert list(pe.execute_binary(Opcode.MAX, a, b)) == [2, 3]


def test_shifts():
    a = np.array([0x80000000, 0b1100])
    assert list(pe.execute_binary(Opcode.SRL, a, np.array([31, 2]))) == [1, 3]
    assert list(pe.execute_binary(Opcode.SRA, a, np.array([31, 2]))) == [0xFFFFFFFF, 3]
    assert list(pe.execute_binary(Opcode.SLL, np.array([1]), np.array([33]))) == [2]


def test_mul_and_mulh():
    a = np.array([0x7FFFFFFF])
    b = np.array([2])
    assert list(pe.execute_binary(Opcode.MUL, a, b)) == [0xFFFFFFFE]
    minus_one = pe.to_unsigned(np.array([-1]))
    assert list(pe.execute_binary(Opcode.MULH, minus_one, np.array([2]))) == [0xFFFFFFFF]


def test_div_rem_semantics():
    a = pe.to_unsigned(np.array([-7, 7, 5]))
    b = pe.to_unsigned(np.array([2, -2, 0]))
    assert list(pe.to_signed(pe.execute_binary(Opcode.DIV, a, b))) == [-3, -3, -1]
    assert list(pe.to_signed(pe.execute_binary(Opcode.REM, a, b))) == [-1, 1, 5]


def test_immediate_forms():
    a = np.array([10, 20])
    assert list(pe.execute_immediate(Opcode.ADDI, a, -5, 2)) == [5, 15]
    assert list(pe.execute_immediate(Opcode.LI, a, 3, 2)) == [3, 3]
    assert list(pe.execute_immediate(Opcode.LUI, a, 1, 2)) == [1 << 14, 1 << 14]
    with pytest.raises(SimulationError):
        pe.execute_immediate(Opcode.LW, a, 0, 2)
    with pytest.raises(SimulationError):
        pe.execute_binary(Opcode.JMP, a, a)


def test_is_alu_classifiers():
    assert pe.is_binary_alu(Opcode.ADD)
    assert not pe.is_binary_alu(Opcode.ADDI)
    assert pe.is_immediate_alu(Opcode.ADDI)
    assert pe.is_immediate_alu(Opcode.LI)
    assert not pe.is_immediate_alu(Opcode.SW)


# --------------------------------------------------------------------------- #
# Register file
# --------------------------------------------------------------------------- #
def test_register_zero_is_hardwired():
    registers = WavefrontRegisterFile(32, 8)
    registers.write(0, np.full(8, 99), np.ones(8, dtype=bool))
    assert list(registers.read(0)) == [0] * 8


def test_masked_write_preserves_inactive_lanes():
    registers = WavefrontRegisterFile(32, 4)
    registers.write_all_lanes(5, np.array([1, 2, 3, 4]))
    mask = np.array([True, False, True, False])
    registers.write(5, np.array([10, 20, 30, 40]), mask)
    assert list(registers.read(5)) == [10, 2, 30, 4]


def test_register_index_bounds():
    registers = WavefrontRegisterFile(16, 4)
    with pytest.raises(SimulationError):
        registers.read(16)
    with pytest.raises(SimulationError):
        WavefrontRegisterFile(0, 4)


# --------------------------------------------------------------------------- #
# Wavefront mask stack
# --------------------------------------------------------------------------- #
def _wavefront() -> Wavefront:
    return Wavefront(
        wavefront_id=0,
        workgroup_id=1,
        index_in_workgroup=1,
        wavefront_size=64,
        num_registers=32,
        workgroup_size=128,
        global_size=256,
        num_workgroups=2,
    )


def test_work_item_ids():
    wavefront = _wavefront()
    assert wavefront.local_ids[0] == 64
    assert wavefront.global_ids[0] == 64 + 128
    assert wavefront.num_active == 64


def test_partial_tail_wavefront_masks_out_of_range_lanes():
    tail = Wavefront(0, 3, 0, 64, 32, 64, global_size=224, num_workgroups=4)
    # Workgroup 3 covers global ids 192..255 but the NDRange ends at 224.
    assert tail.num_active == 32


def test_if_else_mask_sequence():
    wavefront = _wavefront()
    condition = np.zeros(64)
    condition[:16] = 1
    wavefront.push_mask()
    wavefront.constrain_mask(condition)
    assert wavefront.num_active == 16
    wavefront.invert_mask()
    assert wavefront.num_active == 48
    wavefront.pop_mask()
    assert wavefront.num_active == 64
    assert wavefront.mask_depth == 0


def test_mask_stack_underflow_raises():
    wavefront = _wavefront()
    with pytest.raises(SimulationError):
        wavefront.pop_mask()
    with pytest.raises(SimulationError):
        wavefront.invert_mask()


def test_uniform_lane_value_detects_divergence():
    wavefront = _wavefront()
    assert wavefront.uniform_lane_value(np.full(64, 7)) == 7
    values = np.full(64, 7)
    values[3] = 9
    with pytest.raises(SimulationError):
        wavefront.uniform_lane_value(values)
    # Non-strict mode just picks the first active lane.
    assert wavefront.uniform_lane_value(values, strict=False) == 7


def test_retire_records_completion_time():
    wavefront = _wavefront()
    wavefront.retire(123.5)
    assert wavefront.done and wavefront.completion_time == 123.5
