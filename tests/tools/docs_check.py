"""Docs stay runnable: execute every fenced bash command, resolve references.

Extracts the fenced ``bash`` blocks from ``README.md`` and ``docs/*.md``
and runs every command in them (in repository root, under a smoke-scale
environment), failing on any nonzero exit.  Also fails on unresolvable
internal markdown links (including ``#anchor`` fragments) and on inline
``file.py`` references that match no file in the repository.  This is the
CI ``docs`` job; the point is that documentation rot — a renamed tool, a
deleted example, a dead link — breaks the build instead of accumulating.

Usage::

    python tests/tools/docs_check.py              # check + run everything
    python tests/tools/docs_check.py --no-run     # static checks only
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent

# Smoke-scale environment for executed commands: small inputs, one job.
# 0.25 is the smallest scale at which the paper-structure assertions in
# the bench suite (per-element cycle ratios, GPU-vs-RISCV speedups) still
# hold; below that, fixed per-launch overheads dominate the tiny inputs.
SMOKE_ENV = {
    "REPRO_BENCH_SCALE": "0.25",
    "REPRO_JOBS": "1",
}
COMMAND_TIMEOUT_SECONDS = 1200

_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
_PYREF_RE = re.compile(r"`([\w./-]+\.py)`")


def _doc_files() -> list:
    docs = [ROOT / "README.md"]
    docs.extend(sorted((ROOT / "docs").glob("*.md")))
    return [path for path in docs if path.exists()]


def _bash_blocks(text: str) -> list:
    """The contents of every fenced ``bash`` block, in order."""
    blocks = []
    current: list | None = None
    for line in text.splitlines():
        fence = _FENCE_RE.match(line)
        if fence is not None:
            if current is not None:
                blocks.append("\n".join(current))
                current = None
            elif fence.group(1).lower() in ("bash", "sh", "shell"):
                current = []
            continue
        if current is not None:
            current.append(line)
    return blocks


def _commands(block: str) -> list:
    """Runnable commands in one block (comments and blanks stripped)."""
    commands = []
    for line in block.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        # The README block that documents *this* tool would recurse.
        if "docs_check.py" in stripped:
            continue
        commands.append(stripped)
    return commands


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\s-]", "", slug, flags=re.UNICODE)
    return re.sub(r"\s+", "-", slug.strip())


def _anchors(path: Path) -> set:
    anchors = set()
    for line in path.read_text().splitlines():
        if line.startswith("#"):
            anchors.add(_github_slug(line.lstrip("#")))
    return anchors


def _check_links(doc: Path, text: str, errors: list) -> None:
    for match in _LINK_RE.finditer(text):
        target = match.group(2)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        if not file_part:
            resolved = doc  # same-file anchor
        else:
            resolved = (doc.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{doc.relative_to(ROOT)}: broken link -> {target}")
                continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors(resolved):
                errors.append(
                    f"{doc.relative_to(ROOT)}: dead anchor -> {target}"
                )


def _check_py_references(doc: Path, text: str, errors: list) -> None:
    known_basenames = {path.name for path in ROOT.rglob("*.py")}
    for match in _PYREF_RE.finditer(text):
        reference = match.group(1)
        if (ROOT / reference).exists():
            continue
        if Path(reference).name in known_basenames:
            continue
        errors.append(
            f"{doc.relative_to(ROOT)}: reference to nonexistent file `{reference}`"
        )


def _run_commands(commands: list) -> list:
    errors = []
    env = dict(os.environ)
    env.update(SMOKE_ENV)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    for command in commands:
        started = time.perf_counter()
        try:
            result = subprocess.run(
                command,
                shell=True,
                cwd=ROOT,
                env=env,
                capture_output=True,
                text=True,
                timeout=COMMAND_TIMEOUT_SECONDS,
            )
        except subprocess.TimeoutExpired:
            errors.append(f"TIMEOUT after {COMMAND_TIMEOUT_SECONDS}s: {command}")
            continue
        elapsed = time.perf_counter() - started
        status = "ok" if result.returncode == 0 else f"exit {result.returncode}"
        print(f"[{status:>7s} {elapsed:6.1f}s] {command}")
        if result.returncode != 0:
            tail = (result.stderr or result.stdout or "").strip().splitlines()[-8:]
            errors.append(
                f"exit {result.returncode}: {command}\n    " + "\n    ".join(tail)
            )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-run",
        action="store_true",
        help="only check links and file references; do not execute commands",
    )
    args = parser.parse_args()

    errors: list = []
    commands: list = []
    for doc in _doc_files():
        text = doc.read_text()
        _check_links(doc, text, errors)
        _check_py_references(doc, text, errors)
        for block in _bash_blocks(text):
            commands.extend(_commands(block))

    print(f"checked {len(_doc_files())} docs; {len(commands)} fenced commands")
    if not args.no_run:
        errors.extend(_run_commands(commands))

    if errors:
        print(f"\n{len(errors)} problem(s):", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print("docs are runnable and internally consistent")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
