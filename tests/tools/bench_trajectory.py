"""Regenerate the performance-trajectory table from ``BENCH_PR*.json``.

Every PR that touches performance records its headline numbers to a
``BENCH_PR<n>.json`` file in the repository root (see
``benchmarks/conftest.py`` and the per-PR ``benchmarks/test_bench_*.py``
recorders).  This tool reads whatever subset of those files exists and
renders one markdown table per recorded headline — the machine-derived
counterpart of the hand-written history in ``docs/performance.md``.

Usage::

    python tests/tools/bench_trajectory.py              # print to stdout
    python tests/tools/bench_trajectory.py --output docs/trajectory.md
"""

from __future__ import annotations

import argparse
import json
import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent.parent


def _load_benches(root: Path) -> dict:
    """``{pr_number: parsed_json}`` for every readable BENCH_PR*.json."""
    benches = {}
    for path in sorted(root.glob("BENCH_PR*.json")):
        match = re.fullmatch(r"BENCH_PR(\d+)\.json", path.name)
        if not match:
            continue
        try:
            benches[int(match.group(1))] = json.loads(path.read_text())
        except (ValueError, OSError):
            continue
    return benches


def _get(data: dict, *path, default=None):
    for key in path:
        if not isinstance(data, dict) or key not in data:
            return default
        data = data[key]
    return data


def _headline_rows(benches: dict) -> list:
    """One ``(pr, metric, value, context)`` row per recorded headline."""
    rows = []

    def add(pr: int, metric: str, value, context: str) -> None:
        if value is not None:
            rows.append((pr, metric, value, context))

    b2 = benches.get(2, {})
    add(2, "SIMT engine throughput",
        _fmt_num(_get(b2, "engine", "instructions_per_second"), "instr/s"),
        "mixed-kernel issue loop")
    add(2, "RISC-V ISS throughput",
        _fmt_num(_get(b2, "riscv_iss", "decoded_instr_per_second"), "instr/s"),
        "pre-decoded, all 13 programs")
    add(2, "Table III sweep wall",
        _fmt_num(_get(b2, "table3_sweep", "wall_seconds"), "s"),
        "scale %s, %s job(s)" % (
            _get(b2, "table3_sweep", "meta", "bench_scale", default="?"),
            _get(b2, "table3_sweep", "meta", "repro_jobs", default="?")))

    b3 = benches.get(3, {})
    q = _get(b3, "queue_vs_independent", default={})
    if q.get("independent_wall_seconds") and q.get("queued_wall_seconds"):
        add(3, "Command-queue speedup",
            "%.2fx" % (q["independent_wall_seconds"] / q["queued_wall_seconds"]),
            "%s launches of %s" % (q.get("launches", "?"), q.get("kernel", "?")))

    b4 = benches.get(4, {})
    speedup = _get(b4, "multidevice_makespan", "speedup", default={})
    if isinstance(speedup, dict) and speedup:
        last = sorted(speedup, key=lambda k: int(k))[-1]
        add(4, "Multi-device makespan speedup", "%.2fx" % speedup[last],
            "13-kernel batch @ %s devices" % last)

    b5 = benches.get(5, {})
    imp = _get(b5, "pipeline_transfer_modes", "improvement_vs_host", default={})
    if isinstance(imp, dict) and imp:
        best_mode = max(imp, key=lambda k: max(imp[k].values()) if imp[k] else 0)
        counts = imp[best_mode]
        if counts:
            best_count = max(counts, key=lambda k: counts[k])
            add(5, "P2P transfer speedup", "%.2fx" % counts[best_count],
                "%s @ %s devices vs host bounce" % (best_mode, best_count))

    b7 = benches.get(7, {})
    add(7, "Warm journal resume",
        _fmt_ratio(_get(b7, "checkpoint_journal_overhead", "warm_resume_speedup")),
        "vs recomputing the sweep")
    add(7, "Armed-idle fault overhead",
        _fmt_pct(_get(b7, "fault_injection_overhead", "armed_idle_overhead")),
        "empty FaultPlan vs none")

    b8 = benches.get(8, {})
    lpt = _get(b8, "topology_scheduler_ablation", "speedup_vs_lpt", default={})
    best = None
    for cell, counts in lpt.items() if isinstance(lpt, dict) else ():
        if not cell.startswith("layered/flat/"):
            continue
        for count, value in counts.items():
            if best is None or value > best[0]:
                best = (value, cell.rsplit("/", 1)[1], count)
    if best:
        add(8, "Topology-aware scheduling", "%.2fx vs LPT" % best[0],
            "layered DAG, %s @ %s devices" % (best[1], best[2]))

    b9 = benches.get(9, {})
    v9 = _get(b9, "vectorized_issue", default={})
    add(9, "Table III sweep wall",
        _fmt_num(v9.get("sweep_wall_vectorized"), "s"),
        "scale %s, vectorized issue on" % _get(v9, "meta", "bench_scale", default="?"))
    add(9, "Vectorized issue sweep ratio",
        _fmt_ratio(v9.get("sweep_speedup")),
        "vs scalar issue, same run (honest: batching wins only on "
        "long straight-line kernels — see docs/performance.md)")

    b10 = benches.get(10, {})
    d10 = _get(b10, "dense_rank2", default={})
    scaling = d10.get("cu_scaling_1_to_8", {})
    if isinstance(scaling, dict) and scaling:
        best = max(scaling, key=lambda k: scaling[k])
        add(10, "Dense 2-D kernel CU scaling", "%.2fx" % scaling[best],
            "%s cycles @ 1 CU vs 8 CUs" % best)
    add(10, "Table III sweep wall (16 kernels)",
        _fmt_num(d10.get("sweep_wall_seconds"), "s"),
        "scale %s, rank-2 dense trio included" % _get(
            d10, "meta", "bench_scale", default="?"))
    return rows


def _fmt_num(value, unit: str):
    if value is None:
        return None
    if value >= 10000:
        return f"{value:,.0f} {unit}"
    return f"{value:g} {unit}"


def _fmt_ratio(value):
    return None if value is None else "%.2fx" % value


def _fmt_pct(value):
    return None if value is None else "%.1f%%" % (100.0 * value)


def render(benches: dict) -> str:
    lines = [
        "# Performance trajectory",
        "",
        "Regenerated from the `BENCH_PR*.json` files in the repository root",
        "by `tests/tools/bench_trajectory.py`; do not edit by hand.",
        "",
        "| PR | Headline | Value | Context |",
        "| --- | --- | --- | --- |",
    ]
    for pr, metric, value, context in _headline_rows(benches):
        lines.append(f"| {pr} | {metric} | {value} | {context} |")
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=ROOT,
                        help="repository root holding the BENCH_PR*.json files")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the markdown table here (default: stdout)")
    args = parser.parse_args()
    benches = _load_benches(args.root)
    if not benches:
        print(f"no BENCH_PR*.json files found under {args.root}")
        return 1
    text = render(benches)
    if args.output is not None:
        args.output.write_text(text)
        print(f"wrote {args.output} ({len(benches)} bench files)")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
