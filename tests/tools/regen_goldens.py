#!/usr/bin/env python
"""Regenerate (or check) the pinned golden cycle counts.

The golden dictionaries live in two test modules:

* ``tests/test_simt_golden.py`` — ``GOLDEN`` / ``EXTENDED_GOLDEN``: G-GPU
  cycle counts and dynamic instruction counts per kernel at 1/2/4/8 CUs;
* ``tests/test_riscv_decode.py`` — ``GOLDEN_CYCLES``: RISC-V ISS cycle
  counts per program at the paper input sizes.

Engine PRs that *intentionally* change cycle accounting should regenerate
the dictionaries with this tool and paste the printed literals, instead of
hand-editing numbers::

    PYTHONPATH=src python tests/tools/regen_goldens.py

CI (and anyone bisecting a drift) runs the check mode, which recomputes
every pinned value and exits non-zero on any mismatch::

    PYTHONPATH=src python tests/tools/regen_goldens.py --check
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running as a plain script: tests/ is not a package on sys.path.
TESTS_DIR = Path(__file__).resolve().parent.parent
REPO_ROOT = TESTS_DIR.parent
for path in (str(TESTS_DIR), str(REPO_ROOT / "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.arch.config import GGPUConfig  # noqa: E402
from repro.kernels import get_kernel_spec, run_workload  # noqa: E402
from repro.riscv.programs import get_riscv_program_spec  # noqa: E402
from repro.simt.gpu import GGPUSimulator  # noqa: E402

CU_COUNTS = (1, 2, 4, 8)
SEED = 2022


def measure_simt(golden: dict) -> dict:
    """Recompute a ``test_simt_golden``-style dict at its pinned sizes."""
    measured = {}
    for name, (size, _, _) in sorted(golden.items()):
        cycles = {}
        instructions = None
        for num_cus in CU_COUNTS:
            spec = get_kernel_spec(name)
            simulator = GGPUSimulator(GGPUConfig().with_cus(num_cus))
            result, _ = run_workload(simulator, spec.build(), spec.workload(size, SEED))
            cycles[num_cus] = result.cycles
            instructions = result.stats.instructions_issued
        measured[name] = (size, cycles, instructions)
    return measured


def measure_riscv(golden: dict) -> dict:
    """Recompute the RISC-V golden cycles at the paper sizes."""
    measured = {}
    for name in sorted(golden):
        stats, _ = get_riscv_program_spec(name).default_case().run()
        measured[name] = int(stats.cycles)
    return measured


def format_simt(measured: dict, dict_name: str) -> str:
    lines = [f"{dict_name} = {{"]
    for name, (size, cycles, instructions) in measured.items():
        cycle_text = ", ".join(f"{cus}: {value}" for cus, value in cycles.items())
        lines.append(f'    "{name}": ({size}, {{{cycle_text}}}, {instructions}),')
    lines.append("}")
    return "\n".join(lines)


def format_riscv(measured: dict) -> str:
    lines = ["GOLDEN_CYCLES = {"]
    for name, cycles in measured.items():
        lines.append(f'    "{name}": {cycles},')
    lines.append("}")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="recompute every pinned value and fail on drift instead of printing",
    )
    args = parser.parse_args()

    import test_riscv_decode
    import test_simt_golden

    drifted = []
    sections = [
        ("GOLDEN", test_simt_golden.GOLDEN, measure_simt, format_simt),
        ("EXTENDED_GOLDEN", test_simt_golden.EXTENDED_GOLDEN, measure_simt, format_simt),
        ("DENSE_GOLDEN", test_simt_golden.DENSE_GOLDEN, measure_simt, format_simt),
    ]
    for dict_name, pinned, measure, formatter in sections:
        measured = measure(pinned)
        if args.check:
            for name in sorted(pinned):
                if measured[name] != (pinned[name][0], pinned[name][1], pinned[name][2]):
                    drifted.append(f"simt:{dict_name}:{name} {pinned[name]} -> {measured[name]}")
        else:
            print(formatter(measured, dict_name))
            print()

    riscv_measured = measure_riscv(test_riscv_decode.GOLDEN_CYCLES)
    if args.check:
        for name, cycles in sorted(test_riscv_decode.GOLDEN_CYCLES.items()):
            if riscv_measured[name] != cycles:
                drifted.append(f"riscv:{name} {cycles} -> {riscv_measured[name]}")
    else:
        print(format_riscv(riscv_measured))

    if args.check:
        if drifted:
            print("golden-cycle drift detected:")
            for line in drifted:
                print(f"  {line}")
            return 1
        total = (
            len(test_simt_golden.GOLDEN)
            + len(test_simt_golden.EXTENDED_GOLDEN)
            + len(test_simt_golden.DENSE_GOLDEN)
            + len(test_riscv_decode.GOLDEN_CYCLES)
        )
        print(f"all {total} golden entries match")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
