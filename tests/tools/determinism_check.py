#!/usr/bin/env python
"""Canonical digest of the multi-device event-graph schedules, for CI diffing.

Runs the multi-device makespan sweep
(:func:`repro.eval.multidevice.run_multidevice_table`), the two-stage-DAG
transfer-mode sweep (:func:`repro.eval.multidevice.run_pipeline_table` —
host-hop vs P2P vs P2P+prefetch, the latter with affinity hints and the LPT
flush order), and the topology × scheduler ablation
(:func:`repro.eval.multidevice.run_topology_table` — {flat, two-switch,
ring} × {LPT, HEFT, stealing} at 8 and 16 devices) and writes a canonical
JSON digest of everything the scheduler decided: per cell, the full
event-graph schedule (label, device, start, end, transfer and compute
cycles), the makespan, the critical path, the per-device utilization, and
the transfer counters.

The CI determinism job runs this twice in one checkout and once more with a
different ``REPRO_JOBS``, then diffs the three files byte for byte: every
schedule and its cycle statistics must be identical across repeated runs and
across the serial (shared device pool, recycled via ``GGPUSimulator.reset``)
and fanned-out (fresh pool per worker process) sweep paths — for the default
transfer model, for every P2P/prefetch/LPT mode, and for every topology ×
scheduler cell (including the seeded work-stealing tie-breaks).

    PYTHONPATH=src python tests/tools/determinism_check.py --output run_a.json
    PYTHONPATH=src REPRO_JOBS=4 python tests/tools/determinism_check.py --output run_b.json
    diff run_a.json run_b.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.multidevice import (  # noqa: E402
    run_multidevice_table,
    run_pipeline_table,
    run_topology_table,
)
from repro.runtime.checkpoint import atomic_write_text  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=0.125, help="input-size scale factor (default 0.125)"
    )
    parser.add_argument(
        "--device-counts",
        default="1,2,4",
        help="comma-separated device counts to sweep (default 1,2,4)",
    )
    parser.add_argument(
        "--topology-device-counts",
        default="8,16",
        help="comma-separated device counts for the topology ablation (default 8,16)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the canonical JSON digest here (default: stdout only)",
    )
    args = parser.parse_args()
    counts = tuple(int(field) for field in args.device_counts.split(","))
    topology_counts = tuple(
        int(field) for field in args.topology_device_counts.split(",")
    )

    table = run_multidevice_table(device_counts=counts, scale=args.scale)
    pipeline = run_pipeline_table(device_counts=counts, lanes=8, size=256)
    topology = run_topology_table(
        device_counts=topology_counts,
        width=8,
        depth=4,
        size=128,
        lanes=8,
        stages=2,
    )
    digest = {
        "scale": args.scale,
        "kernels": table.kernels,
        "cells": {
            str(count): {
                "schedule": [list(entry) for entry in table.cell(count).schedule],
                "makespan": table.cell(count).makespan,
                "critical_path_cycles": table.cell(count).critical_path_cycles,
                "compute_cycles": table.cell(count).compute_cycles,
                "transfer_cycles": table.cell(count).transfer_cycles,
                "utilization": {
                    str(device): value
                    for device, value in sorted(table.cell(count).utilization.items())
                },
                "transfers_skipped": table.cell(count).transfers_skipped,
            }
            for count in table.device_counts
        },
        "pipeline": {
            f"{mode}@{count}": {
                "schedule": [list(entry) for entry in pipeline.cell(mode, count).schedule],
                "makespan": pipeline.cell(mode, count).makespan,
                "transfer_cycles": pipeline.cell(mode, count).transfer_cycles,
                "transfers_p2p": pipeline.cell(mode, count).transfers_p2p,
                "transfers_from_device": pipeline.cell(mode, count).transfers_from_device,
            }
            for mode in pipeline.modes
            for count in pipeline.device_counts
        },
        "topology": {
            f"{dag}/{topo}/{scheduler}@{count}": {
                "schedule": [
                    list(entry)
                    for entry in topology.cell(dag, topo, scheduler, count).schedule
                ],
                "makespan": topology.cell(dag, topo, scheduler, count).makespan,
                "transfer_cycles": topology.cell(
                    dag, topo, scheduler, count
                ).transfer_cycles,
                "transfers_p2p": topology.cell(
                    dag, topo, scheduler, count
                ).transfers_p2p,
            }
            for dag in topology.dags
            for topo in topology.topologies
            for scheduler in topology.schedulers
            for count in topology.device_counts
        },
    }
    text = json.dumps(digest, indent=2, sort_keys=True) + "\n"
    if args.output is not None:
        atomic_write_text(args.output, text)
        print(f"digest written to {args.output} ({len(text)} bytes)")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
