#!/usr/bin/env python
"""Scale-reduced Table III smoke sweep, runnable identically locally and in CI.

Runs the full registered kernel suite on the RISC-V baseline and on G-GPUs at
the given CU counts, verifies every kernel's outputs against its reference,
sanity-checks the table shape, and prints it.  This used to live as an inline
heredoc in ``.github/workflows/ci.yml``; as a script it can be run (and
debugged) the same way everywhere:

    PYTHONPATH=src python tests/tools/smoke_sweep.py --scale 0.25
    PYTHONPATH=src python tests/tools/smoke_sweep.py --output smoke_table.txt

``--output`` additionally writes the rendered table to a file so CI can
upload it as a workflow artifact.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.benchmarks import run_table3  # noqa: E402
from repro.eval.tables import format_table3  # noqa: E402
from repro.kernels import all_kernel_names  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=0.25, help="input-size scale factor (default 0.25)"
    )
    parser.add_argument(
        "--cu-counts",
        default="1,2,4,8",
        help="comma-separated G-GPU CU counts to sweep (default 1,2,4,8)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the rendered table to this file (for CI artifacts)",
    )
    args = parser.parse_args()
    cu_counts = tuple(int(field) for field in args.cu_counts.split(","))

    start = time.perf_counter()
    table = run_table3(cu_counts=cu_counts, scale=args.scale)
    elapsed = time.perf_counter() - start

    expected_kernels = all_kernel_names()
    if table.kernels != expected_kernels:
        raise SystemExit(
            f"smoke sweep covered {table.kernels}, expected {expected_kernels}"
        )
    for kernel, row in table.rows.items():
        if not row.riscv.cycles > 0:
            raise SystemExit(f"non-positive RISC-V cycles for {kernel}")
        for num_cus, gpu in row.gpu.items():
            if not gpu.cycles > 0:
                raise SystemExit(f"non-positive G-GPU cycles for {kernel} at {num_cus} CUs")

    rendered = format_table3(table)
    header = (
        f"smoke sweep ok: {len(table.rows)} kernels x (RISC-V + "
        f"{len(cu_counts)} CU counts) at scale {args.scale} in {elapsed:.1f}s"
    )
    print(header)
    print(rendered)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(header + "\n" + rendered + "\n")
        print(f"table written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
