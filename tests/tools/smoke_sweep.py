#!/usr/bin/env python
"""Scale-reduced Table III smoke sweep, runnable identically locally and in CI.

Runs the full registered kernel suite on the RISC-V baseline and on G-GPUs at
the given CU counts, verifies every kernel's outputs against its reference,
sanity-checks the table shape, and prints it.  This used to live as an inline
heredoc in ``.github/workflows/ci.yml``; as a script it can be run (and
debugged) the same way everywhere:

    PYTHONPATH=src python tests/tools/smoke_sweep.py --scale 0.25
    PYTHONPATH=src python tests/tools/smoke_sweep.py --output smoke_table.txt

``--output`` additionally writes the rendered table to a file (atomically)
so CI can upload it as a workflow artifact.  ``--journal`` points the sweep
at a :class:`repro.runtime.checkpoint.SweepJournal` file: each finished cell
is persisted as it completes, and a re-run after a kill — the CI resume
check SIGKILLs one mid-sweep — computes only the missing cells.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.benchmarks import run_table3  # noqa: E402
from repro.eval.tables import format_table3  # noqa: E402
from repro.kernels import all_kernel_names  # noqa: E402
from repro.runtime.checkpoint import atomic_write_text  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=0.25, help="input-size scale factor (default 0.25)"
    )
    parser.add_argument(
        "--cu-counts",
        default="1,2,4,8",
        help="comma-separated G-GPU CU counts to sweep (default 1,2,4,8)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the rendered table to this file (for CI artifacts)",
    )
    parser.add_argument(
        "--journal",
        type=Path,
        default=None,
        help="resumable-sweep journal file: record finished cells as they "
        "complete and, on a re-run, compute only the missing ones",
    )
    args = parser.parse_args()
    cu_counts = tuple(int(field) for field in args.cu_counts.split(","))

    start = time.perf_counter()
    table = run_table3(cu_counts=cu_counts, scale=args.scale, journal=args.journal)
    elapsed = time.perf_counter() - start

    expected_kernels = all_kernel_names()
    if table.kernels != expected_kernels:
        raise SystemExit(
            f"smoke sweep covered {table.kernels}, expected {expected_kernels}"
        )
    for kernel, row in table.rows.items():
        if not row.riscv.cycles > 0:
            raise SystemExit(f"non-positive RISC-V cycles for {kernel}")
        for num_cus, gpu in row.gpu.items():
            if not gpu.cycles > 0:
                raise SystemExit(f"non-positive G-GPU cycles for {kernel} at {num_cus} CUs")

    rendered = format_table3(table)
    header = (
        f"smoke sweep ok: {len(table.rows)} kernels x (RISC-V + "
        f"{len(cu_counts)} CU counts) at scale {args.scale} in {elapsed:.1f}s"
    )
    print(header)
    print(rendered)
    if args.journal is not None:
        recorded = json.loads(args.journal.read_text(encoding="utf-8"))
        print(f"journal at {args.journal}: {len(recorded.get('cells', {}))} cells recorded")
    if args.output is not None:
        atomic_write_text(args.output, header + "\n" + rendered + "\n")
        print(f"table written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
