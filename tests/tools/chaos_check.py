#!/usr/bin/env python
"""Chaos matrix for the fault-tolerant multi-device runtime, for CI.

Runs the full registered kernel suite as one multi-device batch, fault-free,
and then re-runs the identical batch under a matrix of fault arms: one
handcrafted arm per fault kind (transient launch drop, permanent device
failure, transfer stall, detected transfer corruption) plus a band of seeded
:meth:`repro.runtime.faults.FaultPlan.random` draws.  Every arm must satisfy
the PR 7 recovery invariant:

* every kernel's outputs verify bit-exactly against its numpy reference —
  faults live purely in the schedule layer and can never corrupt results;
* no command is permanently failed (each arm leaves at least one survivor
  and a solvent retry budget);
* the makespan only ever degrades (``>=`` the fault-free run), and the
  kernel compute cycles are identical — the simulators never saw the fault;
* the fault-free arm reports strictly zero fault/retry/evacuation counters
  (nothing leaks from the fault machinery into the default path).

    PYTHONPATH=src python tests/tools/chaos_check.py
    PYTHONPATH=src python tests/tools/chaos_check.py --seeds 12 --devices 3
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.arch.config import GGPUConfig, Topology  # noqa: E402
from repro.errors import KernelError  # noqa: E402
from repro.eval.benchmarks import BenchmarkSizes  # noqa: E402
from repro.kernels import all_kernel_names, get_kernel_spec  # noqa: E402
from repro.runtime.faults import (  # noqa: E402
    DEVICE_FAIL,
    DEVICE_TRANSIENT,
    TRANSFER_CORRUPT,
    TRANSFER_STALL,
    FaultPlan,
    FaultSpec,
)
from repro.runtime.multidevice import OutOfOrderQueue  # noqa: E402

MEMORY_BYTES = 64 * 1024 * 1024


def run_batch(
    num_devices: int,
    scale: float,
    seed: int,
    faults: Optional[FaultPlan],
    topology_name: Optional[str] = None,
    scheduler: Optional[str] = None,
) -> Dict[str, object]:
    """Run the whole kernel suite once; verify outputs; return the metrics."""
    topology = (
        Topology.preset(topology_name, num_devices)
        if topology_name is not None
        else None
    )
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1),
        num_devices=num_devices,
        memory_bytes=MEMORY_BYTES,
        faults=faults,
        topology=topology,
        scheduler=scheduler,
    )
    checks = []
    for name in all_kernel_names():
        spec = get_kernel_spec(name)
        sizes = BenchmarkSizes.paper(name).scaled(scale)
        workload = spec.workload(sizes.gpu_size, seed)
        args: Dict[str, object] = dict(workload.scalars)
        buffers = {}
        for buffer_name, contents in workload.buffers.items():
            buffers[buffer_name] = queue.create_buffer(
                np.asarray(contents, dtype=np.int64) & 0xFFFFFFFF
            )
            args[buffer_name] = buffers[buffer_name]
        queue.enqueue(spec.build(), workload.ndrange, args, label=name)
        for buffer_name, expected in workload.expected.items():
            checks.append((name, buffer_name, buffers[buffer_name], expected))
    queue.flush()
    for kernel_name, buffer_name, buffer, expected in checks:
        observed = queue.enqueue_read(buffer).astype(np.int64)
        expected_u32 = np.asarray(expected, dtype=np.int64) & 0xFFFFFFFF
        if not np.array_equal(observed, expected_u32):
            raise KernelError(
                f"chaos arm corrupted {kernel_name!r} output {buffer_name!r}"
            )
    stats = queue.stats
    return {
        "makespan": stats.makespan,
        "total_cycles": stats.total_cycles,
        "commands_failed": stats.commands_failed,
        "devices_lost": stats.devices_lost,
        "launch_faults": stats.launch_faults,
        "transfer_faults": stats.transfer_faults,
        "total_retries": stats.total_retries,
        "evacuated_buffers": stats.evacuated_buffers,
        "fault_cycles": stats.fault_cycles,
        "degraded_fraction": stats.degraded_fraction,
        "alive": len(queue.alive_devices),
    }


def handcrafted_arms() -> Dict[str, FaultPlan]:
    """One deterministic arm per fault kind, plus a burst arm mixing all."""
    return {
        "transient": FaultPlan(
            specs=(FaultSpec(kind=DEVICE_TRANSIENT, device=0, at_command=1),)
        ),
        "device-fail": FaultPlan(
            specs=(FaultSpec(kind=DEVICE_FAIL, device=0, at_command=2),)
        ),
        "transfer-stall": FaultPlan(
            specs=(FaultSpec(kind=TRANSFER_STALL, device=0, at_command=0),)
        ),
        "transfer-corrupt": FaultPlan(
            specs=(FaultSpec(kind=TRANSFER_CORRUPT, device=1, at_command=3),)
        ),
        "burst": FaultPlan(
            specs=(
                FaultSpec(kind=TRANSFER_STALL, device=0, at_command=0),
                FaultSpec(kind=DEVICE_TRANSIENT, device=1, at_command=1),
                FaultSpec(kind=DEVICE_TRANSIENT, device=1, at_command=2),
                FaultSpec(kind=DEVICE_FAIL, device=0, at_command=4),
                FaultSpec(kind=TRANSFER_CORRUPT, device=1, at_command=5),
            )
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=0.125, help="input-size scale factor (default 0.125)"
    )
    parser.add_argument(
        "--devices", type=int, default=2, help="device count for every arm (default 2)"
    )
    parser.add_argument(
        "--seeds", type=int, default=8, help="number of random fault-plan arms (default 8)"
    )
    parser.add_argument("--seed", type=int, default=2022, help="workload seed")
    parser.add_argument(
        "--topology",
        default=None,
        choices=("flat", "two-switch", "ring"),
        help="add one topology-enabled fault arm (HEFT scheduler on the "
        "named preset) that must also recover bit-exactly",
    )
    args = parser.parse_args()

    start = time.perf_counter()
    baseline = run_batch(args.devices, args.scale, args.seed, faults=None)
    for counter in (
        "commands_failed",
        "devices_lost",
        "launch_faults",
        "transfer_faults",
        "total_retries",
        "evacuated_buffers",
        "fault_cycles",
        "degraded_fraction",
    ):
        if baseline[counter]:
            raise SystemExit(
                f"fault machinery leaked into the fault-free arm: {counter}="
                f"{baseline[counter]}"
            )
    print(
        f"baseline ok: {len(all_kernel_names())} kernels on {args.devices} devices, "
        f"makespan {baseline['makespan']:.0f} cycles"
    )

    arms = handcrafted_arms()
    for index in range(args.seeds):
        arms[f"random-{index}"] = FaultPlan.random(index, num_devices=args.devices)

    for label, plan in arms.items():
        arm = run_batch(args.devices, args.scale, args.seed, faults=plan)
        if arm["commands_failed"]:
            raise SystemExit(f"arm {label!r} permanently failed commands")
        if arm["makespan"] < baseline["makespan"]:
            raise SystemExit(
                f"arm {label!r} makespan {arm['makespan']:.0f} < fault-free "
                f"{baseline['makespan']:.0f}"
            )
        if arm["total_cycles"] != baseline["total_cycles"]:
            raise SystemExit(
                f"arm {label!r} changed kernel compute cycles "
                f"({arm['total_cycles']} vs {baseline['total_cycles']}): a fault "
                "reached the simulation layer"
            )
        replay = run_batch(args.devices, args.scale, args.seed, faults=plan)
        if replay != arm:
            raise SystemExit(f"arm {label!r} is not deterministic across replays")
        print(
            f"arm {label:>16}: ok  makespan {arm['makespan']:>9.0f}  "
            f"retries {arm['total_retries']}  lost {arm['devices_lost']}  "
            f"degraded {arm['degraded_fraction']:.3f}"
        )

    extra_arms = 0
    if args.topology is not None:
        # The topology arm compares against its *own* fault-free baseline:
        # a different scheduler legitimately changes the makespan, so the
        # degradation invariant only holds within the same topology cell.
        topo_kwargs = {"topology_name": args.topology, "scheduler": "heft"}
        topo_base = run_batch(
            args.devices, args.scale, args.seed, faults=None, **topo_kwargs
        )
        if topo_base["total_cycles"] != baseline["total_cycles"]:
            raise SystemExit(
                f"topology {args.topology!r} changed kernel compute cycles: "
                "the fabric reached the simulation layer"
            )
        plan = handcrafted_arms()["burst"]
        arm = run_batch(
            args.devices, args.scale, args.seed, faults=plan, **topo_kwargs
        )
        if arm["commands_failed"]:
            raise SystemExit("topology arm permanently failed commands")
        if arm["makespan"] < topo_base["makespan"]:
            raise SystemExit(
                f"topology arm makespan {arm['makespan']:.0f} < its fault-free "
                f"baseline {topo_base['makespan']:.0f}"
            )
        if arm["total_cycles"] != baseline["total_cycles"]:
            raise SystemExit(
                "topology arm changed kernel compute cycles: a fault reached "
                "the simulation layer"
            )
        replay = run_batch(
            args.devices, args.scale, args.seed, faults=plan, **topo_kwargs
        )
        if replay != arm:
            raise SystemExit("topology arm is not deterministic across replays")
        extra_arms = 1
        print(
            f"arm topology-{args.topology}+burst: ok  makespan "
            f"{arm['makespan']:>9.0f}  retries {arm['total_retries']}  "
            f"lost {arm['devices_lost']}"
        )

    elapsed = time.perf_counter() - start
    print(
        f"chaos check ok: {len(arms) + extra_arms} fault arms x "
        f"{len(all_kernel_names())} kernels, all outputs bit-exact, in {elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
