#!/usr/bin/env python
"""Kill a journaled sweep mid-run and prove the resume computes only the rest.

The crash-safety contract of :mod:`repro.runtime.checkpoint` is end-to-end:
every finished cell is persisted atomically *as it completes*, so a sweep
killed at any instant leaves a loadable journal, and a re-run serves the
already-recorded cells from the journal and computes only the missing ones.

This check exercises exactly that, the hard way:

1. spawn ``tests/tools/smoke_sweep.py --journal`` as a subprocess,
2. poll the journal file until at least one cell has been persisted,
3. ``SIGKILL`` the sweep — no cleanup handlers, the worst-case crash,
4. verify the journal on disk is valid JSON with the expected meta,
5. resume the identical sweep in-process and assert via the journal's
   hit/miss counters that it computed **only** the missing cells, and
6. check the resumed table is complete and well-formed.

    PYTHONPATH=src python tests/tools/resume_check.py
    PYTHONPATH=src python tests/tools/resume_check.py --scale 0.125 --cu-counts 1
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.eval.benchmarks import run_table3  # noqa: E402
from repro.kernels import all_kernel_names  # noqa: E402
from repro.runtime.checkpoint import JOURNAL_FORMAT, SweepJournal  # noqa: E402

SMOKE_SWEEP = REPO_ROOT / "tests" / "tools" / "smoke_sweep.py"


def _spawn_sweep(journal: Path, scale: float, cu_counts: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.Popen(
        [
            sys.executable,
            str(SMOKE_SWEEP),
            "--scale",
            str(scale),
            "--cu-counts",
            cu_counts,
            "--journal",
            str(journal),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _poll_cells(journal: Path, timeout_seconds: float) -> int:
    """Wait until the journal holds at least one cell; return the count."""
    deadline = time.monotonic() + timeout_seconds
    while time.monotonic() < deadline:
        if journal.exists():
            try:
                data = json.loads(journal.read_text(encoding="utf-8"))
            except ValueError as exc:
                raise SystemExit(
                    f"journal at {journal} is torn JSON: atomic write is broken"
                ) from exc
            cells = data.get("cells", {})
            if cells:
                return len(cells)
        time.sleep(0.05)
    raise SystemExit(f"no cell appeared in {journal} within {timeout_seconds}s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", type=float, default=0.125, help="input-size scale factor (default 0.125)"
    )
    parser.add_argument(
        "--cu-counts", default="1", help="comma-separated CU counts (default 1)"
    )
    parser.add_argument(
        "--spawn-timeout",
        type=float,
        default=300.0,
        help="seconds to wait for the first persisted cell (default 300)",
    )
    args = parser.parse_args()
    cu_counts = tuple(int(field) for field in args.cu_counts.split(","))
    total_cells = len(all_kernel_names()) * (1 + len(cu_counts))

    with tempfile.TemporaryDirectory(prefix="repro-resume-") as tmp:
        journal_path = Path(tmp) / "sweep_journal.json"

        sweep = _spawn_sweep(journal_path, args.scale, args.cu_counts)
        try:
            persisted = _poll_cells(journal_path, args.spawn_timeout)
        finally:
            # The worst-case crash: SIGKILL, no atexit, no finally blocks.
            if sweep.poll() is None:
                sweep.send_signal(signal.SIGKILL)
            sweep.wait()
        print(f"killed sweep after {persisted} persisted cell(s)")

        data = json.loads(journal_path.read_text(encoding="utf-8"))
        if data.get("format") != JOURNAL_FORMAT:
            raise SystemExit(f"journal format {data.get('format')!r} is wrong")
        recorded = len(data["cells"])
        if recorded >= total_cells:
            raise SystemExit(
                f"sweep finished ({recorded}/{total_cells} cells) before the "
                "kill; rerun with a larger --scale to slow it down"
            )

        # Resume in-process so the journal's hit/miss counters are visible.
        journal = SweepJournal(journal_path, meta=data["meta"])
        if not journal.resumed:
            raise SystemExit("journal did not resume from its own on-disk state")
        table = run_table3(cu_counts=cu_counts, scale=args.scale, journal=journal)

        if journal.hits != recorded:
            raise SystemExit(
                f"resume recomputed persisted cells: {journal.hits} hits for "
                f"{recorded} recorded"
            )
        if journal.misses != total_cells - recorded:
            raise SystemExit(
                f"resume missed the wrong cell count: {journal.misses} misses, "
                f"expected {total_cells - recorded}"
            )
        if len(journal) != total_cells:
            raise SystemExit(
                f"journal holds {len(journal)} cells after resume, expected "
                f"{total_cells}"
            )
        if list(table.rows) != list(all_kernel_names()):
            raise SystemExit("resumed table is missing kernels")
        for kernel, row in table.rows.items():
            if not row.riscv.cycles > 0:
                raise SystemExit(f"non-positive RISC-V cycles for {kernel}")
            for num_cus in cu_counts:
                if not row.gpu[num_cus].cycles > 0:
                    raise SystemExit(
                        f"non-positive G-GPU cycles for {kernel} at {num_cus} CUs"
                    )

        print(
            f"resume check ok: killed at {recorded}/{total_cells} cells, resume "
            f"served {journal.hits} from the journal and computed "
            f"{journal.misses} missing"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
