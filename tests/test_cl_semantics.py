"""Unit tests for semantic analysis: types, symbol tables, and uniformity."""

from __future__ import annotations

import pytest

from repro.cl.compiler import compile_source
from repro.cl.nodes import CType
from repro.cl.parser import parse
from repro.cl.semantics import analyze
from repro.errors import CompilationError


def analyze_kernel(body: str, params: str = "__global int *a, __global int *b, int n"):
    unit = analyze(parse(f"__kernel void k({params}) {{ {body} }}"))
    return unit.kernels[0]


# --------------------------------------------------------------------------- #
# Symbol table and type checking
# --------------------------------------------------------------------------- #
def test_symbols_cover_params_and_locals():
    kernel = analyze_kernel("int x = 0; uint y = 1;")
    assert set(kernel.symbols) == {"a", "b", "n", "x", "y"}
    assert kernel.symbols["a"].is_pointer and kernel.symbols["a"].is_param
    assert kernel.symbols["x"].ctype is CType.INT
    assert kernel.symbols["y"].ctype is CType.UINT


def test_undeclared_identifier_is_rejected():
    with pytest.raises(CompilationError, match="undeclared"):
        analyze_kernel("x = 1;")


def test_redeclaration_is_rejected():
    with pytest.raises(CompilationError, match="redeclaration"):
        analyze_kernel("int x = 0; int x = 1;")


def test_duplicate_parameter_is_rejected():
    with pytest.raises(CompilationError, match="duplicate parameter"):
        analyze_kernel("", params="int n, int n")


def test_duplicate_kernel_names_are_rejected():
    source = "__kernel void k(int n) { }\n__kernel void k(int n) { }"
    with pytest.raises(CompilationError, match="duplicate kernel"):
        analyze(parse(source))


def test_indexing_a_scalar_is_rejected():
    with pytest.raises(CompilationError, match="cannot be indexed"):
        analyze_kernel("int x = n[0];")


def test_arithmetic_on_a_buffer_is_rejected():
    with pytest.raises(CompilationError, match="buffer"):
        analyze_kernel("int x = a + 1;")


def test_reassigning_a_buffer_parameter_is_rejected():
    with pytest.raises(CompilationError, match="cannot be reassigned"):
        analyze_kernel("a = b;")


def test_unknown_function_is_rejected():
    with pytest.raises(CompilationError, match="unknown function"):
        analyze_kernel("int x = dot(1, 2);")


def test_builtin_arity_is_checked():
    with pytest.raises(CompilationError, match="argument"):
        analyze_kernel("int x = get_global_id();")
    with pytest.raises(CompilationError, match="argument"):
        analyze_kernel("int x = min(1);")


def test_dimensions_zero_and_one_are_supported():
    kernel = analyze_kernel("int x = get_global_id(1); int y = get_local_id(1);")
    assert kernel.symbols["x"].ctype is CType.INT
    with pytest.raises(CompilationError, match="dimension 0 or 1"):
        analyze_kernel("int x = get_global_id(2);")
    with pytest.raises(CompilationError, match="dimension 0 or 1"):
        analyze_kernel("int x = get_global_id(n);")


def test_return_must_be_the_last_top_level_statement():
    with pytest.raises(CompilationError, match="last top-level"):
        analyze_kernel("return; int x = 1;")
    with pytest.raises(CompilationError, match="inside control flow"):
        analyze_kernel("if (n) { return; }")
    kernel = analyze_kernel("int x = 1; return;")
    assert kernel.symbols["x"].ctype is CType.INT


def test_comparison_results_are_int_typed():
    kernel = analyze_kernel("int x = n < 3;")
    assert kernel.body[0].inits[0].ctype is CType.INT


def test_uint_propagates_through_arithmetic():
    kernel = analyze_kernel("uint u = 1; int x = 0; x = u + x;")
    assignment = kernel.body[-1]
    assert assignment.value.ctype is CType.UINT


# --------------------------------------------------------------------------- #
# Uniformity analysis
# --------------------------------------------------------------------------- #
def test_global_id_is_varying_and_group_id_is_uniform():
    kernel = analyze_kernel("int gid = get_global_id(0); int wg = get_group_id(0);")
    assert kernel.symbols["gid"].varying
    assert not kernel.symbols["wg"].varying


def test_memory_loads_are_varying():
    kernel = analyze_kernel("int x = a[0];")
    assert kernel.symbols["x"].varying


def test_scalar_parameters_and_literals_are_uniform():
    kernel = analyze_kernel("int x = n * 2 + 1;")
    assert not kernel.symbols["x"].varying


def test_varyingness_propagates_through_assignments():
    kernel = analyze_kernel(
        "int gid = get_global_id(0); int x = 0; x = gid + 1; int y = x * 2;"
    )
    assert kernel.symbols["x"].varying
    assert kernel.symbols["y"].varying


def test_control_dependence_makes_assigned_variables_varying():
    kernel = analyze_kernel(
        "int gid = get_global_id(0); int flag = 0; if (gid > 4) { flag = 1; }"
    )
    assert kernel.symbols["flag"].varying


def test_uniform_loop_counter_stays_uniform():
    kernel = analyze_kernel("int s = 0; for (int i = 0; i < n; i += 1) { s += i; }")
    assert not kernel.symbols["i"].varying
    assert not kernel.symbols["s"].varying


def test_varying_loop_bound_makes_body_assignments_varying():
    kernel = analyze_kernel(
        "int gid = get_global_id(0); int s = 0; for (int i = 0; i < gid; i += 1) { s += 1; }"
    )
    assert kernel.symbols["s"].varying
    assert kernel.symbols["i"].varying


def test_if_condition_annotated_for_codegen():
    program = compile_source(
        """
        __kernel void k(__global int *a, int n) {
            int gid = get_global_id(0);
            if (gid < n) { a[gid] = 0; }
            if (n > 2) { a[0] = 1; }
        }
        """
    )
    declaration = program.declaration()
    varying_if, uniform_if = declaration.body[1], declaration.body[2]
    assert varying_if.condition.varying
    assert not uniform_if.condition.varying


def test_kernel_info_summary():
    program = compile_source(
        """
        __kernel void saxpy(__global int *x, __global int *y, __global int *out, int alpha, int n) {
            int gid = get_global_id(0);
            out[gid] = alpha * x[gid] + y[gid];
        }
        """
    )
    info = program.info()
    assert info.name == "saxpy"
    assert info.buffer_params == ("x", "y", "out")
    assert info.scalar_params == ("alpha", "n")
    assert info.num_params == 5
    assert info.num_varying_vars >= 1
