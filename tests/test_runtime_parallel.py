"""Deterministic parallel sweep runner (repro.runtime.parallel)."""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ConfigurationError, ParallelExecutionError
from repro.eval.benchmarks import run_table3
from repro.planner.flow import GpuPlannerFlow
from repro.planner.spec import GGPUSpec
from repro.runtime.parallel import JOBS_ENV_VAR, default_jobs, parallel_map
from repro.tech.technology import default_65nm


def _square(value: int) -> int:
    return value * value


def _fail_on_three(value: int) -> int:
    if value == 3:
        raise ValueError("boom")
    return value


def _die_unless_parent(task) -> int:
    """Hard-kill the worker process; compute normally in the parent.

    Used to simulate a worker crash (segfault/OOM-kill): the pool raises
    BrokenProcessPool, and parallel_map's serial fallback — which runs in the
    parent, where ``os.getpid()`` matches — must still produce the result.
    """
    parent_pid, value = task
    if os.getpid() != parent_pid:
        os._exit(1)
    return value * value


def _sleep_forever(value: int) -> int:
    time.sleep(3600.0)
    return value


# --------------------------------------------------------------------------- #
# parallel_map semantics
# --------------------------------------------------------------------------- #
def test_serial_map_preserves_order():
    assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]


def test_parallel_map_preserves_order():
    items = list(range(17))
    assert parallel_map(_square, items, jobs=3) == [value * value for value in items]


def test_single_item_short_circuits_to_serial():
    # One task never pays for a pool, whatever the job count.
    assert parallel_map(_square, [5], jobs=8) == [25]


def test_empty_input():
    assert parallel_map(_square, [], jobs=4) == []


def test_worker_exceptions_propagate():
    with pytest.raises(ValueError, match="boom"):
        parallel_map(_fail_on_three, [1, 2, 3, 4], jobs=2)


def test_invalid_job_count_rejected():
    with pytest.raises(ConfigurationError):
        parallel_map(_square, [1, 2], jobs=0)


def test_invalid_task_timeout_rejected():
    with pytest.raises(ConfigurationError):
        parallel_map(_square, [1, 2], jobs=2, task_timeout=0.0)
    with pytest.raises(ConfigurationError):
        parallel_map(_square, [1, 2], jobs=2, task_timeout=-1.0)


# --------------------------------------------------------------------------- #
# Hardening: worker death, task timeouts, incremental results (PR 7)
# --------------------------------------------------------------------------- #
def test_dead_worker_falls_back_to_serial_retry():
    # Every task kills any pool worker outright, so the pool breaks; the
    # serial retry runs in the parent and completes the sweep anyway.
    tasks = [(os.getpid(), value) for value in range(5)]
    assert parallel_map(_die_unless_parent, tasks, jobs=2) == [
        value * value for value in range(5)
    ]


def test_task_timeout_raises_structured_error():
    start = time.perf_counter()
    with pytest.raises(ParallelExecutionError) as excinfo:
        parallel_map(_sleep_forever, [1, 2], jobs=2, task_timeout=1.0)
    elapsed = time.perf_counter() - start
    assert excinfo.value.task_index == 0
    assert "exceeded the per-task timeout" in str(excinfo.value)
    # The hung workers were terminated, not awaited for an hour.
    assert elapsed < 60.0


def test_task_timeout_ignored_on_serial_path():
    # jobs=1 runs in-process where a timeout cannot preempt; the parameter
    # is validated but the fast task simply completes.
    assert parallel_map(_square, [2, 3], jobs=1, task_timeout=0.001) == [4, 9]


@pytest.mark.parametrize("jobs", [1, 3])
def test_on_result_sees_every_task_in_order(jobs):
    seen = []
    result = parallel_map(
        _square, [3, 1, 2], jobs=jobs, on_result=lambda i, r: seen.append((i, r))
    )
    assert result == [9, 1, 4]
    assert seen == [(0, 9), (1, 1), (2, 4)]


def test_on_result_runs_before_a_later_failure_surfaces():
    # Tasks before the failing one still reach the callback — this is what
    # lets a journaled sweep persist finished cells even when a later cell
    # blows up.
    seen = []
    with pytest.raises(ValueError, match="boom"):
        parallel_map(
            _fail_on_three,
            [1, 2, 3, 4],
            jobs=1,
            on_result=lambda i, r: seen.append(i),
        )
    assert seen == [0, 1]


# --------------------------------------------------------------------------- #
# REPRO_JOBS environment variable
# --------------------------------------------------------------------------- #
def test_default_jobs_reads_environment(monkeypatch):
    monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv(JOBS_ENV_VAR, "4")
    assert default_jobs() == 4


@pytest.mark.parametrize("bad", ["zero", "0", "-2", "1.5"])
def test_default_jobs_rejects_bad_values(monkeypatch, bad):
    monkeypatch.setenv(JOBS_ENV_VAR, bad)
    with pytest.raises(ConfigurationError):
        default_jobs()


# --------------------------------------------------------------------------- #
# The wired sweeps produce identical outputs at any job count
# --------------------------------------------------------------------------- #
def _table_values(table):
    return [
        (
            kernel,
            row.riscv.cycles,
            row.riscv.stats.mnemonic_counts,
            tuple((num_cus, row.gpu[num_cus].cycles) for num_cus in sorted(row.gpu)),
        )
        for kernel, row in table.rows.items()
    ]


def test_table3_identical_at_any_job_count():
    serial = run_table3(kernels=["copy", "div_int"], cu_counts=(1, 2), scale=0.125, jobs=1)
    fanned = run_table3(kernels=["copy", "div_int"], cu_counts=(1, 2), scale=0.125, jobs=3)
    assert _table_values(serial) == _table_values(fanned)
    assert list(serial.rows) == ["copy", "div_int"]  # order is the request order


def test_run_many_identical_at_any_job_count():
    flow = GpuPlannerFlow(default_65nm(), run_physical=False)
    specs = [GGPUSpec(1, 500.0), GGPUSpec(2, 667.0)]
    serial = flow.run_many(specs, jobs=1)
    fanned = flow.run_many(specs, jobs=2)
    assert [
        (result.spec.label, result.achieved_frequency_mhz, result.issues)
        for result in serial
    ] == [
        (result.spec.label, result.achieved_frequency_mhz, result.issues)
        for result in fanned
    ]
