"""GPUPlanner: spec, optimizer, estimator, DSE, flow, and versions."""

import pytest

from repro.arch.config import GGPUConfig
from repro.errors import ConfigurationError, PlanningError
from repro.planner.dse import DesignSpaceExplorer
from repro.planner.estimator import PpaMap
from repro.planner.flow import GpuPlannerFlow
from repro.planner.optimizer import TimingOptimizer
from repro.planner.spec import GGPUSpec
from repro.planner.versions import (
    PAPER_CU_COUNTS,
    PAPER_FREQUENCIES_MHZ,
    PHYSICAL_VERSION_SPECS,
    paper_version_labels,
    paper_version_specs,
)
from repro.rtl.generator import generate_ggpu_netlist
from repro.rtl.timing import analyze_timing


# --------------------------------------------------------------------------- #
# Spec
# --------------------------------------------------------------------------- #
def test_spec_validation_and_label():
    spec = GGPUSpec(num_cus=2, target_frequency_mhz=590.0)
    assert spec.label == "2cu_590mhz"
    assert spec.architecture().num_cus == 2
    assert spec.with_frequency(667.0).target_frequency_mhz == 667.0
    with pytest.raises(ConfigurationError):
        GGPUSpec(num_cus=0, target_frequency_mhz=500.0)
    with pytest.raises(ConfigurationError):
        GGPUSpec(num_cus=1, target_frequency_mhz=-1.0)
    with pytest.raises(ConfigurationError):
        GGPUSpec(num_cus=1, target_frequency_mhz=500.0, max_area_mm2=0.0)
    with pytest.raises(ConfigurationError):
        GGPUSpec(num_cus=2, target_frequency_mhz=500.0, config=GGPUConfig(num_cus=4))


# --------------------------------------------------------------------------- #
# Optimizer
# --------------------------------------------------------------------------- #
def test_optimizer_closes_590_by_dividing_memories(tech):
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    result = TimingOptimizer(tech).close_timing(netlist, 590.0)
    assert result.met
    assert result.num_divisions > 0
    assert analyze_timing(netlist, tech, 590.0).met
    # Paper Table I: the 1-CU version grows from 51 to ~68 macros at 590 MHz.
    assert 60 <= netlist.total_macros() <= 72
    rf = netlist.memory_groups["cu0/register_file0"]
    assert rf.num_macros == 2 and rf.macro.words == 1024


def test_optimizer_closes_667_with_pipelines_too(tech):
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    result = TimingOptimizer(tech).close_timing(netlist, 667.0)
    assert result.met
    assert result.num_pipelines > 0
    assert netlist.pipeline_ff() > 0
    assert analyze_timing(netlist, tech, 667.0).met
    assert "memory divisions" in result.summary()


def test_optimizer_reports_infeasible_targets(tech):
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    result = TimingOptimizer(tech).close_timing(netlist, 1500.0)
    assert not result.met
    assert result.achieved_frequency_mhz < 1500.0
    with pytest.raises(PlanningError):
        TimingOptimizer(tech).close_timing(netlist, 0.0)


def test_optimizer_500_needs_no_transforms(tech):
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    result = TimingOptimizer(tech).close_timing(netlist, 500.0)
    assert result.met
    assert result.num_divisions == 0 and result.num_pipelines == 0
    assert netlist.total_macros() == 51


# --------------------------------------------------------------------------- #
# First-order estimator (the map)
# --------------------------------------------------------------------------- #
def test_map_unoptimized_frequency_is_500(tech):
    ppa_map = PpaMap(tech)
    assert ppa_map.unoptimized_frequency_mhz() == pytest.approx(500.0, abs=15.0)


def test_map_recommends_dividing_the_register_file(tech):
    estimate = PpaMap(tech).estimate(GGPUSpec(num_cus=1, target_frequency_mhz=590.0))
    assert estimate.feasible
    divided_roles = {recommendation.role for recommendation in estimate.divisions}
    assert "cu/register_file" in divided_roles
    assert estimate.total_extra_macros > 0
    assert "divide" in estimate.summary()


def test_map_estimates_scale_with_cus(tech):
    ppa_map = PpaMap(tech)
    one = ppa_map.estimate(GGPUSpec(1, 500.0))
    eight = ppa_map.estimate(GGPUSpec(8, 500.0))
    assert eight.estimated_area_mm2 > 5 * one.estimated_area_mm2
    assert eight.estimated_macros == 8 * 42 + 9
    assert one.estimated_area_mm2 == pytest.approx(4.1, rel=0.2)


def test_map_flags_unreachable_frequency_and_budgets(tech):
    unreachable = PpaMap(tech).estimate(GGPUSpec(1, 1500.0))
    assert not unreachable.feasible
    over_budget = PpaMap(tech).estimate(GGPUSpec(8, 500.0, max_area_mm2=1.0))
    assert not over_budget.feasible
    assert any("exceeds" in note for note in over_budget.notes)


def test_map_accepts_user_memory_delays(tech):
    slow = PpaMap(tech, memory_delay_overrides_ns={"register_file": 2.5})
    assert slow.unoptimized_frequency_mhz() < 400.0


# --------------------------------------------------------------------------- #
# Design-space exploration
# --------------------------------------------------------------------------- #
def test_dse_explores_the_grid(tech):
    explorer = DesignSpaceExplorer(tech)
    points = explorer.explore(cu_counts=(1, 2), frequencies_mhz=(500.0, 590.0))
    assert len(points) == 4
    assert all(point.met for point in points)
    feasible = explorer.feasible_points(points)
    assert len(feasible) == 4
    frontier = explorer.pareto_frontier(points)
    assert frontier and len(frontier) <= len(points)
    assert all(point.efficiency_proxy > 0 for point in points)
    with pytest.raises(PlanningError):
        explorer.explore(cu_counts=(), frequencies_mhz=(500.0,))


# --------------------------------------------------------------------------- #
# Flow
# --------------------------------------------------------------------------- #
def test_flow_meets_spec_for_1cu_667(tech):
    flow = GpuPlannerFlow(tech)
    result = flow.run(GGPUSpec(num_cus=1, target_frequency_mhz=667.0))
    assert result.meets_specification
    assert result.achieved_frequency_mhz == pytest.approx(667.0)
    assert result.layout is not None
    assert result.estimate.feasible
    assert "specification met" in result.summary()


def test_flow_reports_8cu_667_shortfall(tech):
    flow = GpuPlannerFlow(tech)
    result = flow.run(GGPUSpec(num_cus=8, target_frequency_mhz=667.0))
    assert not result.meets_specification
    assert any("post-route" in issue for issue in result.issues)
    assert result.achieved_frequency_mhz < 667.0


def test_flow_checks_area_budget_and_skips_physical(tech):
    flow = GpuPlannerFlow(tech, run_physical=False)
    result = flow.run(GGPUSpec(num_cus=1, target_frequency_mhz=500.0, max_area_mm2=1.0))
    assert result.layout is None
    assert any("area" in issue for issue in result.issues)
    with pytest.raises(PlanningError):
        flow.run_many([])


# --------------------------------------------------------------------------- #
# Versions
# --------------------------------------------------------------------------- #
def test_paper_versions_cover_the_12_points():
    specs = paper_version_specs()
    assert len(specs) == 12
    assert {spec.num_cus for spec in specs} == set(PAPER_CU_COUNTS)
    assert {spec.target_frequency_mhz for spec in specs} == set(PAPER_FREQUENCIES_MHZ)
    assert paper_version_labels()[0] == "1@500MHz"
    assert len(PHYSICAL_VERSION_SPECS) == 4


# --------------------------------------------------------------------------- #
# Workload-scored design-space exploration
# --------------------------------------------------------------------------- #
def test_workload_suites_match_the_kernel_registry():
    """The literal suite tuples in dse.py must track the kernel registry."""
    from repro.kernels import all_kernel_names
    from repro.kernels.library import PAPER_KERNEL_NAMES
    from repro.planner.dse import EXTENDED_WORKLOAD_SUITE, PAPER_WORKLOAD_SUITE

    assert list(PAPER_WORKLOAD_SUITE) == list(PAPER_KERNEL_NAMES)
    assert list(EXTENDED_WORKLOAD_SUITE) == all_kernel_names()


def test_explore_workloads_scores_points_against_measured_kernels(tech):
    explorer = DesignSpaceExplorer(tech)
    points = explorer.explore_workloads(
        cu_counts=(1, 2),
        frequencies_mhz=(500.0, 667.0),
        workloads=("saxpy", "transpose"),
        scale=0.25,
    )
    assert len(points) == 4
    for point in points:
        assert set(point.kernel_cycles) == {"saxpy", "transpose"}
        assert point.total_runtime_ms > 0
        assert point.runtime_ms("saxpy") > 0
        assert point.runtime_per_area > 0
    with pytest.raises(PlanningError):
        points[0].runtime_ms("mat_mul")
    with pytest.raises(PlanningError):
        explorer.explore_workloads(workloads=())
    # More CUs -> fewer cycles for the parallel-friendly pair at this size.
    by_spec = {(p.spec.num_cus, p.spec.target_frequency_mhz): p for p in points}
    assert (
        by_spec[(2, 500.0)].kernel_cycles["saxpy"]
        <= by_spec[(1, 500.0)].kernel_cycles["saxpy"]
    )
