"""Functional tests for the RISC-V back end of the OpenCL-C compiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.kernel import NDRange
from repro.cl import compile_kernel_to_riscv_case, compile_source
from repro.errors import CompilationError, SimulationError
from repro.kernels.library import GpuWorkload
from repro.riscv.isa import RvOpcode


def make_workload(buffers, scalars, expected, n, workgroup=64):
    return GpuWorkload(
        buffers={name: np.asarray(data, dtype=np.int64) for name, data in buffers.items()},
        scalars=scalars,
        expected={name: np.asarray(data, dtype=np.int64) for name, data in expected.items()},
        ndrange=NDRange(n, workgroup),
    )


def test_vector_add_on_riscv():
    n = 128
    a = np.arange(n, dtype=np.int64)
    b = 7 - np.arange(n, dtype=np.int64)
    workload = make_workload(
        {"a": a, "b": b, "out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        {"out": a + b},
        n,
    )
    case = compile_kernel_to_riscv_case(
        """
        __kernel void vec_add(__global int *a, __global int *b, __global int *out, int n) {
            int gid = get_global_id(0);
            out[gid] = a[gid] + b[gid];
        }
        """,
        workload,
    )
    stats, outputs = case.run(check=True)
    assert stats.instructions > n  # at least one instruction per work-item
    np.testing.assert_array_equal(outputs["out"].astype(np.int64), (a + b) & 0xFFFFFFFF)


def test_control_flow_and_divergence_free_loop_on_riscv():
    n = 64
    a = (np.arange(n, dtype=np.int64) % 9) + 1
    expected = np.array([int(v).bit_length() - 1 for v in a], dtype=np.int64)
    workload = make_workload(
        {"a": a, "out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        {"out": expected},
        n,
    )
    case = compile_kernel_to_riscv_case(
        """
        __kernel void count_halvings(__global int *a, __global int *out, int n) {
            int gid = get_global_id(0);
            int v = a[gid];
            int steps = 0;
            while (v > 1) {
                v = v >> 1;
                steps += 1;
            }
            out[gid] = steps;
        }
        """,
        workload,
    )
    stats, outputs = case.run(check=True)
    np.testing.assert_array_equal(outputs["out"].astype(np.int64), expected)
    assert stats.taken_branches > 0


def test_if_else_and_builtins_on_riscv():
    n, wg = 128, 32
    expected = np.where(np.arange(n) % wg < 16, np.arange(n) // wg, -1) & 0xFFFFFFFF
    workload = make_workload(
        {"out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        {"out": expected},
        n,
        workgroup=wg,
    )
    case = compile_kernel_to_riscv_case(
        """
        __kernel void groups(__global int *out, int n) {
            int gid = get_global_id(0);
            if (get_local_id(0) < 16) {
                out[gid] = get_group_id(0);
            } else {
                out[gid] = -1;
            }
        }
        """,
        workload,
    )
    _, outputs = case.run(check=True)
    np.testing.assert_array_equal(outputs["out"].astype(np.int64), expected)


def test_min_max_and_compound_assignment_on_riscv():
    n = 64
    a = np.arange(-32, 32, dtype=np.int64)
    expected = (np.clip(a, -10, 10) * 2) & 0xFFFFFFFF
    workload = make_workload(
        {"a": a},
        {"n": n},
        {"a": expected},
        n,
    )
    case = compile_kernel_to_riscv_case(
        """
        __kernel void clamp_scale(__global int *a, int n) {
            int gid = get_global_id(0);
            a[gid] = min(max(a[gid], -10), 10);
            a[gid] *= 2;
        }
        """,
        workload,
    )
    _, outputs = case.run(check=True)
    np.testing.assert_array_equal(outputs["a"].astype(np.int64), expected)


def test_barrier_is_a_noop_on_the_scalar_core():
    n = 64
    workload = make_workload(
        {"out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        {"out": np.arange(n, dtype=np.int64) + 1},
        n,
    )
    case = compile_kernel_to_riscv_case(
        """
        __kernel void with_barrier(__global int *out, int n) {
            int gid = get_global_id(0);
            out[gid] = gid;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[gid] += 1;
        }
        """,
        workload,
    )
    _, outputs = case.run(check=True)
    np.testing.assert_array_equal(outputs["out"], np.arange(n) + 1)


def test_program_ends_with_halt_and_uses_branches():
    n = 64
    workload = make_workload(
        {"out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        {},
        n,
    )
    case = compile_kernel_to_riscv_case(
        "__kernel void f(__global int *out, int n) { int gid = get_global_id(0); out[gid] = gid; }",
        workload,
    )
    opcodes = [instruction.opcode for instruction in case.program.instructions]
    assert opcodes[-1] is RvOpcode.EBREAK
    assert RvOpcode.BGE in opcodes  # the work-item loop bound check
    assert case.program.encode()  # every instruction has a valid encoding


def test_missing_workload_values_are_reported():
    n = 64
    workload = make_workload({"a": np.zeros(n, dtype=np.int64)}, {}, {}, n)
    with pytest.raises(CompilationError, match="no value provided|provides no value"):
        compile_kernel_to_riscv_case(
            "__kernel void f(__global int *a, int n) { int gid = get_global_id(0); a[gid] = n; }",
            workload,
        )


def test_missing_buffer_is_reported():
    n = 64
    workload = make_workload({}, {"n": n}, {}, n)
    with pytest.raises(CompilationError, match="no buffer"):
        compile_kernel_to_riscv_case(
            "__kernel void f(__global int *a, int n) { int gid = get_global_id(0); a[gid] = n; }",
            workload,
        )


def test_oversized_workload_does_not_fit_the_32kb_memory():
    n = 16384  # 64 kB of data cannot fit the 32 kB tightly-coupled memory
    workload = make_workload(
        {"a": np.zeros(n, dtype=np.int64)},
        {"n": n},
        {},
        n,
    )
    with pytest.raises(SimulationError, match="does not fit"):
        compile_kernel_to_riscv_case(
            "__kernel void f(__global int *a, int n) { int gid = get_global_id(0); a[gid] = 1; }",
            workload,
        )


def test_same_source_compiles_for_both_targets():
    source = """
    __kernel void square(__global int *a, __global int *out, int n) {
        int gid = get_global_id(0);
        out[gid] = a[gid] * a[gid];
    }
    """
    n = 64
    a = np.arange(n, dtype=np.int64)
    program = compile_source(source)
    gpu_kernel = program.to_ggpu_kernel()
    assert gpu_kernel.name == "square"
    workload = make_workload(
        {"a": a, "out": np.zeros(n, dtype=np.int64)},
        {"n": n},
        {"out": a * a},
        n,
    )
    case = program.to_riscv_case(workload)
    _, outputs = case.run(check=True)
    np.testing.assert_array_equal(outputs["out"].astype(np.int64), a * a)
