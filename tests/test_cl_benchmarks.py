"""Cross-checks between the compiled and the hand-written benchmark kernels.

The OpenCL-C sources in :mod:`repro.cl.sources` must produce exactly the
same output buffers as the hand-written kernels in :mod:`repro.kernels` (the
workload's numpy reference checks both), and their cycle counts must stay in
the same ballpark -- the compiler does not have the hand-tuned strength
reductions, so it is allowed to be slower, but not by an order of magnitude.
"""

from __future__ import annotations

import pytest

from repro.arch.config import GGPUConfig
from repro.cl import BENCHMARK_CL_SOURCES, compile_source, get_benchmark_source
from repro.errors import CompilationError
from repro.kernels import all_kernel_names, get_kernel_spec, run_workload
from repro.riscv.programs import get_riscv_program_spec
from repro.simt.gpu import GGPUSimulator

SMALL_SIZE = 128


def _small_workload(name: str, seed: int = 11):
    return get_kernel_spec(name).workload(SMALL_SIZE, seed)


def test_every_paper_benchmark_has_a_cl_source():
    assert sorted(BENCHMARK_CL_SOURCES) == sorted(all_kernel_names())


def test_unknown_benchmark_source_is_reported():
    with pytest.raises(CompilationError, match="no OpenCL source"):
        get_benchmark_source("fft")


@pytest.mark.parametrize("name", sorted(BENCHMARK_CL_SOURCES))
def test_compiled_kernel_matches_reference_outputs_on_gpu(name):
    program = compile_source(get_benchmark_source(name))
    kernel = program.to_ggpu_kernel()
    workload = _small_workload(name)
    simulator = GGPUSimulator(GGPUConfig(num_cus=1), memory_bytes=8 * 1024 * 1024)
    # run_workload checks every expected output buffer against numpy.
    result, outputs = run_workload(simulator, kernel, workload)
    assert result.cycles > 0
    assert outputs


@pytest.mark.parametrize("name", sorted(BENCHMARK_CL_SOURCES))
def test_compiled_kernel_matches_reference_outputs_on_riscv(name):
    program = compile_source(get_benchmark_source(name))
    workload = _small_workload(name)
    case = program.to_riscv_case(workload)
    stats, outputs = case.run(check=True)
    assert stats.cycles > 0
    assert outputs


@pytest.mark.parametrize("name", ["copy", "vec_mul", "mat_mul"])
def test_compiled_gpu_kernel_cycle_count_is_close_to_hand_written(name):
    spec = get_kernel_spec(name)
    workload = _small_workload(name)
    compiled = compile_source(get_benchmark_source(name)).to_ggpu_kernel()

    sim_compiled = GGPUSimulator(GGPUConfig(num_cus=1), memory_bytes=8 * 1024 * 1024)
    compiled_cycles, _ = run_workload(sim_compiled, compiled, workload)
    sim_hand = GGPUSimulator(GGPUConfig(num_cus=1), memory_bytes=8 * 1024 * 1024)
    hand_cycles, _ = run_workload(sim_hand, spec.build(), workload)

    # The compiler misses the hand-tuned pointer-increment strength reduction,
    # so it may be slower -- but it must stay within ~3x, and never faster than
    # half the hand-written kernel (that would indicate it skipped work).
    ratio = compiled_cycles.cycles / hand_cycles.cycles
    assert 0.5 <= ratio <= 3.0


def test_compiled_riscv_baseline_is_comparable_to_hand_written_for_copy():
    name = "copy"
    workload = _small_workload(name)
    case = compile_source(get_benchmark_source(name)).to_riscv_case(workload)
    compiled_stats, _ = case.run(check=True)
    hand_case = get_riscv_program_spec(name).build_case(SMALL_SIZE, 11)
    hand_stats, _ = hand_case.run(check=True)
    assert compiled_stats.cycles / hand_stats.cycles <= 2.0


def test_compiled_kernels_scale_with_cu_count():
    """The compiled mat_mul still shows the multi-CU scaling the paper relies on."""
    program = compile_source(get_benchmark_source("mat_mul"))
    kernel = program.to_ggpu_kernel()
    # 1024 output elements = 4 workgroups of 256 work-items, enough to occupy 4 CUs.
    workload = get_kernel_spec("mat_mul").workload(1024, 5)
    cycles = {}
    for num_cus in (1, 4):
        simulator = GGPUSimulator(GGPUConfig(num_cus=num_cus), memory_bytes=8 * 1024 * 1024)
        result, _ = run_workload(simulator, kernel, workload)
        cycles[num_cus] = result.cycles
    assert cycles[4] < cycles[1] * 0.45


def test_divergence_costs_show_up_in_div_int():
    """div_int's masked inner region issues both sides, like the hand-written kernel."""
    program = compile_source(get_benchmark_source("div_int"))
    kernel = program.to_ggpu_kernel()
    workload = _small_workload("div_int")
    simulator = GGPUSimulator(GGPUConfig(num_cus=1), memory_bytes=8 * 1024 * 1024)
    result, _ = run_workload(simulator, kernel, workload)
    # Average active lanes per issue < wavefront size: divergence is real.
    stats = result.stats.cu_stats[0]
    assert stats.active_lane_issues < stats.instructions_issued * 64
