"""Tests for the clustered (replicated-memory-controller) G-GPU extension."""

from __future__ import annotations

import pytest

from repro.arch.config import GGPUConfig
from repro.errors import ConfigurationError, PhysicalDesignError, PlanningError
from repro.rtl.netlist import Partition
from repro.scaling import (
    ClusterConfig,
    ClusteredFloorplanner,
    generate_clustered_netlist,
    run_clustered_flow,
)
from repro.planner.optimizer import TimingOptimizer
from repro.rtl.generator import generate_ggpu_netlist
from repro.synth.logic import LogicSynthesis
from repro.physical.layout import PhysicalSynthesis


# --------------------------------------------------------------------------- #
# ClusterConfig
# --------------------------------------------------------------------------- #
def test_cluster_config_totals_and_names():
    cluster = ClusterConfig(num_clusters=4, cus_per_cluster=4)
    assert cluster.total_cus == 16
    assert cluster.label == "16cu_4x4"
    assert cluster.cu_names(0) == ["cu0", "cu1", "cu2", "cu3"]
    assert cluster.cu_names(3) == ["cu12", "cu13", "cu14", "cu15"]
    assert cluster.controller_name(2) == "memctrl2"
    assert cluster.cluster_of_cu("cu14") == 3


def test_cluster_config_validation():
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_clusters=0, cus_per_cluster=4)
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_clusters=2, cus_per_cluster=9)
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_clusters=9, cus_per_cluster=1)
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_clusters=2, cus_per_cluster=4, base=GGPUConfig(num_cus=2))
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_clusters=2, cus_per_cluster=2).cluster_of_cu("cu7")
    with pytest.raises(ConfigurationError):
        ClusterConfig(num_clusters=2, cus_per_cluster=2).cluster_of_cu("memctrl0")


def test_cluster_architecture_defaults_to_cus_per_cluster():
    cluster = ClusterConfig(num_clusters=2, cus_per_cluster=4)
    assert cluster.cluster_architecture().num_cus == 4


# --------------------------------------------------------------------------- #
# Netlist generation
# --------------------------------------------------------------------------- #
def test_clustered_netlist_replicates_the_memory_controller(tech):
    cluster = ClusterConfig(num_clusters=2, cus_per_cluster=4)
    clustered = generate_clustered_netlist(cluster)
    monolithic = generate_ggpu_netlist(GGPUConfig(num_cus=8))

    assert clustered.num_cus == 8
    # Same number of CU macros, one extra controller's worth of shared macros.
    assert clustered.total_macros(Partition.CU) == monolithic.total_macros(Partition.CU)
    assert (
        clustered.total_macros(Partition.MEMORY_CONTROLLER)
        == 2 * monolithic.total_macros(Partition.MEMORY_CONTROLLER)
    )
    # Controller instances are named per cluster.
    controller_prefixes = {
        group.name.split("/")[0]
        for group in clustered.memory_group_list(Partition.MEMORY_CONTROLLER)
    }
    assert controller_prefixes == {"memctrl0", "memctrl1"}
    # The inter-cluster ring only exists for multi-cluster designs.
    assert "top/cluster_ring" in clustered.timing_paths
    single = generate_clustered_netlist(ClusterConfig(num_clusters=1, cus_per_cluster=4))
    assert "top/cluster_ring" not in single.timing_paths


def test_clustered_netlist_supports_more_than_eight_cus(tech):
    cluster = ClusterConfig(num_clusters=4, cus_per_cluster=4)
    netlist = generate_clustered_netlist(cluster)
    assert netlist.num_cus == 16
    cu_instances = {
        group.name.split("/")[0] for group in netlist.memory_group_list(Partition.CU)
    }
    assert len(cu_instances) == 16


def test_clustered_netlist_closes_timing_like_the_monolithic_one(tech):
    cluster = ClusterConfig(num_clusters=2, cus_per_cluster=2)
    netlist = generate_clustered_netlist(cluster)
    result = TimingOptimizer(tech).close_timing(netlist, 667.0)
    assert result.met
    assert result.num_divisions > 0


# --------------------------------------------------------------------------- #
# Floorplanning
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def clustered_layout(tech):
    cluster = ClusterConfig(num_clusters=2, cus_per_cluster=4)
    netlist = generate_clustered_netlist(cluster, name="fixture_2x4")
    TimingOptimizer(tech).close_timing(netlist, 667.0)
    synthesis = LogicSynthesis(tech).run(netlist, 667.0)
    physical = PhysicalSynthesis(tech, floorplanner=ClusteredFloorplanner(cluster))
    return cluster, netlist, physical.run(netlist, synthesis, 667.0)


def test_clustered_floorplan_places_every_partition(clustered_layout):
    cluster, netlist, layout = clustered_layout
    names = {placement.name for placement in layout.floorplan.placements}
    assert {"top", "memctrl0", "memctrl1"}.issubset(names)
    assert {f"cu{i}" for i in range(8)}.issubset(names)
    assert len(layout.macro_placements) == netlist.total_macros()


def test_every_cu_is_mapped_to_its_local_controller(clustered_layout):
    cluster, netlist, layout = clustered_layout
    floorplan = layout.floorplan
    for cluster_index in range(cluster.num_clusters):
        for cu_name in cluster.cu_names(cluster_index):
            assert floorplan.cu_controller[cu_name] == cluster.controller_name(cluster_index)
    with pytest.raises(PhysicalDesignError):
        floorplan.cu_to_memctrl_distance_um("cu99")


def test_replication_shortens_the_worst_cu_route(tech, clustered_layout):
    cluster, netlist, clustered = clustered_layout
    monolithic_netlist = generate_ggpu_netlist(GGPUConfig(num_cus=8), name="mono8_route")
    TimingOptimizer(tech).close_timing(monolithic_netlist, 667.0)
    synthesis = LogicSynthesis(tech).run(monolithic_netlist, 667.0)
    monolithic = PhysicalSynthesis(tech).run(monolithic_netlist, synthesis, 667.0)
    assert clustered.floorplan.max_cu_distance_um() < 0.5 * monolithic.floorplan.max_cu_distance_um()


def test_replication_recovers_667mhz_for_eight_cus(tech, clustered_layout):
    """The paper's future-work claim: replicating the controller fixes the 8-CU wall."""
    cluster, netlist, clustered = clustered_layout
    assert clustered.achieved_frequency_mhz == pytest.approx(667.0, abs=1.0)

    monolithic_netlist = generate_ggpu_netlist(GGPUConfig(num_cus=8), name="mono8_wall")
    TimingOptimizer(tech).close_timing(monolithic_netlist, 667.0)
    synthesis = LogicSynthesis(tech).run(monolithic_netlist, 667.0)
    monolithic = PhysicalSynthesis(tech).run(monolithic_netlist, synthesis, 667.0)
    assert monolithic.achieved_frequency_mhz < 630.0


# --------------------------------------------------------------------------- #
# Full clustered flow
# --------------------------------------------------------------------------- #
def test_run_clustered_flow_produces_a_consistent_result(tech):
    result = run_clustered_flow(tech, ClusterConfig(num_clusters=2, cus_per_cluster=2), 590.0)
    assert result.meets_specification
    assert result.achieved_frequency_mhz >= 590.0
    assert result.total_area_mm2 > 0
    assert result.worst_cu_route_um > 0
    assert "clustered flow" in result.summary()


def test_run_clustered_flow_rejects_bad_frequency(tech):
    with pytest.raises(PlanningError):
        run_clustered_flow(tech, ClusterConfig(num_clusters=1, cus_per_cluster=1), 0.0)


def test_sixteen_cu_design_scales_area_roughly_linearly(tech):
    small = run_clustered_flow(tech, ClusterConfig(num_clusters=2, cus_per_cluster=4), 500.0)
    large = run_clustered_flow(tech, ClusterConfig(num_clusters=4, cus_per_cluster=4), 500.0)
    assert large.cluster.total_cus == 16
    ratio = large.total_area_mm2 / small.total_area_mm2
    assert 1.8 <= ratio <= 2.2
    assert large.achieved_frequency_mhz >= 500.0
