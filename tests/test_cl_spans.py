"""Every compiler diagnostic must carry a ``line:column`` source span.

A corpus of broken sources exercises the lexer, parser, and semantic
analyzer failure paths; each raised :class:`CompilationError` message must
contain a span so editors and the analysis CLI can anchor the diagnostic.
"""

from __future__ import annotations

import re

import pytest

from repro.cl.compiler import compile_source
from repro.errors import CompilationError

SPAN_RE = re.compile(r"\d+:\d+")

BROKEN_SOURCES = {
    # lexer
    "illegal_character": "__kernel void k(__global int *out) { out[0] = 1 $ 2; }",
    "unterminated_comment": "__kernel void k(__global int *out) { /* no end",
    # parser
    "empty_source": "",
    "whitespace_only": "   \n\t  ",
    "no_kernel": "int helper(int x) { return x; }",
    "truncated_params": "__kernel void k(__global int *out,",
    "missing_brace": "__kernel void k(__global int *out) { out[0] = 1;",
    "bad_statement": "__kernel void k(__global int *out) { 123; }",
    "missing_semicolon": "__kernel void k(__global int *out) { int x = 1 }",
    "bad_for_header": (
        "__kernel void k(__global int *out) { for (int i = 0 i < 4; i = i + 1) { } }"
    ),
    # semantics
    "unknown_variable": "__kernel void k(__global int *out) { out[0] = nope; }",
    "unknown_function": "__kernel void k(__global int *out) { out[0] = f(1); }",
    "duplicate_variable": (
        "__kernel void k(__global int *out) { int x = 1; int x = 2; out[0] = x; }"
    ),
    "assign_to_pointer": (
        "__kernel void k(__global int *out, __global int *a) { out = a; }"
    ),
    "duplicate_kernel": (
        "__kernel void k(__global int *out) { out[0] = 1; }\n"
        "__kernel void k(__global int *out) { out[0] = 2; }"
    ),
}


@pytest.mark.parametrize("name", sorted(BROKEN_SOURCES))
def test_compilation_error_carries_source_span(name: str) -> None:
    with pytest.raises(CompilationError) as excinfo:
        compile_source(BROKEN_SOURCES[name])
    message = str(excinfo.value)
    assert SPAN_RE.search(message), (
        f"{name}: diagnostic has no line:column span: {message!r}"
    )
