"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.assembler import Assembler, decode_instruction, encode_instruction
from repro.arch.isa import Opcode
from repro.arch.kernel import KernelArg, KernelBuilder, NDRange
from repro.riscv.isa import RvInstruction, RvOpcode, decode_rv, encode_rv
from repro.simt import pe
from repro.simt.cache import DataCache
from repro.arch.config import CacheConfig
from repro.tech.sram import SramCompiler, SramMacroSpec
from repro.simt.gpu import GGPUSimulator
from repro.arch.config import GGPUConfig

WORD = st.integers(min_value=0, max_value=0xFFFFFFFF)
LANES = 8


def _vec(values):
    return np.array(values, dtype=np.int64)


# --------------------------------------------------------------------------- #
# Lane arithmetic matches a scalar 32-bit reference model
# --------------------------------------------------------------------------- #
@given(st.lists(WORD, min_size=LANES, max_size=LANES), st.lists(WORD, min_size=LANES, max_size=LANES))
@settings(max_examples=60, deadline=None)
def test_add_sub_mul_match_scalar_reference(a_values, b_values):
    a, b = _vec(a_values), _vec(b_values)
    assert list(pe.execute_binary(Opcode.ADD, a, b)) == [(x + y) & 0xFFFFFFFF for x, y in zip(a_values, b_values, strict=True)]
    assert list(pe.execute_binary(Opcode.SUB, a, b)) == [(x - y) & 0xFFFFFFFF for x, y in zip(a_values, b_values, strict=True)]
    assert list(pe.execute_binary(Opcode.MUL, a, b)) == [(x * y) & 0xFFFFFFFF for x, y in zip(a_values, b_values, strict=True)]


@given(st.lists(WORD, min_size=LANES, max_size=LANES), st.lists(WORD, min_size=LANES, max_size=LANES))
@settings(max_examples=60, deadline=None)
def test_division_matches_truncating_reference(a_values, b_values):
    a, b = _vec(a_values), _vec(b_values)
    quotients = pe.to_signed(pe.execute_binary(Opcode.DIV, a, b))
    remainders = pe.to_signed(pe.execute_binary(Opcode.REM, a, b))
    for x, y, q, r in zip(a_values, b_values, quotients, remainders, strict=True):
        sx = x - (1 << 32) if x & 0x80000000 else x
        sy = y - (1 << 32) if y & 0x80000000 else y
        if sy == 0:
            assert q == -1 and r == sx
        else:
            expected_q = abs(sx) // abs(sy)
            if (sx < 0) != (sy < 0):
                expected_q = -expected_q
            assert q == expected_q
            assert r == sx - expected_q * sy
            assert sx == q * sy + r  # division invariant


@given(st.lists(WORD, min_size=LANES, max_size=LANES), st.integers(0, 31))
@settings(max_examples=40, deadline=None)
def test_shift_identities(values, amount):
    a = _vec(values)
    shift = _vec([amount] * LANES)
    left = pe.execute_binary(Opcode.SLL, a, shift)
    assert list(left) == [(value << amount) & 0xFFFFFFFF for value in values]
    right = pe.execute_binary(Opcode.SRL, a, shift)
    assert list(right) == [value >> amount for value in values]


# --------------------------------------------------------------------------- #
# Encoders are lossless
# --------------------------------------------------------------------------- #
@given(
    st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.XOR, Opcode.SLT]),
    st.integers(0, 31),
    st.integers(0, 31),
    st.integers(0, 31),
)
@settings(max_examples=60, deadline=None)
def test_simt_rtype_encoding_round_trip(opcode, rd, rs, rt):
    asm = Assembler("prop")
    instruction = asm.emit(opcode, rd=rd, rs=rs, rt=rt)
    decoded = decode_instruction(encode_instruction(instruction))
    assert decoded.opcode is opcode
    assert (int(decoded.rd), int(decoded.rs), int(decoded.rt)) == (rd, rs, rt)


@given(st.integers(0, 31), st.integers(0, 31), st.integers(-8192, 8191))
@settings(max_examples=60, deadline=None)
def test_simt_itype_encoding_round_trip(rd, rs, imm):
    asm = Assembler("prop")
    instruction = asm.emit(Opcode.ADDI, rd=rd, rs=rs, imm=imm)
    decoded = decode_instruction(encode_instruction(instruction))
    assert decoded.imm == imm and int(decoded.rd) == rd and int(decoded.rs) == rs


@given(st.integers(0, 31), st.integers(0, 31), st.integers(-2048, 2047))
@settings(max_examples=60, deadline=None)
def test_riscv_itype_round_trip(rd, rs1, imm):
    instruction = RvInstruction(RvOpcode.ADDI, rd=rd, rs1=rs1, imm=imm)
    decoded = decode_rv(encode_rv(instruction))
    assert decoded.opcode is RvOpcode.ADDI
    assert (decoded.rd, decoded.rs1, decoded.imm) == (rd, rs1, imm)


@given(st.integers(0, 31), st.integers(0, 31), st.integers(-2048, 2047))
@settings(max_examples=60, deadline=None)
def test_riscv_store_round_trip(rs1, rs2, imm):
    instruction = RvInstruction(RvOpcode.SW, rs1=rs1, rs2=rs2, imm=imm)
    decoded = decode_rv(encode_rv(instruction))
    assert (decoded.rs1, decoded.rs2, decoded.imm) == (rs1, rs2, imm)


# --------------------------------------------------------------------------- #
# SRAM compiler monotonicity
# --------------------------------------------------------------------------- #
@given(
    st.sampled_from([64, 128, 256, 512, 1024, 2048, 4096]),
    st.sampled_from([8, 16, 32, 64, 128]),
)
@settings(max_examples=40, deadline=None)
def test_sram_split_always_trades_area_for_delay(words, bits):
    compiler = SramCompiler()
    whole = SramMacroSpec(words, bits)
    half = compiler.smallest_valid_split(whole)
    assert compiler.access_delay_ns(half) < compiler.access_delay_ns(whole)
    assert 2 * compiler.area_um2(half) > compiler.area_um2(whole)
    assert 2 * compiler.dynamic_mw(half, 500.0) > compiler.dynamic_mw(whole, 500.0)


# --------------------------------------------------------------------------- #
# Cache invariants
# --------------------------------------------------------------------------- #
@given(st.lists(st.integers(0, 8191), min_size=1, max_size=100))
@settings(max_examples=40, deadline=None)
def test_cache_accounting_invariants(word_indices):
    cache = DataCache(CacheConfig(size_bytes=2048, line_bytes=64))
    for index in word_indices:
        cache.access_line(cache.line_address(index * 4), is_write=bool(index % 2))
    stats = cache.stats
    assert stats.accesses == len(word_indices)
    assert 0 <= stats.misses <= stats.accesses
    assert 0.0 <= stats.hit_rate <= 1.0
    assert stats.write_backs <= stats.misses
    assert len(cache.resident_lines()) <= cache.config.num_lines


# --------------------------------------------------------------------------- #
# End-to-end kernel property: the simulator computes saxpy-like results for
# arbitrary inputs.
# --------------------------------------------------------------------------- #
@given(st.lists(st.integers(0, 2**15), min_size=64, max_size=64), st.integers(0, 255))
@settings(max_examples=10, deadline=None)
def test_scale_kernel_property(values, scale):
    builder = KernelBuilder("scale", args=(KernelArg("buf"), KernelArg("k", "scalar")))
    gid = builder.alloc("gid")
    buf = builder.alloc("buf")
    k = builder.alloc("k")
    addr = builder.alloc("addr")
    value = builder.alloc("value")
    builder.global_id(gid)
    builder.load_arg(buf, "buf")
    builder.load_arg(k, "k")
    builder.address_of_element(addr, buf, gid)
    builder.emit(Opcode.LW, rd=value, rs=addr, imm=0)
    builder.emit(Opcode.MUL, rd=value, rs=value, rt=k)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.ret()
    kernel = builder.build()

    simulator = GGPUSimulator(GGPUConfig(num_cus=1), memory_bytes=1024 * 1024)
    base = simulator.create_buffer(values)
    simulator.launch(kernel, NDRange(64, 64), {"buf": base, "k": scale})
    observed = simulator.read_buffer(base, 64)
    assert list(observed) == [(value * scale) & 0xFFFFFFFF for value in values]
