"""Cross-module integration tests: the paper's claims end to end (scaled down)."""

import pytest

from repro import GGPUSpec, GpuPlannerFlow, default_65nm
from repro.eval.benchmarks import measure_gpu_kernel, measure_riscv_program
from repro.eval.comparison import compute_speedups
from repro.eval.benchmarks import run_table3
from repro.planner.dse import DesignSpaceExplorer


@pytest.fixture(scope="module")
def flow():
    return GpuPlannerFlow(default_65nm())


def test_full_flow_produces_consistent_artifacts(flow):
    """Spec -> estimate -> netlist -> synthesis -> layout agree with each other."""
    result = flow.run(GGPUSpec(num_cus=2, target_frequency_mhz=590.0))
    assert result.meets_specification
    # The first-order estimate is within 20% of the synthesized area.
    assert result.estimate.estimated_area_mm2 == pytest.approx(
        result.synthesis.total_area_mm2, rel=0.20
    )
    # Every divided memory recommended by the map exists in the netlist with
    # more than one macro.
    divided_groups = [
        group for group in result.netlist.memory_groups.values() if group.mux_levels > 0
    ]
    assert divided_groups
    assert result.layout.floorplan.die_area_mm2 > result.synthesis.total_area_mm2
    assert len(result.layout.macro_placements) == result.synthesis.num_macros


def test_design_space_exploration_matches_paper_trends(tech):
    """Area grows ~linearly with CUs; the 667 MHz step costs little extra area."""
    explorer = DesignSpaceExplorer(tech)
    points = {
        (point.spec.num_cus, point.spec.target_frequency_mhz): point
        for point in explorer.explore(cu_counts=(1, 2), frequencies_mhz=(500.0, 590.0, 667.0))
    }
    assert all(point.met for point in points.values())
    area_500_to_590 = points[(1, 590.0)].area_mm2 / points[(1, 500.0)].area_mm2
    area_590_to_667 = points[(1, 667.0)].area_mm2 / points[(1, 590.0)].area_mm2
    # Paper: ~10% growth for 500->590 and ~2% for 590->667.
    assert 1.0 < area_500_to_590 < 1.20
    assert 1.0 <= area_590_to_667 < 1.06
    assert area_590_to_667 < area_500_to_590


def test_parallel_kernels_beat_serial_kernels_on_the_ggpu():
    """The qualitative split of Fig. 5: mat_mul benefits, div_int barely does."""
    table = run_table3(kernels=["mat_mul", "div_int"], cu_counts=(1, 2), scale=0.25)
    speedups = compute_speedups(table)
    assert speedups.value("mat_mul", 2) > speedups.value("mat_mul", 1)
    assert speedups.value("mat_mul", 2) > 5 * speedups.value("div_int", 2)
    assert speedups.value("div_int", 1) < 5.0


def test_gpu_scaling_saturates_for_bandwidth_bound_kernels():
    """copy gains little beyond a few CUs (AXI bandwidth wall)."""
    one = measure_gpu_kernel("copy", num_cus=1, input_size=8192)
    four = measure_gpu_kernel("copy", num_cus=4, input_size=8192)
    eight = measure_gpu_kernel("copy", num_cus=8, input_size=8192)
    assert four.cycles < one.cycles
    gain_4_to_8 = four.cycles / eight.cycles
    assert gain_4_to_8 < 1.6  # far from the ideal 2x


def test_riscv_and_gpu_agree_on_results_at_scale():
    gpu = measure_gpu_kernel("fir", num_cus=2, input_size=256)
    riscv = measure_riscv_program("fir", input_size=256)
    assert gpu.cycles > 0 and riscv.cycles > 0
    # Correctness is asserted inside the measurement helpers (check=True); the
    # cycle counts must both be positive and the GPU must need fewer cycles
    # for the same input here (fir parallelizes well).
    assert gpu.cycles < riscv.cycles


def test_eight_cu_at_667_is_the_only_failing_paper_version(flow):
    """Of the four physically implemented versions, only 8CU@667MHz misses."""
    outcomes = {}
    for num_cus, frequency in ((1, 500.0), (1, 667.0), (8, 500.0), (8, 667.0)):
        result = flow.run(GGPUSpec(num_cus=num_cus, target_frequency_mhz=frequency))
        outcomes[(num_cus, frequency)] = result.meets_specification
    assert outcomes[(1, 500.0)] and outcomes[(1, 667.0)] and outcomes[(8, 500.0)]
    assert not outcomes[(8, 667.0)]
