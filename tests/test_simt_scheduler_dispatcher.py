"""Wavefront scheduler and workgroup dispatcher."""

import pytest

from repro.arch.config import GGPUConfig
from repro.arch.kernel import NDRange
from repro.errors import SimulationError
from repro.simt.dispatcher import WorkgroupDispatcher
from repro.simt.scheduler import WavefrontScheduler
from repro.simt.wavefront import Wavefront


def _wavefront(index: int, ready: float = 0.0) -> Wavefront:
    wavefront = Wavefront(index, 0, 0, 64, 32, 64, 64, 1)
    wavefront.ready_time = ready
    return wavefront


def test_round_robin_selection():
    scheduler = WavefrontScheduler()
    first, second = _wavefront(0), _wavefront(1)
    scheduler.add_all([first, second])
    picks = [scheduler.select(0.0).wavefront_id for _ in range(4)]
    assert picks == [0, 1, 0, 1]


def test_select_skips_unready_and_done_wavefronts():
    scheduler = WavefrontScheduler()
    ready = _wavefront(0, ready=5.0)
    busy = _wavefront(1, ready=50.0)
    finished = _wavefront(2)
    finished.done = True
    scheduler.add_all([ready, busy, finished])
    assert scheduler.select(10.0) is ready
    assert scheduler.select(1.0) is None
    assert scheduler.earliest_ready() == 5.0


def test_duplicate_add_and_missing_remove_raise():
    scheduler = WavefrontScheduler()
    wavefront = _wavefront(0)
    scheduler.add(wavefront)
    with pytest.raises(SimulationError):
        scheduler.add(wavefront)
    scheduler.remove(wavefront)
    with pytest.raises(SimulationError):
        scheduler.remove(wavefront)
    assert scheduler.earliest_ready() == float("inf")


def test_dispatcher_expands_workgroups_into_wavefronts():
    config = GGPUConfig(num_cus=2)
    dispatcher = WorkgroupDispatcher(config, NDRange(1024, 256))
    assert dispatcher.wavefronts_per_workgroup == 4
    assert dispatcher.pending_workgroups == 4
    wavefronts = dispatcher.dispatch()
    assert len(wavefronts) == 4
    assert {wf.workgroup_id for wf in wavefronts} == {0}
    assert [wf.index_in_workgroup for wf in wavefronts] == [0, 1, 2, 3]


def test_initial_assignment_round_robins_over_cus():
    config = GGPUConfig(num_cus=2)
    dispatcher = WorkgroupDispatcher(config, NDRange(1024, 256))
    assignment = dispatcher.initial_assignment(2)
    assert len(assignment) == 2
    # Each CU can hold 2 workgroups of 4 wavefronts (8 resident wavefronts).
    assert all(len(wavefronts) == 8 for wavefronts in assignment)
    assert not dispatcher.has_pending()


def test_refill_respects_capacity():
    config = GGPUConfig(num_cus=1)
    dispatcher = WorkgroupDispatcher(config, NDRange(2048, 256))
    dispatcher.initial_assignment(1)
    assert dispatcher.refill(8, now=10.0) is None  # CU already full
    refill = dispatcher.refill(4, now=10.0)
    assert refill is not None and all(wf.ready_time == 10.0 for wf in refill)


def test_earliest_ready_cache_tracks_mutations():
    scheduler = WavefrontScheduler()
    first, second = _wavefront(0, ready=4.0), _wavefront(1, ready=9.0)
    scheduler.add_all([first, second])
    assert scheduler.earliest_ready() == 4.0
    assert scheduler.active_count() == 2
    first.ready_time = 20.0
    scheduler.notify_ready_changed()
    assert scheduler.earliest_ready() == 9.0
    assert scheduler.earliest_ready_excluding(second) == 20.0
    scheduler.remove(second)
    assert scheduler.earliest_ready() == 20.0
    assert scheduler.active_count() == 1


def test_select_invalidates_cached_earliest():
    scheduler = WavefrontScheduler()
    wavefront = _wavefront(0, ready=2.0)
    scheduler.add(wavefront)
    assert scheduler.earliest_ready() == 2.0
    picked = scheduler.select(5.0)
    assert picked is wavefront
    # The conventional caller pattern: reschedule the selected wavefront.
    picked.ready_time = 30.0
    assert scheduler.earliest_ready() == 30.0


def test_refill_idle_deals_workgroups_round_robin():
    config = GGPUConfig(num_cus=4)
    dispatcher = WorkgroupDispatcher(config, NDRange(1536, 256))  # 6 workgroups
    assignment = dispatcher.refill_idle([0, 0, 0, 0], now=7.0)
    # Six workgroups of 4 wavefronts dealt across four empty CUs: the first
    # two CUs get two workgroups, the last two get one each.
    assert [len(wavefronts) for wavefronts in assignment] == [8, 8, 4, 4]
    assert not dispatcher.has_pending()
    assert all(wf.ready_time == 7.0 for group in assignment for wf in group)
    # A full CU (8 resident wavefronts) is skipped.
    dispatcher = WorkgroupDispatcher(config, NDRange(512, 256))
    assignment = dispatcher.refill_idle([8, 8, 0, 8], now=1.0)
    assert [len(wavefronts) for wavefronts in assignment] == [0, 0, 8, 0]


def test_dispatcher_rejects_oversized_workgroups():
    config = GGPUConfig(num_cus=1)
    with pytest.raises(SimulationError):
        WorkgroupDispatcher(config, NDRange(2048, 1024))
    with pytest.raises(SimulationError):
        WorkgroupDispatcher(config, NDRange(96, 96))
    empty = WorkgroupDispatcher(config, NDRange(64, 64))
    empty.dispatch()
    with pytest.raises(SimulationError):
        empty.dispatch()
