"""Unit tests for the OpenCL-C parser (AST shape and syntax errors)."""

from __future__ import annotations

import pytest

from repro.cl.nodes import (
    AssignStmt,
    BarrierStmt,
    BinaryOp,
    Call,
    CType,
    DeclStmt,
    ForStmt,
    IfStmt,
    Index,
    IntLiteral,
    ReturnStmt,
    UnaryOp,
    WhileStmt,
)
from repro.cl.parser import parse
from repro.errors import CompilationError


def parse_single_kernel(body: str, params: str = "__global int *a, int n"):
    unit = parse(f"__kernel void k({params}) {{ {body} }}")
    return unit.kernels[0]


def test_kernel_signature_is_parsed():
    kernel = parse_single_kernel("", params="__global int *buf, __global uint *out, int n, uint m")
    assert kernel.name == "k"
    assert [param.name for param in kernel.params] == ["buf", "out", "n", "m"]
    assert [param.is_pointer for param in kernel.params] == [True, True, False, False]
    assert kernel.params[2].ctype is CType.INT
    assert kernel.params[3].ctype is CType.UINT


def test_multiple_kernels_in_one_source():
    unit = parse(
        "__kernel void f(int n) { }\n__kernel void g(int n) { }"
    )
    assert [kernel.name for kernel in unit.kernels] == ["f", "g"]
    assert unit.kernel("g").name == "g"


def test_empty_source_is_rejected():
    with pytest.raises(CompilationError):
        parse("   ")


def test_global_scalar_parameter_is_rejected():
    with pytest.raises(CompilationError):
        parse("__kernel void k(__global int a) { }")


def test_declaration_with_multiple_declarators():
    kernel = parse_single_kernel("int x = 1, y, z = 2;")
    declaration = kernel.body[0]
    assert isinstance(declaration, DeclStmt)
    assert declaration.names == ("x", "y", "z")
    assert isinstance(declaration.inits[0], IntLiteral)
    assert declaration.inits[1] is None
    assert isinstance(declaration.inits[2], IntLiteral)


def test_operator_precedence_multiplication_binds_tighter_than_addition():
    kernel = parse_single_kernel("int x = 1 + 2 * 3;")
    expr = kernel.body[0].inits[0]
    assert isinstance(expr, BinaryOp) and expr.op == "+"
    assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"


def test_operator_precedence_comparison_vs_logical():
    kernel = parse_single_kernel("int x = a_var < 3 && b_var > 4;", params="int a_var, int b_var")
    expr = kernel.body[0].inits[0]
    assert isinstance(expr, BinaryOp) and expr.op == "&&"
    assert expr.left.op == "<"
    assert expr.right.op == ">"


def test_left_associativity_of_subtraction():
    kernel = parse_single_kernel("int x = 10 - 4 - 3;")
    expr = kernel.body[0].inits[0]
    assert expr.op == "-"
    assert isinstance(expr.left, BinaryOp) and expr.left.op == "-"
    assert isinstance(expr.right, IntLiteral) and expr.right.value == 3


def test_parentheses_override_precedence():
    kernel = parse_single_kernel("int x = (1 + 2) * 3;")
    expr = kernel.body[0].inits[0]
    assert expr.op == "*"
    assert isinstance(expr.left, BinaryOp) and expr.left.op == "+"


def test_unary_operators_nest():
    kernel = parse_single_kernel("int x = -~3; int y = !n;")
    negate = kernel.body[0].inits[0]
    assert isinstance(negate, UnaryOp) and negate.op == "-"
    assert isinstance(negate.operand, UnaryOp) and negate.operand.op == "~"
    bang = kernel.body[1].inits[0]
    assert isinstance(bang, UnaryOp) and bang.op == "!"


def test_index_and_call_expressions():
    kernel = parse_single_kernel("int x = a[get_global_id(0) + 1];")
    index = kernel.body[0].inits[0]
    assert isinstance(index, Index) and index.base == "a"
    assert isinstance(index.index, BinaryOp)
    assert isinstance(index.index.left, Call)
    assert index.index.left.name == "get_global_id"


def test_assignment_forms():
    kernel = parse_single_kernel("int x = 0; x += 2; x <<= 1; a[x] = 3; x++; x--;")
    ops = [stmt.op for stmt in kernel.body if isinstance(stmt, AssignStmt)]
    assert ops == ["+=", "<<=", "=", "+=", "-="]
    increments = [stmt for stmt in kernel.body if isinstance(stmt, AssignStmt)][-2:]
    assert all(isinstance(stmt.value, IntLiteral) and stmt.value.value == 1 for stmt in increments)


def test_if_else_and_else_if_chains():
    kernel = parse_single_kernel(
        "if (n > 0) { n = 1; } else if (n < 0) { n = 2; } else { n = 3; }"
    )
    outer = kernel.body[0]
    assert isinstance(outer, IfStmt) and outer.has_else
    nested = outer.else_body[0]
    assert isinstance(nested, IfStmt) and nested.has_else


def test_if_accepts_single_statement_bodies():
    kernel = parse_single_kernel("if (n) n = 0; else n = 1;")
    statement = kernel.body[0]
    assert isinstance(statement, IfStmt)
    assert len(statement.then_body) == 1
    assert len(statement.else_body) == 1


def test_while_and_for_loops():
    kernel = parse_single_kernel(
        "int s = 0; while (s < n) { s += 1; } for (int i = 0; i < n; i++) { s += i; }"
    )
    assert isinstance(kernel.body[1], WhileStmt)
    loop = kernel.body[2]
    assert isinstance(loop, ForStmt)
    assert isinstance(loop.init, DeclStmt)
    assert isinstance(loop.step, AssignStmt)


def test_for_loop_parts_may_be_empty_except_reported_at_codegen():
    kernel = parse_single_kernel("for (;;) { n = 1; }")
    loop = kernel.body[0]
    assert isinstance(loop, ForStmt)
    assert loop.init is None and loop.condition is None and loop.step is None


def test_barrier_and_return_statements():
    kernel = parse_single_kernel("barrier(CLK_LOCAL_MEM_FENCE); return;")
    assert isinstance(kernel.body[0], BarrierStmt)
    assert isinstance(kernel.body[1], ReturnStmt)


def test_missing_semicolon_is_a_parse_error():
    with pytest.raises(CompilationError):
        parse_single_kernel("int x = 1 int y = 2;")


def test_unterminated_block_is_a_parse_error():
    with pytest.raises(CompilationError):
        parse("__kernel void k(int n) { int x = 1;")


def test_expression_statement_without_assignment_is_rejected():
    with pytest.raises(CompilationError):
        parse_single_kernel("n + 1;")


def test_bare_nested_blocks_are_rejected():
    with pytest.raises(CompilationError):
        parse_single_kernel("{ int x = 1; }")


def test_missing_kernel_qualifier_is_rejected():
    with pytest.raises(CompilationError):
        parse("void k(int n) { }")
