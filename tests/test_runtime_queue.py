"""Tests for the batched command queue (``repro.runtime.queue``).

The load-bearing invariant: a launch through a long-lived queue is
bit-identical — results *and* cycle statistics — to the same launch on a
freshly built simulator, because the queue only amortizes host-side setup
(simulator construction, program pre-decode), never simulated state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import GGPUConfig
from repro.arch.kernel import NDRange
from repro.errors import KernelError
from repro.kernels import get_kernel_spec, run_workload
from repro.runtime.queue import (
    BatchItem,
    CommandQueue,
    QueueBatch,
    run_batch,
    run_batches,
)
from repro.simt.gpu import GGPUSimulator

SEED = 5
SIZE = 128


def _fresh_run(name: str, num_cus: int = 1, size: int = SIZE):
    spec = get_kernel_spec(name)
    simulator = GGPUSimulator(GGPUConfig(num_cus=num_cus), memory_bytes=8 * 1024 * 1024)
    return run_workload(simulator, spec.build(), spec.workload(size, SEED), check=False)


@pytest.mark.parametrize("name", ["copy", "saxpy", "dot", "inclusive_scan"])
def test_queued_launches_match_fresh_simulators_bit_exactly(name):
    """N repeated queued launches == N independent runs (results and cycles)."""
    fresh_result, fresh_outputs = _fresh_run(name)

    queue = CommandQueue(config=GGPUConfig(num_cus=1), memory_bytes=8 * 1024 * 1024)
    spec = get_kernel_spec(name)
    kernel = spec.build()
    for _ in range(3):
        result, outputs = run_workload(
            queue.simulator, kernel, spec.workload(SIZE, SEED), check=False
        )
        assert result.cycles == fresh_result.cycles
        assert result.stats.instructions_issued == fresh_result.stats.instructions_issued
        assert result.stats.cache.accesses == fresh_result.stats.cache.accesses
        assert result.stats.cache.misses == fresh_result.stats.cache.misses
        for buffer, values in fresh_outputs.items():
            assert np.array_equal(outputs[buffer], values)


def test_queue_reuses_the_predecoded_program():
    queue = CommandQueue(config=GGPUConfig(num_cus=1), memory_bytes=8 * 1024 * 1024)
    spec = get_kernel_spec("saxpy")
    kernel = spec.build()
    launches = 6
    for _ in range(launches):
        run_workload(queue.simulator, kernel, spec.workload(SIZE, SEED))
    assert queue.simulator.decode_cache_misses == 1
    assert queue.simulator.decode_cache_hits == launches - 1
    # A different kernel object decodes once more, then hits again.
    other = spec.build()
    run_workload(queue.simulator, other, spec.workload(SIZE, SEED))
    run_workload(queue.simulator, other, spec.workload(SIZE, SEED))
    assert queue.simulator.decode_cache_misses == 2
    assert queue.simulator.decode_cache_hits == launches


def test_enqueue_flush_preserves_order_and_results():
    queue = CommandQueue(config=GGPUConfig(num_cus=2), memory_bytes=8 * 1024 * 1024)
    copy_spec = get_kernel_spec("copy")
    kernel = copy_spec.build()
    payloads = [np.arange(64) + 100 * i for i in range(4)]
    destinations = []
    for index, payload in enumerate(payloads):
        src = queue.create_buffer(payload)
        dst = queue.allocate_buffer(64)
        destinations.append(dst)
        sequence = queue.enqueue(
            kernel, NDRange(64, 64), {"src": src, "dst": dst, "n": 64}
        )
        assert sequence == index
    assert queue.pending == 4
    results = queue.flush()
    assert queue.pending == 0
    assert [r.kernel_name for r in results] == ["copy"] * 4
    for dst, payload in zip(destinations, payloads):
        assert np.array_equal(queue.read_buffer(dst, 64).astype(np.int64), payload)
    assert queue.stats.launches == 4
    assert queue.stats.cycles_by_kernel["copy"] == pytest.approx(queue.stats.total_cycles)


def test_read_buffer_finishes_pending_work():
    queue = CommandQueue(config=GGPUConfig(num_cus=1), memory_bytes=8 * 1024 * 1024)
    kernel = get_kernel_spec("copy").build()
    src = queue.create_buffer(np.arange(64))
    dst = queue.allocate_buffer(64)
    queue.enqueue(kernel, NDRange(64, 64), {"src": src, "dst": dst, "n": 64})
    # No explicit flush: the read must drain the queue first.
    assert np.array_equal(queue.read_buffer(dst, 64).astype(np.int64), np.arange(64))
    assert queue.pending == 0


def test_queue_rejects_simulator_and_config_together():
    simulator = GGPUSimulator(GGPUConfig(num_cus=1), memory_bytes=1 << 20)
    with pytest.raises(KernelError):
        CommandQueue(simulator=simulator, config=GGPUConfig(num_cus=1))


def test_run_batches_is_deterministic_across_job_counts():
    batches = [
        QueueBatch(
            items=(
                BatchItem("saxpy", 128, SEED),
                BatchItem("dot", 128, SEED, repeats=2),
                BatchItem("transpose", 128, SEED),
            ),
            num_cus=num_cus,
            memory_bytes=8 * 1024 * 1024,
        )
        for num_cus in (1, 2)
    ]
    serial = run_batches(batches, jobs=1)
    fanned = run_batches(batches, jobs=2)
    assert [r.cycles for r in serial] == [r.cycles for r in fanned]
    assert [r.kernels for r in serial] == [r.kernels for r in fanned]
    assert serial[0].kernels == ["saxpy", "dot", "dot", "transpose"]
    assert serial[0].total_cycles == pytest.approx(sum(serial[0].cycles))


def test_batch_validation():
    with pytest.raises(KernelError):
        QueueBatch(items=())
    with pytest.raises(KernelError):
        BatchItem("saxpy", 128, repeats=0)


def test_batch_cycles_match_independent_measurements():
    """A batch's cycles equal the per-kernel measurements done the slow way."""
    batch = QueueBatch(
        items=(BatchItem("copy", 256, SEED), BatchItem("reduce_sum", 256, SEED)),
        num_cus=2,
        memory_bytes=8 * 1024 * 1024,
    )
    result = run_batch(batch)
    for kernel, cycles in zip(result.kernels, result.cycles):
        fresh, _ = _fresh_run(kernel, num_cus=2, size=256)
        assert cycles == fresh.cycles
