"""Tests for the batched command queue (``repro.runtime.queue``).

The load-bearing invariant: a launch through a long-lived queue is
bit-identical — results *and* cycle statistics — to the same launch on a
freshly built simulator, because the queue only amortizes host-side setup
(simulator construction, program pre-decode), never simulated state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import GGPUConfig, TransferConfig
from repro.arch.kernel import NDRange
from repro.errors import KernelError
from repro.kernels import get_kernel_spec, run_workload
from repro.runtime.multidevice import MultiDeviceQueue, OutOfOrderQueue
from repro.runtime.queue import (
    BatchItem,
    CommandQueue,
    QueueBatch,
    run_batch,
    run_batches,
)
from repro.simt.gpu import GGPUSimulator

SEED = 5
SIZE = 128


def _fresh_run(name: str, num_cus: int = 1, size: int = SIZE):
    spec = get_kernel_spec(name)
    simulator = GGPUSimulator(GGPUConfig(num_cus=num_cus), memory_bytes=8 * 1024 * 1024)
    return run_workload(simulator, spec.build(), spec.workload(size, SEED), check=False)


@pytest.mark.parametrize("name", ["copy", "saxpy", "dot", "inclusive_scan"])
def test_queued_launches_match_fresh_simulators_bit_exactly(name):
    """N repeated queued launches == N independent runs (results and cycles)."""
    fresh_result, fresh_outputs = _fresh_run(name)

    queue = CommandQueue(config=GGPUConfig(num_cus=1), memory_bytes=8 * 1024 * 1024)
    spec = get_kernel_spec(name)
    kernel = spec.build()
    for _ in range(3):
        result, outputs = run_workload(
            queue.simulator, kernel, spec.workload(SIZE, SEED), check=False
        )
        assert result.cycles == fresh_result.cycles
        assert result.stats.instructions_issued == fresh_result.stats.instructions_issued
        assert result.stats.cache.accesses == fresh_result.stats.cache.accesses
        assert result.stats.cache.misses == fresh_result.stats.cache.misses
        for buffer, values in fresh_outputs.items():
            assert np.array_equal(outputs[buffer], values)


def test_queue_reuses_the_predecoded_program():
    queue = CommandQueue(config=GGPUConfig(num_cus=1), memory_bytes=8 * 1024 * 1024)
    spec = get_kernel_spec("saxpy")
    kernel = spec.build()
    launches = 6
    for _ in range(launches):
        run_workload(queue.simulator, kernel, spec.workload(SIZE, SEED))
    assert queue.simulator.decode_cache_misses == 1
    assert queue.simulator.decode_cache_hits == launches - 1
    # A different kernel object decodes once more, then hits again.
    other = spec.build()
    run_workload(queue.simulator, other, spec.workload(SIZE, SEED))
    run_workload(queue.simulator, other, spec.workload(SIZE, SEED))
    assert queue.simulator.decode_cache_misses == 2
    assert queue.simulator.decode_cache_hits == launches


def test_enqueue_flush_preserves_order_and_results():
    queue = CommandQueue(config=GGPUConfig(num_cus=2), memory_bytes=8 * 1024 * 1024)
    copy_spec = get_kernel_spec("copy")
    kernel = copy_spec.build()
    payloads = [np.arange(64) + 100 * i for i in range(4)]
    destinations = []
    for index, payload in enumerate(payloads):
        src = queue.create_buffer(payload)
        dst = queue.allocate_buffer(64)
        destinations.append(dst)
        sequence = queue.enqueue(
            kernel, NDRange(64, 64), {"src": src, "dst": dst, "n": 64}
        )
        assert sequence == index
    assert queue.pending == 4
    results = queue.flush()
    assert queue.pending == 0
    assert [r.kernel_name for r in results] == ["copy"] * 4
    for dst, payload in zip(destinations, payloads, strict=True):
        assert np.array_equal(queue.read_buffer(dst, 64).astype(np.int64), payload)
    assert queue.stats.launches == 4
    assert queue.stats.cycles_by_kernel["copy"] == pytest.approx(queue.stats.total_cycles)


def test_read_buffer_finishes_pending_work():
    queue = CommandQueue(config=GGPUConfig(num_cus=1), memory_bytes=8 * 1024 * 1024)
    kernel = get_kernel_spec("copy").build()
    src = queue.create_buffer(np.arange(64))
    dst = queue.allocate_buffer(64)
    queue.enqueue(kernel, NDRange(64, 64), {"src": src, "dst": dst, "n": 64})
    # No explicit flush: the read must drain the queue first.
    assert np.array_equal(queue.read_buffer(dst, 64).astype(np.int64), np.arange(64))
    assert queue.pending == 0


def test_queue_rejects_simulator_and_config_together():
    simulator = GGPUSimulator(GGPUConfig(num_cus=1), memory_bytes=1 << 20)
    with pytest.raises(KernelError):
        CommandQueue(simulator=simulator, config=GGPUConfig(num_cus=1))


def test_run_batches_is_deterministic_across_job_counts():
    batches = [
        QueueBatch(
            items=(
                BatchItem("saxpy", 128, SEED),
                BatchItem("dot", 128, SEED, repeats=2),
                BatchItem("transpose", 128, SEED),
            ),
            num_cus=num_cus,
            memory_bytes=8 * 1024 * 1024,
        )
        for num_cus in (1, 2)
    ]
    serial = run_batches(batches, jobs=1)
    fanned = run_batches(batches, jobs=2)
    assert [r.cycles for r in serial] == [r.cycles for r in fanned]
    assert [r.kernels for r in serial] == [r.kernels for r in fanned]
    assert serial[0].kernels == ["saxpy", "dot", "dot", "transpose"]
    assert serial[0].total_cycles == pytest.approx(sum(serial[0].cycles))


def test_batch_validation():
    with pytest.raises(KernelError):
        QueueBatch(items=())
    with pytest.raises(KernelError):
        BatchItem("saxpy", 128, repeats=0)


def test_finish_on_empty_queue_is_a_cheap_noop():
    """Regression: finishing (or flushing) an empty queue does nothing."""
    queue = CommandQueue(config=GGPUConfig(num_cus=1), memory_bytes=1 << 20)
    assert queue.flush() == []
    assert queue.finish() == []
    assert queue.pending == 0
    assert queue.stats.launches == 0
    # The simulator was never touched: no launch, no decode.
    assert queue.simulator.decode_cache_misses == 0
    assert queue.simulator.decode_cache_hits == 0


def test_zero_launch_queue_stats_have_no_division_by_zero():
    """Regression: every derived QueueStats metric is defined at zero launches."""
    queue = CommandQueue(config=GGPUConfig(num_cus=1), memory_bytes=1 << 20)
    queue.finish()
    stats = queue.stats
    assert stats.average_cycles_per_launch == 0.0
    assert stats.transfer_fraction == 0.0
    assert stats.utilization == 0.0
    assert stats.device_utilization() == {}
    assert stats.makespan == 0.0
    assert stats.critical_path_cycles == 0.0


# --------------------------------------------------------------------------- #
# Out-of-order event dependencies, pinned against in-order execution
# --------------------------------------------------------------------------- #
# Size of the DAG tests: big enough that kernel compute dominates the (fast)
# modeled interconnect, so overlapping B and C across devices pays off.
DAG_SIZE = 512


def _build_diamond(queue):
    """A -> (B, C) -> D over saxpy/copy; returns (events, output buffer, expected)."""
    copy_kernel = get_kernel_spec("copy").build()
    saxpy = get_kernel_spec("saxpy").build()
    x_host = np.arange(DAG_SIZE, dtype=np.int64) + 3
    y_host = (np.arange(DAG_SIZE, dtype=np.int64) * 5) % 97

    x = queue.create_buffer(x_host)
    y = queue.create_buffer(y_host)
    a = queue.allocate_buffer(DAG_SIZE)
    b = queue.allocate_buffer(DAG_SIZE)
    c = queue.allocate_buffer(DAG_SIZE)
    d = queue.allocate_buffer(DAG_SIZE)
    ndr = NDRange(DAG_SIZE, 64)

    ev_a = queue.enqueue(
        copy_kernel, ndr, {"src": x, "dst": a, "n": DAG_SIZE}, label="A", writes=("dst",)
    )
    ev_b = queue.enqueue(
        saxpy,
        ndr,
        {"x": a, "y": y, "out": b, "alpha": 2, "n": DAG_SIZE},
        label="B",
        wait_for=(ev_a,),
        writes=("out",),
    )
    ev_c = queue.enqueue(
        saxpy,
        ndr,
        {"x": a, "y": y, "out": c, "alpha": 3, "n": DAG_SIZE},
        label="C",
        wait_for=(ev_a,),
        writes=("out",),
    )
    ev_d = queue.enqueue(
        saxpy,
        ndr,
        {"x": b, "y": c, "out": d, "alpha": 1, "n": DAG_SIZE},
        label="D",
        wait_for=(ev_b, ev_c),
        writes=("out",),
    )
    stage_b = (2 * x_host + y_host) & 0xFFFFFFFF
    stage_c = (3 * x_host + y_host) & 0xFFFFFFFF
    expected = (stage_b + stage_c) & 0xFFFFFFFF
    return (ev_a, ev_b, ev_c, ev_d), d, expected


def test_diamond_dag_matches_in_order_single_device_bit_exactly():
    """Out-of-order diamond over 2 devices == in-order on 1 device: results
    and per-launch simulated cycles, bit for bit."""
    # A fast interconnect, so migrating A's output to the second device is
    # cheaper than queueing behind B on the first (the default DMA-ish model
    # would correctly pin the whole diamond to one device at this tiny size).
    fast_link = TransferConfig(latency_cycles=10, bytes_per_cycle=64.0)
    in_order = MultiDeviceQueue(
        config=GGPUConfig(num_cus=1),
        num_devices=1,
        memory_bytes=8 * 1024 * 1024,
        transfer=fast_link,
    )
    _, d_ref, expected = _build_diamond(in_order)
    in_order.finish()
    reference = in_order.enqueue_read(d_ref).astype(np.int64)
    assert np.array_equal(reference, expected)

    ooo = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1),
        num_devices=2,
        memory_bytes=8 * 1024 * 1024,
        transfer=fast_link,
    )
    events, d_out, _ = _build_diamond(ooo)
    ooo.finish()
    assert np.array_equal(ooo.enqueue_read(d_out).astype(np.int64), expected)

    # Per-launch simulated cycle counts are identical: same kernels, same
    # data, same buffer addresses (allocated in lock-step on every device).
    in_order_cycles = [event.compute_cycles for event in in_order.schedule]
    ooo_cycles = [event.compute_cycles for event in ooo.schedule]
    assert in_order_cycles == ooo_cycles

    # B and C are independent given A: with two devices they overlap...
    ev_a, ev_b, ev_c, ev_d = events
    assert {ev_b.device, ev_c.device} == {0, 1}
    assert ev_c.start_cycle < ev_b.end_cycle or ev_b.start_cycle < ev_c.end_cycle
    # ...while the event edges still hold.
    assert ev_b.start_cycle >= ev_a.end_cycle
    assert ev_c.start_cycle >= ev_a.end_cycle
    assert ev_d.start_cycle >= max(ev_b.end_cycle, ev_c.end_cycle)
    # The DAG's makespan beats the serialized in-order schedule.
    assert ooo.stats.makespan < in_order.stats.makespan


def _build_chains(queue, num_chains=2, depth=3):
    """Independent copy chains; returns (per-chain events, outputs, expecteds)."""
    copy_kernel = get_kernel_spec("copy").build()
    ndr = NDRange(SIZE, 64)
    chains, outputs, expecteds = [], [], []
    for chain in range(num_chains):
        payload = np.arange(SIZE, dtype=np.int64) + 1000 * chain
        stages = [queue.create_buffer(payload)]
        events = []
        previous = None
        for step in range(depth):
            stages.append(queue.allocate_buffer(SIZE))
            previous = queue.enqueue(
                copy_kernel,
                ndr,
                {"src": stages[-2], "dst": stages[-1], "n": SIZE},
                label=f"chain{chain}.{step}",
                wait_for=() if previous is None else (previous,),
                writes=("dst",),
            )
            events.append(previous)
        chains.append(events)
        outputs.append(stages[-1])
        expecteds.append(payload)
    return chains, outputs, expecteds


def test_independent_chains_overlap_and_match_in_order_bit_exactly():
    in_order = MultiDeviceQueue(
        config=GGPUConfig(num_cus=1), num_devices=1, memory_bytes=8 * 1024 * 1024
    )
    _, ref_outputs, expecteds = _build_chains(in_order)
    in_order.finish()
    for output, expected in zip(ref_outputs, expecteds, strict=True):
        assert np.array_equal(in_order.enqueue_read(output).astype(np.int64), expected)

    ooo = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1), num_devices=2, memory_bytes=8 * 1024 * 1024
    )
    chains, outputs, expecteds = _build_chains(ooo)
    ooo.finish()
    for output, expected in zip(outputs, expecteds, strict=True):
        assert np.array_equal(ooo.enqueue_read(output).astype(np.int64), expected)

    # Same per-launch cycles as the serialized reference, in enqueue order.
    assert [e.compute_cycles for e in ooo.schedule] == [
        e.compute_cycles for e in in_order.schedule
    ]
    # Each chain stays on one device (residency pulls dependents to their
    # producer), and the two chains run on different devices.
    chain_devices = [{event.device for event in chain} for chain in chains]
    assert all(len(devices) == 1 for devices in chain_devices)
    assert chain_devices[0] != chain_devices[1]
    # Within a chain the event order holds.
    for chain in chains:
        for earlier, later in zip(chain, chain[1:], strict=False):
            assert later.start_cycle >= earlier.end_cycle
    assert ooo.stats.makespan < in_order.stats.makespan


def test_batch_cycles_match_independent_measurements():
    """A batch's cycles equal the per-kernel measurements done the slow way."""
    batch = QueueBatch(
        items=(BatchItem("copy", 256, SEED), BatchItem("reduce_sum", 256, SEED)),
        num_cus=2,
        memory_bytes=8 * 1024 * 1024,
    )
    result = run_batch(batch)
    for kernel, cycles in zip(result.kernels, result.cycles, strict=True):
        fresh, _ = _fresh_run(kernel, num_cus=2, size=256)
        assert cycles == fresh.cycles


# --------------------------------------------------------------------------- #
# Topology-aware flush orders (PR 8)
# --------------------------------------------------------------------------- #
def _build_trap_dag(queue, depth=3, chain_size=128, fat_size=512):
    """A deep chain next to one fat independent launch — the LPT trap.

    LPT drains the fat launch first (largest projected time); HEFT ranks the
    chain head highest (its upward rank sums the whole chain) and dispatches
    it first.  Returns (labels of the chain, fat label, outputs, expecteds).
    """
    copy_kernel = get_kernel_spec("copy").build()
    chain_payload = np.arange(chain_size, dtype=np.int64)
    stages = [queue.create_buffer(chain_payload)]
    previous = None
    for step in range(depth):
        stages.append(queue.allocate_buffer(chain_size))
        previous = queue.enqueue(
            copy_kernel,
            NDRange(chain_size, 64),
            {"src": stages[-2], "dst": stages[-1], "n": chain_size},
            label=f"chain.{step}",
            wait_for=() if previous is None else (previous,),
            writes=("dst",),
        )
    fat_payload = np.arange(fat_size, dtype=np.int64) * 3
    fat_src = queue.create_buffer(fat_payload)
    fat_dst = queue.allocate_buffer(fat_size)
    queue.enqueue(
        copy_kernel,
        NDRange(fat_size, 64),
        {"src": fat_src, "dst": fat_dst, "n": fat_size},
        label="fat",
        writes=("dst",),
    )
    outputs = {"chain": stages[-1], "fat": fat_dst}
    expecteds = {"chain": chain_payload, "fat": fat_payload}
    return outputs, expecteds


def _run_trap_dag(scheduler, steal_seed=0):
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1),
        num_devices=2,
        memory_bytes=8 * 1024 * 1024,
        scheduler=scheduler,
        steal_seed=steal_seed,
    )
    outputs, expecteds = _build_trap_dag(queue)
    queue.finish()
    for name, output in outputs.items():
        assert np.array_equal(
            queue.enqueue_read(output).astype(np.int64), expecteds[name]
        )
    return queue


def test_heft_ranks_the_critical_chain_ahead_of_fat_independent_work():
    lpt = _run_trap_dag("lpt")
    heft = _run_trap_dag("heft")
    # LPT picks the fat launch first (largest size); HEFT dispatches the
    # chain head first — its upward rank carries the whole chain behind it.
    assert lpt.schedule[0].label == "fat"
    assert heft.schedule[0].label == "chain.0"
    # The chain's rank order survives into the schedule: hops in order.
    chain_positions = {
        event.label: index
        for index, event in enumerate(heft.schedule)
        if event.label.startswith("chain.")
    }
    assert chain_positions["chain.0"] < chain_positions["chain.1"] < chain_positions["chain.2"]
    # Same launches, same per-launch cycles — the scheduler only reorders.
    assert sorted(e.compute_cycles for e in lpt.schedule) == sorted(
        e.compute_cycles for e in heft.schedule
    )


def test_stealing_is_deterministic_for_a_fixed_seed():
    first = _run_trap_dag("stealing", steal_seed=7)
    second = _run_trap_dag("stealing", steal_seed=7)
    assert [
        (e.label, e.device, e.start_cycle, e.end_cycle) for e in first.schedule
    ] == [(e.label, e.device, e.start_cycle, e.end_cycle) for e in second.schedule]
    # And bit-exact versus every other flush order.
    fifo = _run_trap_dag("fifo")
    assert sorted(e.compute_cycles for e in first.schedule) == sorted(
        e.compute_cycles for e in fifo.schedule
    )


def test_scheduler_name_validation_and_lpt_compat():
    with pytest.raises(KernelError):
        OutOfOrderQueue(
            config=GGPUConfig(num_cus=1),
            num_devices=2,
            memory_bytes=8 * 1024 * 1024,
            scheduler="random",
        )
    with pytest.raises(KernelError):  # conflicting flush orders
        OutOfOrderQueue(
            config=GGPUConfig(num_cus=1),
            num_devices=2,
            memory_bytes=8 * 1024 * 1024,
            lpt=True,
            scheduler="heft",
        )
    # The legacy boolean still works and maps onto the scheduler name.
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1),
        num_devices=2,
        memory_bytes=8 * 1024 * 1024,
        lpt=True,
    )
    assert queue.scheduler == "lpt"
    assert queue.lpt is True
