"""Property-based tests for the OpenCL-C compiler.

The central property: for a randomly generated integer expression over two
input buffers, the kernel compiled for the G-GPU and the kernel compiled for
the RISC-V baseline both produce exactly the value the ISA-level reference
(the PE arithmetic of :mod:`repro.simt.pe`) predicts, for every work-item.
That single property exercises the lexer, parser, type checker, both code
generators, both simulators, and the 32-bit wrap-around semantics at once.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.isa import Opcode
from repro.arch.kernel import NDRange
from repro.cl import compile_source
from repro.kernels.library import GpuWorkload
from repro.simt import pe
from repro.simt.gpu import GGPUSimulator

LANES = 64

_BINARY_OPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<": Opcode.SLT,
    ">": None,  # swapped SLT, handled explicitly
    "==": None,
    "!=": None,
}


# --------------------------------------------------------------------------- #
# Expression generator
# --------------------------------------------------------------------------- #
def _leaf():
    return st.one_of(
        st.just(("var", "x")),
        st.just(("var", "y")),
        st.integers(min_value=0, max_value=99).map(lambda value: ("const", value)),
    )


def _node(children):
    binary = st.tuples(
        st.sampled_from(["+", "-", "*", "&", "|", "^", "<", ">", "==", "!="]),
        children,
        children,
    ).map(lambda parts: ("bin", parts[0], parts[1], parts[2]))
    shift = st.tuples(
        st.sampled_from(["<<", ">>"]),
        children,
        st.integers(min_value=0, max_value=5),
    ).map(lambda parts: ("shift", parts[0], parts[1], parts[2]))
    negate = children.map(lambda child: ("neg", child))
    return st.one_of(binary, shift, negate)


EXPRESSIONS = st.recursive(_leaf(), _node, max_leaves=12)


def render(tree) -> str:
    """Render an expression tree as OpenCL-C source text."""
    kind = tree[0]
    if kind == "var":
        return tree[1]
    if kind == "const":
        return str(tree[1])
    if kind == "neg":
        return f"(-{render(tree[1])})"
    if kind == "shift":
        return f"({render(tree[2])} {tree[1]} {tree[3]})"
    return f"({render(tree[2])} {tree[1]} {render(tree[3])})"


def reference(tree, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Evaluate the tree with the exact PE (ISA-level) semantics."""
    kind = tree[0]
    if kind == "var":
        return x.copy() if tree[1] == "x" else y.copy()
    if kind == "const":
        return np.full(LANES, tree[1], dtype=np.int64)
    if kind == "neg":
        return pe.execute_binary(Opcode.SUB, np.zeros(LANES, dtype=np.int64), reference(tree[1], x, y))
    if kind == "shift":
        amount = np.full(LANES, tree[3], dtype=np.int64)
        opcode = Opcode.SLL if tree[1] == "<<" else Opcode.SRA
        return pe.execute_binary(opcode, reference(tree[2], x, y), amount)
    op, left, right = tree[1], reference(tree[2], x, y), reference(tree[3], x, y)
    if op == ">":
        return pe.execute_binary(Opcode.SLT, right, left)
    if op == "==":
        difference = pe.execute_binary(Opcode.SUB, left, right)
        not_equal = pe.execute_binary(Opcode.SLTU, np.zeros(LANES, dtype=np.int64), difference)
        return pe.execute_binary(Opcode.XOR, not_equal, np.ones(LANES, dtype=np.int64))
    if op == "!=":
        difference = pe.execute_binary(Opcode.SUB, left, right)
        return pe.execute_binary(Opcode.SLTU, np.zeros(LANES, dtype=np.int64), difference)
    return pe.execute_binary(_BINARY_OPS[op], left, right)


def kernel_source(tree) -> str:
    return (
        "__kernel void generated(__global int *a, __global int *b, __global int *out, int n) {\n"
        "    int gid = get_global_id(0);\n"
        "    int x = a[gid];\n"
        "    int y = b[gid];\n"
        f"    out[gid] = {render(tree)};\n"
        "}\n"
    )


def _inputs(seed: int):
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2**16, size=LANES, dtype=np.int64)
    y = rng.integers(0, 2**16, size=LANES, dtype=np.int64)
    return x, y


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(tree=EXPRESSIONS, seed=st.integers(min_value=0, max_value=2**16))
def test_compiled_ggpu_expression_matches_isa_reference(tree, seed):
    x, y = _inputs(seed)
    expected = reference(tree, x, y) & 0xFFFFFFFF

    program = compile_source(kernel_source(tree))
    kernel = program.to_ggpu_kernel()
    simulator = GGPUSimulator(memory_bytes=4 * 1024 * 1024)
    a = simulator.create_buffer(x)
    b = simulator.create_buffer(y)
    out = simulator.allocate_buffer(LANES)
    simulator.launch(kernel, NDRange(LANES, LANES), {"a": a, "b": b, "out": out, "n": LANES})
    observed = simulator.read_buffer(out, LANES).astype(np.int64)
    np.testing.assert_array_equal(observed, expected)


@settings(max_examples=15, deadline=None)
@given(tree=EXPRESSIONS, seed=st.integers(min_value=0, max_value=2**16))
def test_compiled_riscv_expression_matches_isa_reference(tree, seed):
    x, y = _inputs(seed)
    expected = reference(tree, x, y) & 0xFFFFFFFF

    program = compile_source(kernel_source(tree))
    workload = GpuWorkload(
        buffers={"a": x, "b": y, "out": np.zeros(LANES, dtype=np.int64)},
        scalars={"n": LANES},
        expected={},
        ndrange=NDRange(LANES, LANES),
    )
    case = program.to_riscv_case(workload)
    _, _ = case.run(check=False)
    observed = case.memory.read_buffer(case.buffer_addresses["out"], LANES).astype(np.int64)
    np.testing.assert_array_equal(observed, expected)


@settings(max_examples=25, deadline=None)
@given(tree=EXPRESSIONS)
def test_generated_programs_have_a_lossless_binary_encoding(tree):
    """Every compiled kernel survives an encode/decode round trip."""
    from repro.arch.assembler import decode_program, encode_program

    kernel = compile_source(kernel_source(tree)).to_ggpu_kernel()
    words = encode_program(kernel.program)
    decoded = decode_program(kernel.name, words)
    assert len(decoded) == len(kernel.program)
    for original, restored in zip(kernel.program.instructions, decoded.instructions, strict=True):
        assert original.opcode is restored.opcode
        assert original.rd == restored.rd
        assert original.rs == restored.rs


@settings(max_examples=20, deadline=None)
@given(
    alpha=st.integers(min_value=-1000, max_value=1000),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_saxpy_property_for_any_alpha(alpha, seed):
    """out = alpha * x + y holds for any alpha, on the compiled kernel."""
    from repro.cl.sources import SAXPY_CL

    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2**15, size=LANES, dtype=np.int64)
    y = rng.integers(0, 2**15, size=LANES, dtype=np.int64)
    expected = (alpha * x + y) & 0xFFFFFFFF

    kernel = compile_source(SAXPY_CL).to_ggpu_kernel()
    simulator = GGPUSimulator(memory_bytes=4 * 1024 * 1024)
    buffers = {
        "x": simulator.create_buffer(x),
        "y": simulator.create_buffer(y),
        "out": simulator.allocate_buffer(LANES),
    }
    simulator.launch(
        kernel,
        NDRange(LANES, LANES),
        {**buffers, "alpha": alpha, "n": LANES},
    )
    observed = simulator.read_buffer(buffers["out"], LANES).astype(np.int64)
    np.testing.assert_array_equal(observed, expected)
