"""Exception hierarchy."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exception",
    [
        errors.ConfigurationError,
        errors.TechnologyError,
        errors.AssemblyError,
        errors.SimulationError,
        errors.KernelError,
        errors.NetlistError,
        errors.TimingError,
        errors.SynthesisError,
        errors.PhysicalDesignError,
        errors.PlanningError,
    ],
)
def test_all_errors_derive_from_repro_error(exception):
    assert issubclass(exception, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exception("boom")


def test_repro_error_is_an_exception():
    assert issubclass(errors.ReproError, Exception)
