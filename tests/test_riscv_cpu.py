"""RV32IM instruction-set simulator and cycle model."""

import pytest

from repro.errors import SimulationError
from repro.riscv.assembler import A0, A1, RvAssembler, T0, T1, T2, ZERO
from repro.riscv.cpu import CpuCycleModel, CpuStats, RiscvCpu
from repro.riscv.isa import RvOpcode
from repro.riscv.memory import RvMemory


def _run(asm: RvAssembler, memory: RvMemory = None) -> RiscvCpu:
    cpu = RiscvCpu(memory or RvMemory())
    cpu.run(asm.assemble())
    return cpu


def test_arithmetic_and_halt():
    asm = RvAssembler("arith")
    asm.li(T0, 21)
    asm.emit(RvOpcode.ADD, rd=T1, rs1=T0, rs2=T0)
    asm.emit(RvOpcode.MUL, rd=T2, rs1=T1, rs2=T0)
    asm.halt()
    cpu = _run(asm)
    assert cpu.read_reg(T1) == 42
    assert cpu.read_reg(T2) == 42 * 21
    assert cpu.halted


def test_x0_is_hardwired_to_zero():
    asm = RvAssembler("zero")
    asm.li(ZERO, 123)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=ZERO, imm=7)
    asm.halt()
    cpu = _run(asm)
    assert cpu.read_reg(ZERO) == 0
    assert cpu.read_reg(T0) == 7


def test_signed_division_and_divide_by_zero():
    asm = RvAssembler("div")
    asm.li(T0, -7)
    asm.li(T1, 2)
    asm.emit(RvOpcode.DIV, rd=T2, rs1=T0, rs2=T1)
    asm.emit(RvOpcode.REM, rd=A0, rs1=T0, rs2=T1)
    asm.emit(RvOpcode.DIV, rd=A1, rs1=T0, rs2=ZERO)
    asm.halt()
    cpu = _run(asm)
    assert cpu.read_reg(T2) == 0xFFFFFFFD  # -3
    assert cpu.read_reg(A0) == 0xFFFFFFFF  # -1
    assert cpu.read_reg(A1) == 0xFFFFFFFF  # div by zero -> -1


def test_loads_stores_and_memory():
    memory = RvMemory()
    base = memory.allocate(4)
    asm = RvAssembler("mem")
    asm.li(A0, base)
    asm.li(T0, 0xDEAD)
    asm.emit(RvOpcode.SW, rs1=A0, rs2=T0, imm=4)
    asm.emit(RvOpcode.LW, rd=T1, rs1=A0, imm=4)
    asm.halt()
    cpu = _run(asm, memory)
    assert cpu.read_reg(T1) == 0xDEAD
    assert cpu.stats.loads == 1 and cpu.stats.stores == 1


def test_branch_loop_and_cycle_model():
    asm = RvAssembler("loop")
    asm.li(T0, 5)
    asm.li(T1, 0)
    asm.label("head")
    asm.emit(RvOpcode.ADD, rd=T1, rs1=T1, rs2=T0)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=-1)
    asm.emit(RvOpcode.BNE, rs1=T0, rs2=ZERO, label="head")
    asm.halt()
    cpu = _run(asm)
    assert cpu.read_reg(T1) == 5 + 4 + 3 + 2 + 1
    assert cpu.stats.taken_branches == 4
    # Taken branches cost more than not-taken ones.
    model = CpuCycleModel()
    assert model.cost(asm.assemble()[4], taken=True) > model.cost(asm.assemble()[4], taken=False)
    assert cpu.stats.cpi > 1.0


def test_jal_and_jalr_link_and_jump():
    asm = RvAssembler("call")
    asm.li(A0, 0)
    asm.emit(RvOpcode.JAL, rd=1, label="target")
    asm.li(A0, 111)  # skipped
    asm.label("target")
    asm.li(A1, 222)
    asm.halt()
    cpu = _run(asm)
    assert cpu.read_reg(A0) == 0
    assert cpu.read_reg(A1) == 222
    assert cpu.read_reg(1) != 0  # return address was written


def test_runaway_program_hits_instruction_limit():
    asm = RvAssembler("spin")
    asm.label("again")
    asm.j("again")
    cpu = RiscvCpu(RvMemory(), max_instructions=1000)
    with pytest.raises(SimulationError):
        cpu.run(asm.assemble())


def test_pc_outside_program_raises():
    asm = RvAssembler("fallthrough")
    asm.nop()  # no ebreak: execution runs off the end
    cpu = RiscvCpu(RvMemory())
    with pytest.raises(SimulationError):
        cpu.run(asm.assemble())


def test_memory_bounds_and_allocation():
    memory = RvMemory(1024)
    with pytest.raises(SimulationError):
        memory.allocate(10_000)
    with pytest.raises(SimulationError):
        memory.load_word(2000)
    with pytest.raises(SimulationError):
        memory.load_word(2)  # unaligned
    base = memory.allocate(4)
    memory.write_buffer(base, [1, 2, 3, 4])
    assert list(memory.read_buffer(base, 4)) == [1, 2, 3, 4]


@pytest.mark.parametrize("predecode", [True, False])
def test_misaligned_entry_pc_raises(predecode):
    asm = RvAssembler("misaligned-entry")
    asm.nop()
    asm.halt()
    cpu = RiscvCpu(RvMemory())
    cpu.predecode = predecode
    with pytest.raises(SimulationError, match="misaligned PC"):
        cpu.run(asm.assemble(), entry_pc=2)


@pytest.mark.parametrize("predecode", [True, False])
def test_misaligned_jalr_target_raises(predecode):
    """A JALR to a non-instruction boundary must fault, not silently truncate.

    JALR clears only bit 0 of the computed target (per the architecture), so
    a target with bit 1 set lands between instructions; the seed interpreter
    used to execute the instruction at ``pc // 4`` as if nothing happened.
    """
    asm = RvAssembler("misaligned-jalr")
    asm.li(T0, 6)  # 6 & ~1 == 6: misaligned instruction address
    asm.emit(RvOpcode.JALR, rd=0, rs1=T0, imm=0)
    asm.nop()
    asm.halt()
    cpu = RiscvCpu(RvMemory())
    cpu.predecode = predecode
    with pytest.raises(SimulationError, match="misaligned PC"):
        cpu.run(asm.assemble())
    # Both paths agree on where execution stopped.
    assert cpu.stats.instructions == 2


def test_stats_kcycles_and_mnemonic_counts():
    asm = RvAssembler("stats")
    asm.li(T0, 1)
    asm.emit(RvOpcode.MUL, rd=T0, rs1=T0, rs2=T0)
    asm.halt()
    cpu = _run(asm)
    assert cpu.stats.mnemonic_counts["mul"] == 1
    assert cpu.stats.kcycles == pytest.approx(cpu.stats.cycles / 1000.0)
    assert CpuStats().cpi == 0.0
