"""Assembler, label resolution, and machine-word encoding."""

import pytest

from repro.arch.assembler import (
    Assembler,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
    fits_in_immediate,
    split_constant,
)
from repro.arch.isa import Opcode
from repro.errors import AssemblyError


def _sample_program():
    asm = Assembler("sample")
    asm.emit(Opcode.LI, rd=1, imm=10)
    asm.label("loop")
    asm.emit(Opcode.ADDI, rd=1, rs=1, imm=-1)
    asm.emit(Opcode.BNE, rs=1, rt=0, label="loop")
    asm.emit(Opcode.RET)
    return asm.assemble()


def test_labels_resolve_to_absolute_addresses():
    program = _sample_program()
    assert program.labels["loop"] == 1
    branch = program.instructions[2]
    assert branch.imm == 1  # resolved target address


def test_undefined_label_raises():
    asm = Assembler("bad")
    asm.emit(Opcode.JMP, label="nowhere")
    with pytest.raises(AssemblyError):
        asm.assemble()


def test_duplicate_label_raises():
    asm = Assembler("dup")
    asm.label("here")
    with pytest.raises(AssemblyError):
        asm.label("here")


def test_unique_labels_are_unique():
    asm = Assembler("uniq")
    names = {asm.unique_label("L") for _ in range(100)}
    assert len(names) == 100


def test_listing_contains_labels_and_mnemonics():
    program = _sample_program()
    listing = program.listing()
    assert "loop:" in listing
    assert "addi" in listing
    assert "ret" in listing


def test_static_histogram():
    histogram = _sample_program().static_histogram()
    assert histogram["alu"] == 2
    assert histogram["branch"] == 1
    assert histogram["ret"] == 1


def test_encode_decode_round_trip_fields():
    program = _sample_program()
    words = encode_program(program)
    assert all(0 <= word < 2**32 for word in words)
    decoded = decode_program("sample", words)
    for original, recovered in zip(program.instructions, decoded.instructions, strict=True):
        assert recovered.opcode is original.opcode
        assert recovered.rd == original.rd
        assert recovered.rs == original.rs
        assert recovered.rt == original.rt
        assert recovered.imm == (original.imm if original.imm is not None else recovered.imm)


def test_negative_immediates_survive_encoding():
    instruction = Assembler("neg").emit(Opcode.ADDI, rd=3, rs=3, imm=-42)
    decoded = decode_instruction(encode_instruction(instruction))
    assert decoded.imm == -42


def test_immediate_overflow_rejected():
    instruction = Assembler("big").emit(Opcode.LI, rd=1, imm=1 << 20)
    with pytest.raises(AssemblyError):
        encode_instruction(instruction)


def test_fits_in_immediate_and_split_constant():
    assert fits_in_immediate(8191)
    assert fits_in_immediate(-8192)
    assert not fits_in_immediate(8192)
    upper, lower = split_constant(0x12345)
    assert (upper << 14) | lower == 0x12345
    with pytest.raises(AssemblyError):
        split_constant(1 << 29)
