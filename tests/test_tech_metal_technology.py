"""Metal stack and technology bundle."""

import pytest

from repro.errors import TechnologyError
from repro.tech.metal import MetalStack
from repro.tech.sram import SramPort
from repro.tech.technology import Technology, default_65nm


@pytest.fixture
def stack() -> MetalStack:
    return MetalStack()


def test_nine_layer_stack_with_power_layers(stack):
    assert len(stack.layers) == 9
    signal_names = [layer.name for layer in stack.signal_layers]
    # M1, M8, M9 are power-only in the paper's technology.
    assert signal_names == ["M2", "M3", "M4", "M5", "M6", "M7"]


def test_layer_lookup(stack):
    assert stack.layer("M4").name == "M4"
    with pytest.raises(TechnologyError):
        stack.layer("M42")


def test_signal_layer_shares_sum_to_one(stack):
    shares = stack.signal_layer_shares()
    assert set(shares) == {"M2", "M3", "M4", "M5", "M6", "M7"}
    assert sum(shares.values()) == pytest.approx(1.0)


def test_wire_delay_grows_superlinearly(stack):
    short = stack.wire_delay_ns("M6", 1000.0)
    long = stack.wire_delay_ns("M6", 4000.0)
    assert long > 4 * short  # unbuffered RC grows faster than linearly
    with pytest.raises(TechnologyError):
        stack.wire_delay_ns("M6", -1.0)


def test_repeated_wire_delay_is_linear(stack):
    assert stack.repeated_wire_delay_ns(2000.0) == pytest.approx(
        2 * stack.repeated_wire_delay_ns(1000.0)
    )
    with pytest.raises(TechnologyError):
        stack.repeated_wire_delay_ns(-5.0)


def test_default_technology_is_65nm(tech):
    assert isinstance(tech, Technology)
    assert tech.node_nm == 65
    assert default_65nm().name == tech.name


def test_timing_budget_shrinks_with_frequency(tech):
    budget_500 = tech.timing_budget_ns(500.0)
    budget_667 = tech.timing_budget_ns(667.0)
    assert budget_500 > budget_667 > 0
    assert budget_500 == pytest.approx(
        2.0 - tech.stdcells.register_to_register_overhead() - tech.clock_uncertainty_ns
    )


def test_timing_budget_rejects_impossible_frequencies(tech):
    with pytest.raises(TechnologyError):
        tech.timing_budget_ns(0.0)
    with pytest.raises(TechnologyError):
        tech.timing_budget_ns(10000.0)


def test_macro_delay_convenience(tech):
    dual = tech.macro_delay_ns(1024, 32)
    single = tech.macro_delay_ns(1024, 32, SramPort.SINGLE)
    assert dual > single > 0


def test_technology_validation():
    with pytest.raises(TechnologyError):
        Technology(node_nm=0)
    with pytest.raises(TechnologyError):
        Technology(clock_uncertainty_ns=-0.1)
