"""Tests for the single-port-memory generator option (paper future work)."""

from __future__ import annotations

import pytest

from repro.arch.config import GGPUConfig
from repro.rtl.generator import (
    SINGLE_PORT_CAPABLE_ROLES,
    GeneratorOptions,
    generate_ggpu_netlist,
)
from repro.rtl.timing import max_frequency_mhz
from repro.synth.logic import LogicSynthesis
from repro.tech.sram import SramPort


@pytest.fixture(scope="module")
def dual_and_single(tech):
    dual = generate_ggpu_netlist(GGPUConfig(num_cus=1), name="opt_dual")
    single = generate_ggpu_netlist(
        GGPUConfig(num_cus=1),
        name="opt_single",
        options=GeneratorOptions(single_port_memories=True),
    )
    return dual, single


def test_default_options_leave_the_baseline_untouched(tech):
    baseline = generate_ggpu_netlist(GGPUConfig(num_cus=1), name="opt_baseline")
    explicit = generate_ggpu_netlist(
        GGPUConfig(num_cus=1), name="opt_baseline", options=GeneratorOptions()
    )
    assert baseline.total_macros() == explicit.total_macros()
    assert baseline.total_ff() == explicit.total_ff()
    assert baseline.total_gates() == explicit.total_gates()
    assert all(
        group.macro.ports is SramPort.DUAL for group in baseline.memory_groups.values()
    )


def test_single_port_option_converts_only_capable_roles(dual_and_single):
    dual, single = dual_and_single
    for name, group in single.memory_groups.items():
        if group.role in SINGLE_PORT_CAPABLE_ROLES:
            assert group.macro.ports is SramPort.SINGLE, name
        else:
            assert group.macro.ports is SramPort.DUAL, name
    assert single.total_macros() == dual.total_macros()


def test_single_port_option_adds_the_port_arbiter(dual_and_single):
    dual, single = dual_and_single
    arbiters = [name for name in single.logic_blocks if name.endswith("port_arbiter")]
    assert arbiters  # at least one partition gained an arbiter
    assert not [name for name in dual.logic_blocks if name.endswith("port_arbiter")]
    assert single.total_ff() > dual.total_ff()
    assert single.total_gates() > dual.total_gates()


def test_single_port_read_paths_carry_the_arbitration_levels(dual_and_single):
    dual, single = dual_and_single
    converted = [
        group.name for group in single.memory_groups.values()
        if group.role in SINGLE_PORT_CAPABLE_ROLES
    ]
    assert converted
    sample = converted[0]
    assert (
        single.timing_paths[f"{sample}__read"].logic_levels
        > dual.timing_paths[f"{sample}__read"].logic_levels
    )


def test_single_port_memories_save_area_and_power(tech, dual_and_single):
    dual, single = dual_and_single
    synthesis = LogicSynthesis(tech)
    dual_result = synthesis.run(dual, 500.0)
    single_result = synthesis.run(single, 500.0)
    assert single_result.memory_area_mm2 < dual_result.memory_area_mm2
    assert single_result.total_power_w < dual_result.total_power_w
    # The register file (dual-port, on the critical path) is untouched, so the
    # achievable frequency stays essentially the same.
    assert max_frequency_mhz(single, tech) == pytest.approx(max_frequency_mhz(dual, tech), rel=0.05)


def test_single_port_option_composes_with_clustering(tech):
    from repro.scaling import ClusterConfig, generate_clustered_netlist

    netlist = generate_clustered_netlist(
        ClusterConfig(num_clusters=2, cus_per_cluster=1),
        options=GeneratorOptions(single_port_memories=True),
    )
    single_roles = {
        group.role
        for group in netlist.memory_groups.values()
        if group.macro.ports is SramPort.SINGLE
    }
    assert single_roles.issubset(SINGLE_PORT_CAPABLE_ROLES)
    assert single_roles
