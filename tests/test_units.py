"""Unit-conversion helpers."""

import pytest

from repro import units


def test_mhz_to_ns_round_trip():
    assert units.mhz_to_ns(500.0) == pytest.approx(2.0)
    assert units.ns_to_mhz(2.0) == pytest.approx(500.0)
    assert units.ns_to_mhz(units.mhz_to_ns(667.0)) == pytest.approx(667.0)


def test_mhz_to_ns_rejects_non_positive():
    with pytest.raises(ValueError):
        units.mhz_to_ns(0.0)
    with pytest.raises(ValueError):
        units.ns_to_mhz(-1.0)


def test_area_conversions():
    assert units.um2_to_mm2(1.0e6) == pytest.approx(1.0)
    assert units.mm2_to_um2(2.5) == pytest.approx(2.5e6)
    assert units.um2_to_mm2(units.mm2_to_um2(3.3)) == pytest.approx(3.3)


def test_power_conversions():
    assert units.mw_to_w(1500.0) == pytest.approx(1.5)
    assert units.w_to_mw(2.0) == pytest.approx(2000.0)


def test_cycles_for_rounds_up():
    # 3 ns of work at 500 MHz (2 ns period) needs 2 cycles.
    assert units.cycles_for(3.0, 500.0) == 2
    assert units.cycles_for(2.0, 500.0) == 1
    assert units.cycles_for(0.0, 500.0) == 0


def test_kcycles():
    assert units.kcycles(48000) == pytest.approx(48.0)
