"""Logic synthesis model and Table-I reporting."""

import pytest

from repro.arch.config import GGPUConfig
from repro.errors import SynthesisError
from repro.eval.paper_data import PAPER_TABLE1
from repro.rtl.generator import generate_ggpu_netlist
from repro.rtl.netlist import Partition
from repro.synth.logic import LogicSynthesis
from repro.synth.report import SynthesisReportRow, format_table1


@pytest.fixture
def synthesis(tech) -> LogicSynthesis:
    return LogicSynthesis(tech)


def test_synthesis_result_counts_match_netlist(synthesis):
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=2))
    result = synthesis.run(netlist, 500.0)
    assert result.num_macros == netlist.total_macros()
    assert result.num_ff == netlist.total_ff()
    assert result.num_comb == netlist.total_gates()
    assert result.total_area_mm2 == pytest.approx(
        result.memory_area_mm2 + result.logic_area_mm2
    )
    assert result.total_power_w == pytest.approx(
        result.dynamic_w + result.leakage_mw / 1000.0
    )
    assert result.timing_met


def test_area_grows_roughly_linearly_with_cus(synthesis):
    """Paper: 'the G-GPU size grows linearly with the number of CUs'."""
    areas = {}
    for num_cus in (1, 2, 4, 8):
        netlist = generate_ggpu_netlist(GGPUConfig(num_cus=num_cus))
        areas[num_cus] = synthesis.run(netlist, 500.0).total_area_mm2
    per_cu_increment = (areas[8] - areas[1]) / 7
    assert areas[2] == pytest.approx(areas[1] + per_cu_increment, rel=0.05)
    assert areas[4] == pytest.approx(areas[1] + 3 * per_cu_increment, rel=0.05)


def test_1cu_500mhz_matches_paper_scale(synthesis):
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    result = synthesis.run(netlist, 500.0)
    paper_area, paper_memory, paper_ff, paper_comb, paper_macros, paper_leak, paper_dyn, _ = PAPER_TABLE1["1@500MHz"]
    assert result.total_area_mm2 == pytest.approx(paper_area, rel=0.15)
    assert result.memory_area_mm2 == pytest.approx(paper_memory, rel=0.15)
    assert result.num_macros == paper_macros
    assert result.num_ff == pytest.approx(paper_ff, rel=0.05)
    assert result.leakage_mw == pytest.approx(paper_leak, rel=0.30)
    assert result.dynamic_w == pytest.approx(paper_dyn, rel=0.35)


def test_partition_breakdown_covers_everything(synthesis):
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    result = synthesis.run(netlist, 500.0)
    total = sum(area.total_area_um2 for area in result.partitions.values())
    assert total == pytest.approx(
        (result.memory_area_mm2 + result.logic_area_mm2) * 1.0e6
    )
    cu_area = result.partitions[Partition.CU]
    assert cu_area.num_macros == 42
    assert result.area_per_cu_mm2() > 0


def test_power_scales_with_frequency(synthesis):
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    at_500 = synthesis.run(netlist, 500.0)
    at_667 = synthesis.run(netlist, 667.0)
    assert at_667.dynamic_w > at_500.dynamic_w
    assert at_667.leakage_mw == pytest.approx(at_500.leakage_mw)
    assert not at_667.timing_met  # unoptimized netlist cannot run at 667 MHz


def test_synthesis_validation(tech):
    with pytest.raises(SynthesisError):
        LogicSynthesis(tech, memory_activity=0.0)
    synthesis = LogicSynthesis(tech)
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    with pytest.raises(SynthesisError):
        synthesis.run(netlist, -5.0)


def test_table1_report_formatting(synthesis):
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    result = synthesis.run(netlist, 500.0)
    row = SynthesisReportRow.from_result(result)
    assert row.label == "1@500MHz"
    assert len(row.as_tuple()) == 9
    text = format_table1([result])
    assert "1@500MHz" in text
    assert "#Memory" in text
    assert str(result.num_macros) in text
