"""SIMT ISA definition: opcodes, registers, instructions."""

import pytest

from repro.arch.isa import (
    ISA,
    Instruction,
    OpClass,
    Opcode,
    Register,
    opcode_from_code,
    opcode_from_mnemonic,
    to_signed32,
    to_unsigned32,
)
from repro.errors import AssemblyError


def test_opcode_codes_are_unique():
    codes = [op.info.code for op in Opcode]
    assert len(codes) == len(set(codes))


def test_mnemonics_are_unique_and_resolvable():
    mnemonics = [op.mnemonic for op in Opcode]
    assert len(mnemonics) == len(set(mnemonics))
    for op in Opcode:
        assert opcode_from_mnemonic(op.mnemonic) is op
        assert opcode_from_code(op.info.code) is op


def test_unknown_mnemonic_and_code_raise():
    with pytest.raises(AssemblyError):
        opcode_from_mnemonic("frobnicate")
    with pytest.raises(AssemblyError):
        opcode_from_code(0xFF)


def test_register_range():
    assert int(Register(0)) == 0
    assert int(Register(31)) == 31
    with pytest.raises(AssemblyError):
        Register(32)
    with pytest.raises(AssemblyError):
        Register(-1)


def test_instruction_operand_validation():
    with pytest.raises(AssemblyError):
        Instruction(Opcode.ADD, rd=Register(1), rs=Register(2))  # missing rt
    with pytest.raises(AssemblyError):
        Instruction(Opcode.LW, rs=Register(2), imm=0)  # missing rd
    with pytest.raises(AssemblyError):
        Instruction(Opcode.JMP)  # missing target
    with pytest.raises(AssemblyError):
        Instruction(Opcode.RET, rd=Register(1))  # RET takes no destination


def test_instruction_text():
    instruction = Instruction(Opcode.ADD, rd=Register(1), rs=Register(2), rt=Register(3))
    assert instruction.text() == "add r1, r2, r3"
    jump = Instruction(Opcode.JMP, label="loop")
    assert "loop" in jump.text()


def test_opclass_assignment_examples():
    assert Opcode.ADD.opclass is OpClass.ALU
    assert Opcode.MUL.opclass is OpClass.MUL
    assert Opcode.DIV.opclass is OpClass.DIV
    assert Opcode.LW.opclass is OpClass.LOAD
    assert Opcode.SW.opclass is OpClass.STORE
    assert Opcode.LP.opclass is OpClass.PARAM
    assert Opcode.PUSHM.opclass is OpClass.MASK
    assert Opcode.BEQ.opclass is OpClass.BRANCH
    assert Opcode.RET.opclass is OpClass.RET


def test_isa_bundle_groups_opcodes():
    isa = ISA()
    assert isa.num_opcodes == len(tuple(Opcode))
    grouped = isa.opcodes_by_class()
    assert Opcode.ADD in grouped[OpClass.ALU]
    assert sum(len(ops) for ops in grouped.values()) == isa.num_opcodes


def test_signed_unsigned_conversion():
    assert to_signed32(0xFFFFFFFF) == -1
    assert to_signed32(0x7FFFFFFF) == 0x7FFFFFFF
    assert to_unsigned32(-1) == 0xFFFFFFFF
    assert to_unsigned32(2**32 + 5) == 5
