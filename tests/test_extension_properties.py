"""Property-based tests for the extension modules (Verilog, export, cl, scaling).

These complement ``test_properties.py`` (which covers the core technology and
netlist models) with invariants of the newer subsystems: the emitted Verilog
always mirrors the netlist's structural counts, memory division is visible and
consistent across every artifact, the DEF export round-trips its placement,
and the compiler's uniformity analysis decides mask-based vs. branch-based
lowering exactly as specified.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.config import GGPUConfig
from repro.arch.isa import Opcode
from repro.cl import compile_kernel
from repro.rtl.generator import GeneratorOptions, generate_ggpu_netlist
from repro.rtl.timing import max_frequency_mhz
from repro.rtl.transforms import split_memory_group, splittable_groups
from repro.rtl.verilog import emit_verilog, verilog_statistics
from repro.tech.technology import default_65nm

TECH = default_65nm()


# --------------------------------------------------------------------------- #
# Verilog emission invariants
# --------------------------------------------------------------------------- #
@settings(max_examples=10, deadline=None)
@given(
    num_cus=st.integers(min_value=1, max_value=4),
    divisions=st.integers(min_value=0, max_value=6),
    single_port=st.booleans(),
)
def test_verilog_statistics_always_match_the_netlist(num_cus, divisions, single_port):
    """However the netlist was generated and transformed, the emitted Verilog
    contains exactly one macro instantiation per physical SRAM macro and one
    wrapper per memory group."""
    options = GeneratorOptions(single_port_memories=single_port)
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=num_cus), name="prop_v", options=options)
    names = splittable_groups(netlist, TECH)
    for index in range(divisions):
        split_memory_group(netlist, names[index % len(names)], TECH)
    stats = verilog_statistics(emit_verilog(netlist, TECH).text())
    assert stats["macro_instances"] == netlist.total_macros()
    assert stats["group_wrappers"] == len(netlist.memory_groups)
    assert stats["logic_stubs"] == len(netlist.logic_blocks)


@settings(max_examples=10, deadline=None)
@given(splits=st.integers(min_value=1, max_value=8))
def test_memory_division_never_lowers_the_achievable_frequency(splits):
    """Dividing any splittable memory keeps every path at least as fast."""
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1), name="prop_split")
    before = max_frequency_mhz(netlist, TECH)
    names = splittable_groups(netlist, TECH)
    for index in range(splits):
        split_memory_group(netlist, names[index % len(names)], TECH)
    after = max_frequency_mhz(netlist, TECH)
    assert after >= before - 1e-6


@settings(max_examples=10, deadline=None)
@given(splits=st.integers(min_value=1, max_value=6))
def test_memory_division_preserves_total_capacity(splits):
    """Division changes the macro organization, never the stored bits."""
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1), name="prop_bits")
    capacity_before = {name: group.total_bits for name, group in netlist.memory_groups.items()}
    names = splittable_groups(netlist, TECH)
    for index in range(splits):
        split_memory_group(netlist, names[index % len(names)], TECH)
    for name, group in netlist.memory_groups.items():
        assert group.total_bits == capacity_before[name]
        assert group.num_macros == 2**group.mux_levels


# --------------------------------------------------------------------------- #
# Compiler lowering invariants
# --------------------------------------------------------------------------- #
_UNIFORM_CONDITIONS = ("n > 4", "get_group_id(0) == 1", "get_num_groups(0) < n", "n != 0")
_VARYING_CONDITIONS = ("get_global_id(0) > 4", "a[get_global_id(0)] != 0", "get_local_id(0) < n")


@settings(max_examples=20, deadline=None)
@given(condition=st.sampled_from(_UNIFORM_CONDITIONS), scale=st.integers(1, 5))
def test_uniform_conditions_never_lower_to_mask_instructions(condition, scale):
    kernel = compile_kernel(
        f"""
        __kernel void k(__global int *a, int n) {{
            int gid = get_global_id(0);
            if ({condition}) {{ a[gid] = {scale} * gid; }} else {{ a[gid] = {scale}; }}
        }}
        """
    )
    opcodes = [instruction.opcode for instruction in kernel.program.instructions]
    assert Opcode.PUSHM not in opcodes
    assert Opcode.CMASK not in opcodes
    assert Opcode.BEQ in opcodes


@settings(max_examples=20, deadline=None)
@given(condition=st.sampled_from(_VARYING_CONDITIONS), scale=st.integers(1, 5))
def test_varying_conditions_always_lower_to_mask_instructions(condition, scale):
    kernel = compile_kernel(
        f"""
        __kernel void k(__global int *a, int n) {{
            int gid = get_global_id(0);
            if ({condition}) {{ a[gid] = {scale} * gid; }}
        }}
        """
    )
    opcodes = [instruction.opcode for instruction in kernel.program.instructions]
    assert Opcode.PUSHM in opcodes
    assert Opcode.CMASK in opcodes
    assert Opcode.POPM in opcodes


@settings(max_examples=15, deadline=None)
@given(
    bound=st.integers(min_value=1, max_value=64),
    stride=st.integers(min_value=1, max_value=8),
)
def test_uniform_loops_lower_to_plain_branches(bound, stride):
    kernel = compile_kernel(
        f"""
        __kernel void k(__global int *a, int n) {{
            int gid = get_global_id(0);
            int total = 0;
            for (int i = 0; i < {bound}; i += {stride}) {{ total += i; }}
            a[gid] = total;
        }}
        """
    )
    opcodes = [instruction.opcode for instruction in kernel.program.instructions]
    assert Opcode.PUSHM not in opcodes
    assert Opcode.JMP in opcodes and Opcode.BEQ in opcodes


# --------------------------------------------------------------------------- #
# DEF export round trip
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("num_cus, frequency", [(1, 500.0), (2, 667.0)])
def test_def_round_trips_every_macro_location(num_cus, frequency):
    from repro.physical.export import DEF_UNITS_PER_UM, build_def, parse_def_components
    from repro.physical.layout import PhysicalSynthesis
    from repro.planner.optimizer import TimingOptimizer
    from repro.synth.logic import LogicSynthesis

    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=num_cus), name=f"prop_def_{num_cus}")
    TimingOptimizer(TECH).close_timing(netlist, frequency)
    synthesis = LogicSynthesis(TECH).run(netlist, frequency)
    layout = PhysicalSynthesis(TECH).run(netlist, synthesis, frequency)

    components = {
        name: (x, y) for name, _, x, y in parse_def_components(build_def(layout, netlist))
    }
    assert len(components) == len(layout.macro_placements)
    for macro in layout.macro_placements:
        x, y = components[macro.name.replace("/", "_")]
        assert x == pytest.approx(macro.rect.x * DEF_UNITS_PER_UM, abs=1)
        assert y == pytest.approx(macro.rect.y * DEF_UNITS_PER_UM, abs=1)
