"""Data cache and global memory controller (AXI) models."""

import pytest

from repro.arch.config import AxiConfig, CacheConfig
from repro.errors import SimulationError
from repro.simt.axi import GlobalMemoryController
from repro.simt.cache import CacheStats, DataCache


@pytest.fixture
def cache() -> DataCache:
    return DataCache(CacheConfig(size_bytes=4096, line_bytes=64))


def test_coalescing_merges_lanes_on_the_same_line(cache):
    addresses = [0, 4, 8, 60, 64, 68]
    assert cache.coalesce(addresses) == [0, 64]
    assert cache.coalesce([]) == []


def test_miss_then_hit(cache):
    first = cache.access_line(0, is_write=False)
    second = cache.access_line(0, is_write=False)
    assert not first.hit and second.hit
    assert cache.stats.read_accesses == 2
    assert cache.stats.read_misses == 1


def test_direct_mapped_conflict_eviction(cache):
    # 4096-byte cache with 64-byte lines = 64 lines; addresses 0 and 4096 map
    # to the same line.
    cache.access_line(0, is_write=True)
    conflict = cache.access_line(4096, is_write=False)
    assert not conflict.hit
    assert conflict.write_back  # the dirty victim must be written back
    assert cache.stats.write_backs == 1


def test_clean_eviction_has_no_write_back(cache):
    cache.access_line(0, is_write=False)
    conflict = cache.access_line(4096, is_write=False)
    assert not conflict.hit and not conflict.write_back


def test_wavefront_access_updates_stats(cache):
    accesses = cache.access_wavefront([4 * lane for lane in range(64)], is_write=False)
    assert len(accesses) == 4  # 64 words of 4 bytes = 4 lines of 64 bytes
    assert cache.stats.read_accesses == 4


def test_flush_and_reset(cache):
    cache.access_line(0, is_write=True)
    cache.access_line(64, is_write=True)
    assert cache.flush() == 2
    assert cache.flush() == 0
    cache.reset()
    assert cache.stats.accesses == 0
    assert cache.resident_lines() == set()


def test_bad_line_address_rejected(cache):
    with pytest.raises(SimulationError):
        cache.access_line(10, is_write=False)


def test_cache_stats_hit_rate_and_merge():
    stats = CacheStats(read_accesses=8, read_misses=2)
    assert stats.hit_rate == pytest.approx(0.75)
    assert CacheStats().hit_rate == 1.0
    merged = stats.merge(CacheStats(write_accesses=4, write_misses=1, write_backs=3))
    assert merged.accesses == 12
    assert merged.misses == 3
    assert merged.write_backs == 3


def test_memory_controller_latency_and_bandwidth():
    controller = GlobalMemoryController(AxiConfig(), CacheConfig())
    transfer = controller.line_transfer_cycles
    first = controller.line_fill(0.0)
    assert first == pytest.approx(AxiConfig().memory_latency_cycles + transfer)
    # Four ports: the fifth concurrent fill has to wait for a port.
    completions = [controller.line_fill(0.0) for _ in range(4)]
    assert max(completions) > first
    assert controller.stats.line_fills == 5


def test_memory_controller_write_back_is_posted():
    controller = GlobalMemoryController(AxiConfig(), CacheConfig())
    done = controller.write_back(0.0)
    assert done == pytest.approx(controller.line_transfer_cycles)
    assert controller.stats.write_backs == 1


def test_memory_controller_reset_and_validation():
    controller = GlobalMemoryController(AxiConfig(), CacheConfig())
    controller.line_fill(0.0)
    controller.reset()
    assert controller.stats.transactions == 0
    assert controller.earliest_free() == 0.0
    with pytest.raises(SimulationError):
        controller.line_fill(-1.0)
