"""Golden cycle-count regression tests for the SIMT engine.

The event-heap engine rewrite is required to be cycle-for-cycle faithful:
these tests pin the cycle counts and dynamic instruction counts of all seven
paper kernels at 1/2/4/8 CUs, so any engine change that silently drifts the
Table III numbers fails loudly.  The pinned values were produced by the
event-heap engine and verified bit-for-bit against the original
instruction-at-a-time engine (the only intended difference is the cache-port
serialization fix, which shifts only ``xcorr`` — the one kernel whose
accesses scatter across more lines than the cache has ports — by under 1%).

Also covered here: equivalence of the macro-stepping fast path against
single-instruction stepping, barrier edge cases (multi-wavefront workgroups
parked at the barrier), divergence-mask edge cases, posted-store semantics,
the end-of-kernel flush traffic, and the round-robin idle-CU refill.
"""

from dataclasses import asdict

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.arch.config import AxiConfig, CacheConfig, GGPUConfig
from repro.cl import compile_source
from repro.runtime.queue import CommandQueue
from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.kernels import get_kernel_spec, run_workload
from repro.simt.dispatcher import WorkgroupDispatcher
from repro.simt.gpu import GGPUSimulator

CU_COUNTS = (1, 2, 4, 8)

# kernel -> (input size, {num_cus: cycles}, dynamic wavefront-instructions)
# Regenerate deliberately with ``python tests/tools/regen_goldens.py`` after
# an intended engine change; never hand-edit the numbers.
GOLDEN = {
    "mat_mul": (256, {1: 14932.0, 2: 14932.0, 4: 14932.0, 8: 14932.0}, 2376),
    "copy": (4096, {1: 4612.0, 2: 2311.0, 4: 1226.0, 8: 910.0}, 640),
    "vec_mul": (8192, {1: 14340.0, 2: 7175.0, 4: 3818.0, 8: 3080.0}, 1920),
    "fir": (512, {1: 7943.0, 2: 4011.0, 4: 4011.0, 8: 4011.0}, 1264),
    "div_int": (512, {1: 20132.0, 2: 10162.0, 4: 10162.0, 8: 10162.0}, 4068),
    "xcorr": (512, {1: 119257.0, 2: 65163.0, 4: 65163.0, 8: 65163.0}, 18544),
    "parallel_sel": (256, {1: 49560.0, 2: 49560.0, 4: 49560.0, 8: 49560.0}, 8248),
}

# The extended-suite kernels added after the engine rewrites, pinned at the
# same 1/2/4/8 CU grid.  The barrier/LRAM kernels (dot, reduce_sum,
# inclusive_scan) also pin the per-workgroup LRAM-window machinery and the
# local-memory occupancy limit in the dispatcher refill path.
EXTENDED_GOLDEN = {
    "saxpy": (4096, {1: 7172.0, 2: 3592.0, 4: 2074.0, 8: 1550.0}, 960),
    "dot": (1024, {1: 6533.0, 2: 3290.0, 4: 2038.0, 8: 2038.0}, 1820),
    "reduce_sum": (1024, {1: 6021.0, 2: 3034.0, 4: 1865.0, 8: 1865.0}, 1756),
    "inclusive_scan": (512, {1: 5316.0, 2: 2799.0, 4: 2799.0, 8: 2799.0}, 1200),
    "histogram": (256, {1: 65860.0, 2: 33392.0, 4: 24589.0, 8: 24589.0}, 10288),
    "transpose": (2048, {1: 3588.0, 2: 1800.0, 4: 923.0, 8: 614.0}, 480),
}

# The rank-2 dense workloads: tiled matmul2d (LRAM tiles + barriers under a
# (8, 8) workgroup), conv2d (pure 2-D indexing), and bitonic_sort (barriered
# per-workgroup exchange network).  These pin the 2-D workgroup distribution
# and per-dimension GID/LID/WGID machinery of the dispatcher and both issue
# engines at the same 1/2/4/8 CU grid.
DENSE_GOLDEN = {
    "matmul2d": (512, {1: 10692.0, 2: 5382.0, 4: 2794.0, 8: 2087.0}, 1688),
    "conv2d": (512, {1: 3338.0, 2: 1723.0, 4: 993.0, 8: 836.0}, 424),
    "bitonic_sort": (512, {1: 19204.0, 2: 9635.0, 4: 4995.0, 8: 3806.0}, 3744),
}

ALL_GOLDEN = {**GOLDEN, **EXTENDED_GOLDEN, **DENSE_GOLDEN}

SEED = 2022


def _run(name: str, num_cus: int, size: int, **sim_kwargs):
    spec = get_kernel_spec(name)
    workload = spec.workload(size, SEED)
    config = sim_kwargs.pop("config", GGPUConfig().with_cus(num_cus))
    simulator = GGPUSimulator(config, **sim_kwargs)
    # run_workload checks the outputs against the numpy reference, so every
    # golden run also verifies functional correctness.
    result, _ = run_workload(simulator, spec.build(), workload)
    return result


@pytest.mark.parametrize("name", sorted(ALL_GOLDEN))
def test_golden_cycle_counts(name):
    size, cycles_by_cu, instructions = ALL_GOLDEN[name]
    for num_cus in CU_COUNTS:
        result = _run(name, num_cus, size)
        assert result.cycles == cycles_by_cu[num_cus], (
            f"{name} on {num_cus} CU(s): cycle count drifted from "
            f"{cycles_by_cu[num_cus]} to {result.cycles}"
        )
        assert result.stats.instructions_issued == instructions


@pytest.mark.parametrize("name", ["div_int", "fir", "copy", "dot", "inclusive_scan"])
def test_macro_stepping_is_cycle_exact(name):
    """The fast path and single-instruction stepping must agree exactly."""
    size, _, _ = ALL_GOLDEN[name]
    outcomes = {}
    for macro in (True, False):
        spec = get_kernel_spec(name)
        workload = spec.workload(size, SEED)
        simulator = GGPUSimulator(GGPUConfig(num_cus=2))
        for cu in simulator.compute_units:
            cu.macro_step = macro
        result, outputs = run_workload(simulator, spec.build(), workload)
        outcomes[macro] = (
            result.cycles,
            result.stats.instructions_issued,
            {key: value.tolist() for key, value in outputs.items()},
        )
    assert outcomes[True] == outcomes[False]


def test_macro_stepping_batches_uncontended_runs():
    """A lone wavefront's straight-line code is issued in batched events."""
    size, _, _ = GOLDEN["div_int"]
    spec = get_kernel_spec("div_int")
    simulator = GGPUSimulator(GGPUConfig(num_cus=1))
    result, _ = run_workload(simulator, spec.build(), spec.workload(64, SEED))
    stats = result.stats.cu_stats[0]
    assert stats.issue_events < stats.instructions_issued
    assert stats.macro_batching > 1.5


# --------------------------------------------------------------------- #
# Barrier edge cases
# --------------------------------------------------------------------- #
def _barrier_kernel(rounds: int = 1) -> Kernel:
    """Stage values through LRAM with ``rounds`` barrier round-trips.

    Workgroups concurrently resident on one CU share its LRAM, so each
    workgroup stages through its own slot range (``wgid * wgsize + lid``).
    """
    builder = KernelBuilder("bar_edges", args=(KernelArg("out"),))
    gid = builder.alloc("gid")
    lid = builder.alloc("lid")
    out = builder.alloc("out")
    addr = builder.alloc("addr")
    value = builder.alloc("value")
    wgsize = builder.alloc("wgsize")
    base = builder.alloc("base")
    builder.global_id(gid)
    builder.emit(Opcode.LID, rd=lid)
    builder.emit(Opcode.WGSIZE, rd=wgsize)
    builder.emit(Opcode.WGID, rd=base)
    builder.emit(Opcode.MUL, rd=base, rs=base, rt=wgsize)
    builder.load_arg(out, "out")
    builder.emit(Opcode.ADDI, rd=value, rs=gid, imm=3)
    for _ in range(rounds):
        # write my slot, barrier, read my neighbour's slot (lid+1 mod wgsize)
        builder.emit(Opcode.ADD, rd=addr, rs=base, rt=lid)
        builder.emit(Opcode.SLLI, rd=addr, rs=addr, imm=2)
        builder.emit(Opcode.LSW, rs=addr, rt=value, imm=0)
        builder.emit(Opcode.BARRIER)
        builder.emit(Opcode.ADDI, rd=addr, rs=lid, imm=1)
        builder.emit(Opcode.REM, rd=addr, rs=addr, rt=wgsize)
        builder.emit(Opcode.ADD, rd=addr, rs=addr, rt=base)
        builder.emit(Opcode.SLLI, rd=addr, rs=addr, imm=2)
        builder.emit(Opcode.LLW, rd=value, rs=addr, imm=0)
        builder.emit(Opcode.BARRIER)
    builder.address_of_element(addr, out, gid)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.ret()
    return builder.build()


def _barrier_reference(global_size: int, workgroup_size: int, rounds: int) -> list:
    values = [gid + 3 for gid in range(global_size)]
    for _ in range(rounds):
        rotated = []
        for gid in range(global_size):
            workgroup = gid // workgroup_size
            lid = gid % workgroup_size
            neighbour = workgroup * workgroup_size + (lid + 1) % workgroup_size
            rotated.append(values[neighbour])
        values = rotated
    return values


@pytest.mark.parametrize("workgroup_size", [128, 256, 512])
def test_multi_wavefront_workgroups_park_and_release_at_barrier(workgroup_size):
    """2/4/8 wavefronts per workgroup all park at SBAR and release together."""
    global_size = 1024
    kernel = _barrier_kernel(rounds=2)
    simulator = GGPUSimulator(GGPUConfig(num_cus=2))
    out = simulator.allocate_buffer(global_size)
    result = simulator.launch(kernel, NDRange(global_size, workgroup_size), {"out": out})
    values = simulator.read_buffer(out, global_size)
    assert list(values) == _barrier_reference(global_size, workgroup_size, rounds=2)
    # Every wavefront of every workgroup issued all four barriers.
    wavefronts = global_size // 64
    assert result.stats.mix.counts["sync"] == 4 * wavefronts


def test_barrier_macro_stepping_equivalence():
    """Barriers interrupt macro runs; cycles must not depend on the fast path."""
    kernel = _barrier_kernel(rounds=1)
    cycles = {}
    for macro in (True, False):
        simulator = GGPUSimulator(GGPUConfig(num_cus=1))
        for cu in simulator.compute_units:
            cu.macro_step = macro
        out = simulator.allocate_buffer(512)
        result = simulator.launch(kernel, NDRange(512, 512), {"out": out})
        cycles[macro] = result.cycles
    assert cycles[True] == cycles[False]


def test_single_wavefront_workgroup_barrier_releases_immediately():
    kernel = _barrier_kernel(rounds=1)
    simulator = GGPUSimulator(GGPUConfig(num_cus=1))
    out = simulator.allocate_buffer(64)
    result = simulator.launch(kernel, NDRange(64, 64), {"out": out})
    values = simulator.read_buffer(out, 64)
    assert list(values) == _barrier_reference(64, 64, rounds=1)
    assert result.cycles > 0


# --------------------------------------------------------------------- #
# Divergence-mask edge cases
# --------------------------------------------------------------------- #
def _nested_divergence_kernel() -> Kernel:
    """out[gid] = f(gid) with two nested divergent regions."""
    builder = KernelBuilder("nested_div", args=(KernelArg("out"),))
    gid = builder.alloc("gid")
    out = builder.alloc("out")
    addr = builder.alloc("addr")
    value = builder.alloc("value")
    low = builder.alloc("low")
    bit0 = builder.alloc("bit0")
    bit1 = builder.alloc("bit1")
    builder.global_id(gid)
    builder.load_arg(out, "out")
    builder.emit(Opcode.ANDI, rd=bit0, rs=gid, imm=1)
    builder.emit(Opcode.ANDI, rd=low, rs=gid, imm=2)
    builder.emit(Opcode.SRLI, rd=bit1, rs=low, imm=1)
    builder.emit(Opcode.LI, rd=value, imm=0)
    with builder.lane_if_else(bit0) as outer:
        # odd gids
        with builder.lane_if_else(bit1) as inner:
            builder.emit(Opcode.ADDI, rd=value, rs=value, imm=3)  # gid % 4 == 3
            with inner.otherwise():
                builder.emit(Opcode.ADDI, rd=value, rs=value, imm=1)  # gid % 4 == 1
        with outer.otherwise():
            with builder.lane_if_else(bit1) as inner:
                builder.emit(Opcode.ADDI, rd=value, rs=value, imm=2)  # gid % 4 == 2
                with inner.otherwise():
                    builder.emit(Opcode.ADDI, rd=value, rs=value, imm=4)  # gid % 4 == 0
    builder.address_of_element(addr, out, gid)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.ret()
    return builder.build()


def test_nested_divergence_masks_are_exact():
    kernel = _nested_divergence_kernel()
    expected = {1: 1, 3: 3, 2: 2, 0: 4}
    for macro in (True, False):
        simulator = GGPUSimulator(GGPUConfig(num_cus=1))
        for cu in simulator.compute_units:
            cu.macro_step = macro
        out = simulator.allocate_buffer(256)
        result = simulator.launch(kernel, NDRange(256, 64), {"out": out})
        values = simulator.read_buffer(out, 256)
        assert list(values) == [expected[gid % 4] for gid in range(256)]
        # Divergent regions issue both sides, so efficiency is below 1.
        assert result.stats.simd_efficiency < 1.0


def test_fully_masked_memory_access_charges_no_traffic():
    """A load/store whose active mask is empty must not touch cache or AXI."""
    builder = KernelBuilder("masked_off", args=(KernelArg("out"),))
    gid = builder.alloc("gid")
    out = builder.alloc("out")
    addr = builder.alloc("addr")
    value = builder.alloc("value")
    zero = builder.alloc("zero")
    builder.global_id(gid)
    builder.load_arg(out, "out")
    builder.emit(Opcode.LI, rd=value, imm=9)
    builder.emit(Opcode.LI, rd=zero, imm=0)
    builder.address_of_element(addr, out, gid)
    # All lanes fail the condition: the store below executes fully masked.
    builder.emit(Opcode.PUSHM)
    builder.emit(Opcode.CMASK, rs=zero)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.emit(Opcode.POPM)
    builder.ret()
    return_kernel = builder.build()
    simulator = GGPUSimulator(GGPUConfig(num_cus=1))
    out = simulator.allocate_buffer(64)
    result = simulator.launch(return_kernel, NDRange(64, 64), {"out": out})
    assert list(simulator.read_buffer(out, 64)) == [0] * 64
    assert result.stats.cache.accesses == 0
    assert result.stats.traffic.transactions == 0


# --------------------------------------------------------------------- #
# Posted stores, flush traffic, cache-port serialization
# --------------------------------------------------------------------- #
def _store_only_kernel() -> Kernel:
    builder = KernelBuilder("store_only", args=(KernelArg("out"),))
    gid = builder.alloc("gid")
    out = builder.alloc("out")
    addr = builder.alloc("addr")
    builder.global_id(gid)
    builder.load_arg(out, "out")
    builder.address_of_element(addr, out, gid)
    builder.emit(Opcode.SW, rs=addr, rt=gid, imm=0)
    builder.ret()
    return builder.build()


def test_stores_are_posted_not_stalled():
    """A store miss claims AXI port time but never delays the wavefront.

    The wavefront's critical path sees only ``store_latency`` (2 cycles),
    not the 36-cycle memory latency of the write-allocate line fill, so the
    launch cycle count must not move when the memory latency changes.
    """
    kernel = _store_only_kernel()
    cycles = {}
    for latency in (36, 360):
        config = GGPUConfig(num_cus=1, axi=AxiConfig(memory_latency_cycles=latency))
        simulator = GGPUSimulator(config)
        out = simulator.allocate_buffer(64)
        result = simulator.launch(kernel, NDRange(64, 64), {"out": out})
        cycles[latency] = result.cycles
        # The write-allocate fills still show up as AXI traffic.
        assert result.stats.traffic.line_fills > 0
        assert result.stats.traffic.busy_cycles > 0
    assert cycles[36] == cycles[360]


def test_end_of_kernel_flush_drains_through_the_memory_controller():
    """Dirty lines left at kernel end become posted AXI write-backs."""
    kernel = _store_only_kernel()
    simulator = GGPUSimulator(GGPUConfig(num_cus=1))
    out = simulator.allocate_buffer(256)
    result = simulator.launch(kernel, NDRange(256, 64), {"out": out})
    # 256 words = 16 dirty lines; nothing evicted them during the run, so
    # the end-of-kernel flush must account them as controller write-backs.
    assert result.stats.cache.write_backs == 16
    assert result.stats.traffic.write_backs == 16
    fill_time = result.stats.traffic.line_fills * 8  # 8 beats per 64-byte line
    assert result.stats.traffic.busy_cycles == pytest.approx(fill_time + 16 * 8)


def _strided_double_load_kernel() -> Kernel:
    """One wavefront loads 64 distinct lines twice (second pass is all hits)."""
    builder = KernelBuilder("strided", args=(KernelArg("buf"), KernelArg("out")))
    gid = builder.alloc("gid")
    buf = builder.alloc("buf")
    out = builder.alloc("out")
    stride = builder.alloc("stride")
    addr = builder.alloc("addr")
    value = builder.alloc("value")
    builder.global_id(gid)
    builder.load_arg(buf, "buf")
    builder.load_arg(out, "out")
    builder.emit(Opcode.SLLI, rd=stride, rs=gid, imm=4)  # element gid*16: one line per lane
    builder.address_of_element(addr, buf, stride)
    builder.emit(Opcode.LW, rd=value, rs=addr, imm=0)  # cold: 64 line fills
    builder.emit(Opcode.LW, rd=value, rs=addr, imm=0)  # warm: 64 hits in one access
    builder.address_of_element(addr, out, gid)
    builder.emit(Opcode.SW, rs=addr, rt=value, imm=0)
    builder.ret()
    return builder.build()


def _run_strided(cache: CacheConfig) -> float:
    simulator = GGPUSimulator(GGPUConfig(num_cus=1, cache=cache))
    buf = simulator.create_buffer(range(64 * 16))
    out = simulator.allocate_buffer(64)
    result = simulator.launch(
        _strided_double_load_kernel(), NDRange(64, 64), {"buf": buf, "out": out}
    )
    assert list(simulator.read_buffer(out, 64)) == [gid * 16 for gid in range(64)]
    return result.cycles


def test_hit_latency_comes_from_the_cache_config():
    """The all-hit access completes ``hit_latency_cycles`` after issue."""
    fast = _run_strided(CacheConfig(hit_latency_cycles=4))
    slow = _run_strided(CacheConfig(hit_latency_cycles=12))
    assert slow > fast


def test_cache_ports_serialize_scattered_accesses():
    """An all-hit access over 64 lines drains one ``ports``-wide wave per cycle."""
    narrow = _run_strided(CacheConfig(ports=1))
    default = _run_strided(CacheConfig(ports=4))
    wide = _run_strided(CacheConfig(ports=64))
    # 64 hit lines: +63 serialization cycles with one port, +15 with four,
    # none with 64 (the cold all-miss access shifts a little as well, since
    # serialized fills reach the AXI ports later).
    assert narrow > default > wide
    assert narrow - default >= 63 - 15
    assert default - wide >= 15
    # Contiguous kernels coalesce to <= 4 lines per access, so the default
    # four ports never serialize them and the model change is invisible.
    copy_size, copy_cycles, _ = GOLDEN["copy"]
    wide_copy = _run(
        "copy", 1, copy_size, config=GGPUConfig(num_cus=1, cache=CacheConfig(ports=64))
    )
    assert wide_copy.cycles == copy_cycles[1]


# --------------------------------------------------------------------- #
# Vectorized cross-wavefront issue: on/off equivalence axis
# --------------------------------------------------------------------- #
def _launch_modes(kernel: Kernel, global_size: int, workgroup_size: int, num_cus: int):
    """Run ``kernel`` with the vectorized engine on and off; return both outcomes."""
    outcomes = {}
    for vectorized in (True, False):
        simulator = GGPUSimulator(GGPUConfig(num_cus=num_cus), vectorized=vectorized)
        out = simulator.allocate_buffer(global_size)
        result = simulator.launch(
            kernel, NDRange(global_size, workgroup_size), {"out": out}
        )
        outcomes[vectorized] = (
            result.cycles,
            result.stats.instructions_issued,
            list(simulator.read_buffer(out, global_size)),
        )
    return outcomes


@pytest.mark.parametrize("num_cus", [1, 2, 8])
def test_vectorized_issue_matches_scalar_on_nested_divergence(num_cus):
    """Divergence masks force the batched engine onto its masked replay path."""
    outcomes = _launch_modes(_nested_divergence_kernel(), 256, 64, num_cus)
    assert outcomes[True] == outcomes[False]


@pytest.mark.parametrize("workgroup_size", [64, 256, 512])
def test_vectorized_issue_matches_scalar_across_barriers(workgroup_size):
    """Barriers park wavefronts mid-batch; both engines must agree exactly."""
    outcomes = _launch_modes(_barrier_kernel(rounds=2), 1024, workgroup_size, 2)
    assert outcomes[True] == outcomes[False]


@pytest.mark.parametrize("ports", [1, 4, 64])
def test_vectorized_issue_matches_scalar_under_port_contention(ports):
    """Cache-port serialization happens on the scalar path in both engines."""
    cycles = {}
    for vectorized in (True, False):
        simulator = GGPUSimulator(
            GGPUConfig(num_cus=1, cache=CacheConfig(ports=ports)),
            vectorized=vectorized,
        )
        buf = simulator.create_buffer(range(64 * 16))
        out = simulator.allocate_buffer(64)
        result = simulator.launch(
            _strided_double_load_kernel(), NDRange(64, 64), {"buf": buf, "out": out}
        )
        assert list(simulator.read_buffer(out, 64)) == [gid * 16 for gid in range(64)]
        cycles[vectorized] = result.cycles
    assert cycles[True] == cycles[False]


@pytest.mark.parametrize("name", ["div_int", "parallel_sel", "xcorr", "histogram"])
def test_vectorized_issue_matches_goldens_with_engine_off(name):
    """The pinned goldens hold with the batched engine disabled too."""
    size, cycles_by_cu, instructions = ALL_GOLDEN[name]
    for num_cus in (1, 8):
        result = _run(name, num_cus, size, vectorized=False)
        assert result.cycles == cycles_by_cu[num_cus]
        assert result.stats.instructions_issued == instructions


# --------------------------------------------------------------------- #
# Vectorized issue: property test over random compiled kernels
# --------------------------------------------------------------------- #
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    rounds=st.integers(min_value=1, max_value=3),
    c0=st.integers(min_value=0, max_value=8000),
    c1=st.integers(min_value=1, max_value=127),
    threshold=st.integers(min_value=0, max_value=1 << 15),
    op=st.sampled_from(["+", "^", "|"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_vectorized_issue_property_random_kernels(rounds, c0, c1, threshold, op, seed):
    """Random compiled kernels (divergence + barriers + loops): results,
    cycles, and the command queue's ``QueueStats`` must be bit-equal between
    the batched and the scalar issue engines."""
    source = f"""
    __kernel void fuzz_vec(__global int *a, __global int *out, int n) {{
        int gid = get_global_id(0);
        int lid = get_local_id(0);
        __local int tmp[64];
        int acc = {c0};
        for (int r = 0; r < {rounds}; r += 1) {{
            tmp[lid] = acc + a[gid] * (r + {c1});
            barrier(CLK_LOCAL_MEM_FENCE);
            acc = (acc {op} tmp[lid]);
            if (a[gid] > {threshold}) {{
                acc = acc + gid;
            }}
            barrier(CLK_LOCAL_MEM_FENCE);
        }}
        out[gid] = acc;
    }}
    """
    program = compile_source(source)
    kernel = program.to_ggpu_kernel()
    n = 128
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 16, size=n, dtype=np.int64)

    outcomes = {}
    for vectorized in (True, False):
        simulator = GGPUSimulator(
            GGPUConfig(num_cus=2), memory_bytes=4 * 1024 * 1024, vectorized=vectorized
        )
        queue = CommandQueue(simulator=simulator)
        a_addr = queue.create_buffer(a)
        out_addr = queue.allocate_buffer(n)
        queue.enqueue(kernel, NDRange(n, 64), {"a": a_addr, "out": out_addr, "n": n})
        values = queue.read_buffer(out_addr, n)
        outcomes[vectorized] = (list(values), asdict(queue.stats))
    assert outcomes[True] == outcomes[False]
    # QueueStats carries the launch cycle totals, so the tuple comparison
    # above pins cycles; make the intent explicit anyway.
    assert outcomes[True][1]["total_cycles"] == outcomes[False][1]["total_cycles"]


# --------------------------------------------------------------------- #
# Idle-CU refill
# --------------------------------------------------------------------- #
def test_idle_refill_spreads_workgroups_across_all_cus():
    """The drained-GPU refill path fills every CU round-robin, not just CU 0."""
    config = GGPUConfig(num_cus=4)
    simulator = GGPUSimulator(config)
    kernel = _store_only_kernel()
    simulator.rtm.write_descriptor(256 * 8, 256, [simulator.allocate_buffer(2048)])
    from repro.simt.decode import predecode_program

    decoded = predecode_program(kernel.program, simulator.timing, config.wavefront_size)
    for cu in simulator.compute_units:
        cu.bind(kernel.program, simulator.rtm, decoded=decoded)
    dispatcher = WorkgroupDispatcher(config, NDRange(256 * 8, 256))
    heap = []
    simulator._refill_idle_cus(dispatcher, 0.0, heap)
    residents = [cu.resident_wavefronts for cu in simulator.compute_units]
    # 8 workgroups of 4 wavefronts, capacity 2 workgroups per CU: dealt
    # round-robin so every CU ends up with both of its workgroups.
    assert residents == [8, 8, 8, 8]
    assert not dispatcher.has_pending()
    assert sorted(index for _, index in heap) == [0, 1, 2, 3]
