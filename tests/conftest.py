"""Shared fixtures for the test suite.

Simulation-based tests use small input sizes (the functional behaviour does
not depend on the size) so the whole suite stays fast; the full paper-sized
runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.arch.config import GGPUConfig
from repro.simt.gpu import GGPUSimulator
from repro.tech.technology import Technology, default_65nm


@pytest.fixture(scope="session")
def tech() -> Technology:
    """The default 65nm-like technology used throughout the paper."""
    return default_65nm()


@pytest.fixture
def single_cu_config() -> GGPUConfig:
    """A 1-CU architecture configuration."""
    return GGPUConfig(num_cus=1)


@pytest.fixture
def dual_cu_config() -> GGPUConfig:
    """A 2-CU architecture configuration."""
    return GGPUConfig(num_cus=2)


@pytest.fixture
def simulator(single_cu_config: GGPUConfig) -> GGPUSimulator:
    """A 1-CU simulator with a small global memory."""
    return GGPUSimulator(single_cu_config, memory_bytes=8 * 1024 * 1024)


@pytest.fixture
def dual_cu_simulator(dual_cu_config: GGPUConfig) -> GGPUSimulator:
    """A 2-CU simulator with a small global memory."""
    return GGPUSimulator(dual_cu_config, memory_bytes=8 * 1024 * 1024)
