"""SRAM memory-compiler model."""

import pytest

from repro.errors import TechnologyError
from repro.tech.sram import SramCompiler, SramMacroSpec, SramPort


@pytest.fixture
def compiler() -> SramCompiler:
    return SramCompiler()


def test_macro_spec_validation():
    with pytest.raises(TechnologyError):
        SramMacroSpec(0, 32)
    with pytest.raises(TechnologyError):
        SramMacroSpec(128, 0)
    spec = SramMacroSpec(2048, 32)
    assert spec.capacity_bits == 65536


def test_split_words_and_bits():
    spec = SramMacroSpec(2048, 32)
    assert spec.split_words() == SramMacroSpec(1024, 32)
    assert spec.split_bits() == SramMacroSpec(2048, 16)
    with pytest.raises(TechnologyError):
        SramMacroSpec(1, 32).split_words()


def test_compiler_range_matches_paper(compiler):
    # The paper quotes 16-65536 words and 2-144 bits.
    assert compiler.supports(SramMacroSpec(16, 2))
    assert compiler.supports(SramMacroSpec(65536, 144))
    assert not compiler.supports(SramMacroSpec(8, 32))
    assert not compiler.supports(SramMacroSpec(1024, 256))


def test_out_of_range_macro_rejected(compiler):
    with pytest.raises(TechnologyError):
        compiler.area_um2(SramMacroSpec(8, 32))
    with pytest.raises(TechnologyError):
        compiler.access_delay_ns(SramMacroSpec(131072, 32))


def test_larger_macros_are_slower(compiler):
    small = compiler.access_delay_ns(SramMacroSpec(512, 32))
    medium = compiler.access_delay_ns(SramMacroSpec(1024, 32))
    large = compiler.access_delay_ns(SramMacroSpec(2048, 32))
    wide = compiler.access_delay_ns(SramMacroSpec(2048, 64))
    assert small < medium < large < wide


def test_division_trades_area_for_speed(compiler):
    """Two MxN blocks are larger than one 2MxN block but each is faster."""
    whole = SramMacroSpec(2048, 32)
    half = whole.split_words()
    assert 2 * compiler.area_um2(half) > compiler.area_um2(whole)
    assert compiler.access_delay_ns(half) < compiler.access_delay_ns(whole)
    assert 2 * compiler.leakage_mw(half) > compiler.leakage_mw(whole)


def test_dual_port_costs_more_than_single(compiler):
    dual = SramMacroSpec(1024, 32, SramPort.DUAL)
    single = SramMacroSpec(1024, 32, SramPort.SINGLE)
    assert compiler.area_um2(dual) > compiler.area_um2(single)
    assert compiler.access_delay_ns(dual) > compiler.access_delay_ns(single)
    assert compiler.leakage_mw(dual) > compiler.leakage_mw(single)


def test_register_file_bank_calibration(compiler):
    """The 2048x32 dual-port bank anchors the 500 MHz result of the paper."""
    delay = compiler.access_delay_ns(SramMacroSpec(2048, 32))
    assert 1.3 < delay < 1.55


def test_dynamic_power_scales_with_frequency_and_activity(compiler):
    spec = SramMacroSpec(1024, 32)
    base = compiler.dynamic_mw(spec, 500.0, 1.0)
    assert compiler.dynamic_mw(spec, 1000.0, 1.0) == pytest.approx(2 * base)
    assert compiler.dynamic_mw(spec, 500.0, 0.5) == pytest.approx(base / 2)
    with pytest.raises(TechnologyError):
        compiler.dynamic_mw(spec, 500.0, 1.5)
    with pytest.raises(TechnologyError):
        compiler.dynamic_mw(spec, 0.0)


def test_footprint_matches_area(compiler):
    spec = SramMacroSpec(2048, 32)
    width, height = compiler.footprint_um(spec)
    assert width * height == pytest.approx(compiler.area_um2(spec))
    assert width == pytest.approx(2 * height)


def test_smallest_valid_split_prefers_words(compiler):
    assert compiler.smallest_valid_split(SramMacroSpec(2048, 32)) == SramMacroSpec(1024, 32)
    # At the minimum word count the compiler falls back to splitting bits.
    assert compiler.smallest_valid_split(SramMacroSpec(16, 32)) == SramMacroSpec(16, 16)
    with pytest.raises(TechnologyError):
        compiler.smallest_valid_split(SramMacroSpec(16, 2))
