"""Static timing analysis and the memory-division / pipeline transforms."""

import pytest

from repro.arch.config import GGPUConfig
from repro.errors import NetlistError, TimingError
from repro.rtl.generator import generate_ggpu_netlist
from repro.rtl.netlist import Netlist, Partition, MemoryGroup
from repro.rtl.timing import analyze_timing, max_frequency_mhz, path_segment_delays
from repro.rtl.transforms import insert_pipeline, split_memory_group, splittable_groups
from repro.tech.sram import SramMacroSpec


@pytest.fixture
def netlist() -> Netlist:
    return generate_ggpu_netlist(GGPUConfig(num_cus=1))


def test_unoptimized_design_closes_500mhz(netlist, tech):
    """The paper: 'the value found for the standard version is 500MHz'."""
    maximum = max_frequency_mhz(netlist, tech)
    assert 495.0 <= maximum <= 515.0
    assert analyze_timing(netlist, tech, 500.0).met
    assert not analyze_timing(netlist, tech, 590.0).met


def test_critical_path_is_a_memory_block(netlist, tech):
    """The paper: 'the critical path ... has its starting point at a memory block'."""
    report = analyze_timing(netlist, tech, 500.0)
    critical = report.critical_path
    assert critical.macro_delay_ns > 0
    assert "register_file" in critical.name
    assert critical.partition == "cu"


def test_violations_sorted_worst_first(netlist, tech):
    report = analyze_timing(netlist, tech, 667.0)
    violations = report.violations()
    assert violations
    slacks = [violation.slack_ns for violation in violations]
    assert slacks == sorted(slacks)
    assert report.wns_ns == slacks[0]
    assert "violations" in report.summary()


def test_memory_division_speeds_up_the_path(netlist, tech):
    path = netlist.timing_paths["cu0/register_file0__read"]
    before = max(path_segment_delays(path, netlist, tech))
    record = split_memory_group(netlist, "cu0/register_file0", tech)
    after = max(path_segment_delays(path, netlist, tech))
    group = netlist.memory_groups["cu0/register_file0"]
    assert after < before
    assert group.num_macros == 2
    assert group.macro.words == 1024
    assert group.mux_levels == 1
    assert record.kind == "memory_division"
    assert "2 x 1024x32" in record.detail


def test_pipeline_insertion_splits_logic_but_not_the_macro(netlist, tech):
    path = netlist.timing_paths["cu0/register_file0__read"]
    insert_pipeline(netlist, path.name, 1)
    segments = path_segment_delays(path, netlist, tech)
    assert len(segments) == 2
    # The macro access stays whole in the first segment.
    assert segments[0] > segments[1]
    assert netlist.pipeline_ff() == 32


def test_pure_logic_path_pipelines_evenly(netlist, tech):
    path = netlist.timing_paths["cu0/wf_scheduler_select"]
    single = path_segment_delays(path, netlist, tech)[0]
    insert_pipeline(netlist, path.name, 1)
    halves = path_segment_delays(path, netlist, tech)
    assert len(halves) == 2
    assert halves[0] == pytest.approx(single / 2)


def test_unpipelinable_path_rejected(netlist):
    with pytest.raises(NetlistError):
        insert_pipeline(netlist, "top/cu0_request", 1)
    with pytest.raises(NetlistError):
        insert_pipeline(netlist, "cu0/alu_bypass", 0)
    with pytest.raises(NetlistError):
        insert_pipeline(netlist, "missing/path", 1)
    with pytest.raises(NetlistError):
        split_memory_group(netlist, "missing/group", None)


def test_wire_delay_is_included_in_timing(netlist, tech):
    path = netlist.timing_paths["top/cu0_request"]
    baseline = max(path_segment_delays(path, netlist, tech))
    path.wire_delay_ns = 1.0
    assert max(path_segment_delays(path, netlist, tech)) == pytest.approx(baseline + 1.0)


def test_splittable_groups_excludes_minimum_geometry(tech):
    netlist = Netlist("tiny")
    netlist.add_memory_group(MemoryGroup("small", Partition.CU, "x", SramMacroSpec(16, 2)))
    netlist.add_memory_group(MemoryGroup("big", Partition.CU, "x", SramMacroSpec(1024, 32)))
    names = splittable_groups(netlist, tech)
    assert names == ["big"]


def test_empty_report_and_empty_netlist_errors(tech):
    empty = Netlist("empty")
    with pytest.raises(TimingError):
        analyze_timing(empty, tech, 500.0).critical_path
    with pytest.raises(TimingError):
        max_frequency_mhz(empty, tech)
