"""Property tests over NDRange geometry: ranks, shapes, and error paths.

Hypothesis draws launch geometries — rank 1 and rank 2, divisible and not —
and checks three things:

* :class:`NDRange` itself: flat totals are the shape products, bad geometry
  (rank mismatch, non-divisible extents, non-positive extents) raises
  ``KernelError`` with the offending dimension in the message;
* the per-dimension work-item ids a compiled CL kernel observes on the G-GPU
  match the row-major (dimension 0 fastest) reference on both issue engines;
* rank-mismatched ``get_*_id(dim)`` queries fail loudly on every backend:
  the SIMT engines (scalar and vectorized), the RISC-V code generator, and
  the dynamic race oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import run_oracle
from repro.arch.config import GGPUConfig
from repro.arch.isa import Opcode
from repro.arch.kernel import KernelArg, KernelBuilder, NDRange
from repro.cl import compile_source
from repro.cl.codegen_riscv import RiscvCodeGenerator
from repro.errors import CompilationError, KernelError, SimulationError
from repro.simt.gpu import GGPUSimulator

# Flat workgroup sizes must be wavefront multiples (64); these 2-D shapes
# cover tall, wide, square, and degenerate-axis factorizations.
WG_SHAPES_2D = [(8, 8), (16, 4), (4, 16), (64, 1), (1, 64), (32, 2), (16, 8)]

IDS2D_CL = """
__kernel void ids2d(__global int *g0, __global int *g1,
                    __global int *l0, __global int *l1,
                    __global int *w0, __global int *w1) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int flat = y * get_global_size(0) + x;
    g0[flat] = x;
    g1[flat] = y;
    l0[flat] = get_local_id(0);
    l1[flat] = get_local_id(1);
    w0[flat] = get_group_id(0);
    w1[flat] = get_group_id(1);
}
"""


# --------------------------------------------------------------------- #
# NDRange construction
# --------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(
    ws=st.sampled_from(WG_SHAPES_2D),
    nwg0=st.integers(min_value=1, max_value=5),
    nwg1=st.integers(min_value=1, max_value=5),
)
def test_rank2_ndrange_totals_are_shape_products(ws, nwg0, nwg1):
    gs = (ws[0] * nwg0, ws[1] * nwg1)
    ndrange = NDRange(gs, ws)
    assert ndrange.rank == 2
    assert ndrange.global_shape == gs
    assert ndrange.workgroup_shape == ws
    assert ndrange.global_size == gs[0] * gs[1]
    assert ndrange.total_items == ndrange.global_size
    assert ndrange.workgroup_size == ws[0] * ws[1]
    assert ndrange.groups_shape == (nwg0, nwg1)
    assert ndrange.num_workgroups == nwg0 * nwg1


@settings(max_examples=60, deadline=None)
@given(
    workgroup=st.integers(min_value=1, max_value=512),
    groups=st.integers(min_value=1, max_value=8),
)
def test_rank1_ndrange_matches_the_flat_form(workgroup, groups):
    ndrange = NDRange(workgroup * groups, workgroup)
    assert ndrange.rank == 1
    assert ndrange.global_shape == (workgroup * groups,)
    assert ndrange.total_items == workgroup * groups
    assert ndrange.num_workgroups == groups


@settings(max_examples=60, deadline=None)
@given(
    ws=st.sampled_from(WG_SHAPES_2D),
    nwg0=st.integers(min_value=1, max_value=4),
    nwg1=st.integers(min_value=1, max_value=4),
    off=st.integers(min_value=1, max_value=7),
    dim=st.integers(min_value=0, max_value=1),
)
def test_non_divisible_extents_are_rejected_with_the_dimension(
    ws, nwg0, nwg1, off, dim
):
    gs = [ws[0] * nwg0, ws[1] * nwg1]
    if off % ws[dim] == 0:
        off += 1  # keep the extent genuinely non-divisible
    gs[dim] += off % ws[dim] if ws[dim] > 1 else 0
    if gs[dim] % ws[dim] == 0:
        return  # degenerate draw (workgroup extent 1 divides everything)
    with pytest.raises(KernelError, match=f"dimension {dim}"):
        NDRange(tuple(gs), ws)


def test_rank_mismatch_and_nonpositive_extents_are_rejected():
    with pytest.raises(KernelError, match="same rank"):
        NDRange((128, 4), 64)
    with pytest.raises(KernelError, match="same rank"):
        NDRange(128, (8, 8))
    with pytest.raises(KernelError, match="positive"):
        NDRange((128, 0), (8, 8))
    with pytest.raises(KernelError, match="rank"):
        NDRange((8, 8, 8), (2, 2, 2))


# --------------------------------------------------------------------- #
# Per-dimension ids on the G-GPU, fuzzed over geometry and both engines
# --------------------------------------------------------------------- #
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ws=st.sampled_from(WG_SHAPES_2D),
    nwg0=st.integers(min_value=1, max_value=3),
    nwg1=st.integers(min_value=1, max_value=3),
    num_cus=st.sampled_from([1, 2, 4]),
    vectorized=st.booleans(),
)
def test_rank2_ids_match_row_major_reference(ws, nwg0, nwg1, num_cus, vectorized):
    gs = (ws[0] * nwg0, ws[1] * nwg1)
    total = gs[0] * gs[1]
    kernel = compile_source(IDS2D_CL).to_ggpu_kernel()
    simulator = GGPUSimulator(
        GGPUConfig(num_cus=num_cus),
        memory_bytes=8 * 1024 * 1024,
        vectorized=vectorized,
    )
    buffers = {name: simulator.allocate_buffer(total) for name in
               ("g0", "g1", "l0", "l1", "w0", "w1")}
    simulator.launch(kernel, NDRange(gs, ws), dict(buffers))
    xs, ys = np.meshgrid(np.arange(gs[0]), np.arange(gs[1]))
    expected = {
        "g0": xs,
        "g1": ys,
        "l0": xs % ws[0],
        "l1": ys % ws[1],
        "w0": xs // ws[0],
        "w1": ys // ws[1],
    }
    for name, want in expected.items():
        got = np.asarray(simulator.read_buffer(buffers[name], total)).reshape(
            gs[1], gs[0]
        )
        assert np.array_equal(got, want), (
            f"{name} wrong for global {gs} workgroup {ws} on {num_cus} CU(s) "
            f"(vectorized={vectorized})"
        )


# --------------------------------------------------------------------- #
# Rank-mismatched dimension queries fail loudly on every backend
# --------------------------------------------------------------------- #
def _dim1_gpu_kernel():
    builder = KernelBuilder("wants_dim1", args=(KernelArg("out"),))
    gid1 = builder.alloc("gid1")
    out = builder.alloc("out")
    addr = builder.alloc("addr")
    builder.global_id(gid1, dim=1)
    builder.load_arg(out, "out")
    builder.address_of_element(addr, out, gid1)
    builder.emit(Opcode.SW, rs=addr, rt=gid1, imm=0)
    builder.ret()
    return builder.build()


@pytest.mark.parametrize("vectorized", [True, False])
def test_dim1_query_on_rank1_launch_raises_in_the_simt_engines(vectorized):
    kernel = _dim1_gpu_kernel()
    simulator = GGPUSimulator(GGPUConfig(num_cus=1), vectorized=vectorized)
    out = simulator.allocate_buffer(64)
    with pytest.raises(SimulationError, match="dimension 1 of a rank-1"):
        simulator.launch(kernel, NDRange(64, 64), {"out": out})


def test_dim1_query_on_rank1_launch_raises_in_riscv_codegen():
    program = compile_source(IDS2D_CL)
    with pytest.raises(CompilationError, match="dimension 1 of a rank-1"):
        RiscvCodeGenerator(
            program.declaration(),
            {name: 0 for name in ("g0", "g1", "l0", "l1", "w0", "w1")},
            global_size=128,
            workgroup_size=64,
        ).generate()


def test_dim1_query_on_rank1_launch_raises_in_the_oracle():
    program = compile_source(IDS2D_CL)
    buffers = {name: [0] * 128 for name in ("g0", "g1", "l0", "l1", "w0", "w1")}
    with pytest.raises(SimulationError, match="dimension 1 of a rank-1"):
        run_oracle(
            program.declaration(),
            global_size=128,
            workgroup_size=64,
            buffers=buffers,
            scalars={},
        )


def test_riscv_codegen_rejects_bad_rank2_geometry():
    program = compile_source(IDS2D_CL)
    params = {name: 0 for name in ("g0", "g1", "l0", "l1", "w0", "w1")}
    with pytest.raises(CompilationError, match="rank"):
        RiscvCodeGenerator(program.declaration(), params, (128, 2, 2), (64, 1, 1))
    with pytest.raises(CompilationError, match="divisible"):
        RiscvCodeGenerator(program.declaration(), params, (100, 4), (64, 4))
