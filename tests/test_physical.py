"""Floorplanning, macro placement, routing estimation, and layout."""

import json

import pytest

from repro.arch.config import GGPUConfig
from repro.errors import PhysicalDesignError
from repro.physical.floorplan import Floorplanner, Rect
from repro.physical.layout import PhysicalSynthesis
from repro.physical.placement import place_macros
from repro.physical.report import SIGNAL_LAYERS, format_table2, table2_matrix
from repro.physical.routing import RoutingEstimator
from repro.planner.optimizer import TimingOptimizer
from repro.rtl.generator import generate_ggpu_netlist
from repro.synth.logic import LogicSynthesis


def _synthesized(tech, num_cus=1, frequency=500.0, optimize=False):
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=num_cus), name=f"{num_cus}CU")
    if optimize:
        TimingOptimizer(tech).close_timing(netlist, frequency)
    synthesis = LogicSynthesis(tech).run(netlist, frequency)
    return netlist, synthesis


def test_rect_geometry():
    rect = Rect(0, 0, 100, 50)
    assert rect.area == 5000
    assert rect.center == (50, 25)
    assert rect.manhattan_distance_to(Rect(100, 100, 100, 50)) == 100 + 100
    with pytest.raises(PhysicalDesignError):
        Rect(0, 0, 0, 10)


def test_floorplan_die_size_matches_fig3(tech):
    """Fig. 3: the 1CU@500MHz die is roughly 2.7 x 2.5 mm."""
    _, synthesis = _synthesized(tech, 1, 500.0)
    floorplan = Floorplanner().plan(synthesis, 500.0)
    assert floorplan.die_width_um == pytest.approx(2700, rel=0.10)
    assert floorplan.die_height_um == pytest.approx(2500, rel=0.10)
    assert floorplan.die_area_mm2 > synthesis.total_area_mm2  # whitespace exists


def test_floorplan_contains_all_partitions(tech):
    _, synthesis = _synthesized(tech, 4, 500.0)
    floorplan = Floorplanner().plan(synthesis, 500.0)
    assert len(floorplan.cu_placements) == 4
    assert floorplan.memory_controller() is not None
    assert floorplan.placement("top") is not None
    with pytest.raises(PhysicalDesignError):
        floorplan.placement("cu99")
    assert floorplan.max_cu_distance_um() > 0
    assert "4 CU partition" in floorplan.summary()


def test_higher_frequency_needs_more_whitespace(tech):
    _, synthesis = _synthesized(tech, 1, 500.0)
    planner = Floorplanner()
    assert planner.whitespace_factor(667.0) > planner.whitespace_factor(500.0)
    small = planner.plan(synthesis, 500.0)
    large = planner.plan(synthesis, 667.0)
    assert large.die_area_mm2 > small.die_area_mm2


def test_eight_cu_floorplan_has_far_peripheral_cus(tech):
    _, small_synth = _synthesized(tech, 1, 500.0)
    _, big_synth = _synthesized(tech, 8, 500.0)
    planner = Floorplanner()
    single = planner.plan(small_synth, 500.0)
    eight = planner.plan(big_synth, 500.0)
    assert eight.max_cu_distance_um() > 5 * single.max_cu_distance_um()


def test_macro_placement_places_every_macro(tech):
    netlist, synthesis = _synthesized(tech, 1, 500.0)
    floorplan = Floorplanner().plan(synthesis, 500.0)
    macros = place_macros(netlist, floorplan, tech)
    assert len(macros) == netlist.total_macros()
    assert all(macro.rect.area > 0 for macro in macros)
    assert not any(macro.divided for macro in macros)  # unoptimized design


def test_divided_macros_are_tagged(tech):
    netlist, synthesis = _synthesized(tech, 1, 667.0, optimize=True)
    floorplan = Floorplanner().plan(synthesis, 667.0)
    macros = place_macros(netlist, floorplan, tech)
    assert any(macro.divided for macro in macros)


def test_routing_estimate_layers_and_growth(tech):
    netlist, synthesis = _synthesized(tech, 1, 500.0)
    floorplan = Floorplanner().plan(synthesis, 500.0)
    estimator = RoutingEstimator()
    estimate = estimator.estimate(netlist, synthesis, floorplan, tech, 500.0)
    assert set(estimate.per_layer_um) == set(SIGNAL_LAYERS)
    assert estimate.layer("M3") > estimate.layer("M7")
    netlist8, synthesis8 = _synthesized(tech, 8, 500.0)
    floorplan8 = Floorplanner().plan(synthesis8, 500.0)
    estimate8 = estimator.estimate(netlist8, synthesis8, floorplan8, tech, 500.0)
    assert estimate8.total_um > 5 * estimate.total_um
    assert estimator.effort_factor(667.0) > estimator.effort_factor(500.0) == 1.0


def test_wire_delay_annotation_targets_crossing_paths(tech):
    netlist, synthesis = _synthesized(tech, 8, 500.0)
    floorplan = Floorplanner().plan(synthesis, 500.0)
    delays = RoutingEstimator().annotate_wire_delays(netlist, floorplan, tech)
    assert len(delays) == 16  # request + response per CU
    assert all(delay > 0 for delay in delays.values())
    assert netlist.timing_paths["top/cu7_request"].wire_delay_ns == delays["top/cu7_request"]


def test_physical_synthesis_8cu_limited_to_600mhz(tech):
    """The paper's key physical result: 8CU@667MHz only closes ~600 MHz."""
    netlist, synthesis = _synthesized(tech, 8, 667.0, optimize=True)
    layout = PhysicalSynthesis(tech).run(netlist, synthesis, 667.0)
    assert not layout.timing_met
    assert 560.0 <= layout.achieved_frequency_mhz <= 640.0


def test_physical_synthesis_1cu_meets_667mhz(tech):
    netlist, synthesis = _synthesized(tech, 1, 667.0, optimize=True)
    layout = PhysicalSynthesis(tech).run(netlist, synthesis, 667.0)
    assert layout.timing_met
    assert layout.num_divided_macros > 0
    assert "meets" in layout.summary()


def test_layout_export_json_and_ascii(tech, tmp_path):
    netlist, synthesis = _synthesized(tech, 1, 500.0)
    layout = PhysicalSynthesis(tech).run(netlist, synthesis, 500.0)
    path = tmp_path / "layout.json"
    layout.write_json(str(path))
    data = json.loads(path.read_text())
    assert data["design"] == "1CU"
    assert len(data["macros"]) == netlist.total_macros()
    sketch = layout.ascii_floorplan()
    assert "M" in sketch and "C" in sketch
    with pytest.raises(PhysicalDesignError):
        layout.ascii_floorplan(columns=2, rows=2)


def test_table2_report_formatting(tech):
    netlist, synthesis = _synthesized(tech, 1, 500.0)
    layout = PhysicalSynthesis(tech).run(netlist, synthesis, 500.0)
    text = format_table2([layout.routing])
    assert "M2" in text and "total" in text
    matrix = table2_matrix([layout.routing])
    assert set(matrix) == set(SIGNAL_LAYERS)


def test_floorplanner_validation():
    with pytest.raises(PhysicalDesignError):
        Floorplanner(cu_density=0.0)
