"""Netlist IR and the G-GPU netlist generator."""

import pytest

from repro.arch.config import GGPUConfig
from repro.errors import NetlistError
from repro.rtl.generator import generate_ggpu_netlist, riscv_reference_netlist
from repro.rtl.netlist import LogicBlock, MemoryGroup, Netlist, Partition, TimingPath
from repro.tech.sram import SramMacroSpec


def test_netlist_uniqueness_checks():
    netlist = Netlist("unit")
    group = netlist.add_memory_group(
        MemoryGroup("m0", Partition.CU, "rf", SramMacroSpec(256, 32))
    )
    with pytest.raises(NetlistError):
        netlist.add_memory_group(group)
    block = netlist.add_logic_block(LogicBlock("b0", Partition.CU, 10, 20))
    with pytest.raises(NetlistError):
        netlist.add_logic_block(block)
    netlist.add_timing_path(TimingPath("p0", Partition.CU, 4, memory_group="m0"))
    with pytest.raises(NetlistError):
        netlist.add_timing_path(TimingPath("p0", Partition.CU, 4))
    with pytest.raises(NetlistError):
        netlist.add_timing_path(TimingPath("p1", Partition.CU, 4, memory_group="ghost"))


def test_structure_validation():
    with pytest.raises(NetlistError):
        MemoryGroup("m", Partition.CU, "rf", SramMacroSpec(64, 32), num_macros=0)
    with pytest.raises(NetlistError):
        LogicBlock("b", Partition.CU, -1, 0)
    with pytest.raises(NetlistError):
        TimingPath("p", Partition.CU, -1)
    with pytest.raises(NetlistError):
        TimingPath("p", Partition.CU, 4, width_bits=0)


def test_generator_macro_counts_match_table1():
    """Table I: 51/93/177/345 macros for 1/2/4/8 CUs before optimization."""
    expected = {1: 51, 2: 93, 4: 177, 8: 345}
    for num_cus, macros in expected.items():
        netlist = generate_ggpu_netlist(GGPUConfig(num_cus=num_cus))
        assert netlist.total_macros() == macros
        assert netlist.num_cus == num_cus


def test_generator_ff_and_gate_scale_with_paper():
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    # Paper: 119778 FFs and 127826 combinational instances for 1 CU @ 500 MHz.
    assert netlist.total_ff() == pytest.approx(119778, rel=0.05)
    assert netlist.total_gates() == pytest.approx(127826, rel=0.10)


def test_generator_partition_breakdown():
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=2))
    cu_macros = netlist.total_macros(Partition.CU)
    shared = netlist.total_macros(Partition.MEMORY_CONTROLLER) + netlist.total_macros(Partition.TOP)
    assert cu_macros == 2 * 42
    assert shared == 9
    assert len(netlist.memory_group_list(Partition.CU)) == 2 * 42


def test_generator_has_cross_partition_paths_per_cu():
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=4))
    crossing = [path for path in netlist.timing_paths.values() if path.crosses_partitions]
    assert len(crossing) == 8  # request + response per CU
    assert all(not path.pipelinable for path in crossing)


def test_clone_is_deep():
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    clone = netlist.clone()
    clone.memory_groups["cu0/register_file0"].num_macros = 99
    clone.timing_paths["cu0/alu_bypass"].pipeline_stages = 3
    assert netlist.memory_groups["cu0/register_file0"].num_macros == 1
    assert netlist.timing_paths["cu0/alu_bypass"].pipeline_stages == 0
    assert clone.total_macros() != netlist.total_macros()


def test_pipeline_ff_and_mux_gates_accounting():
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    assert netlist.pipeline_ff() == 0
    assert netlist.mux_gates() == 0
    netlist.timing_paths["cu0/alu_bypass"].pipeline_stages = 2
    netlist.memory_groups["cu0/register_file0"].mux_levels = 1
    assert netlist.pipeline_ff() == 2 * 32
    assert netlist.mux_gates() == 32 + 4
    assert netlist.total_ff() == netlist.total_ff(Partition.CU) + netlist.total_ff(
        Partition.MEMORY_CONTROLLER
    ) + netlist.total_ff(Partition.TOP)


def test_paths_reading_and_summary():
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=1))
    readers = netlist.paths_reading("cu0/register_file3")
    assert len(readers) == 1
    assert "51 macros" in netlist.summary()


def test_riscv_reference_netlist_is_small():
    riscv = riscv_reference_netlist()
    assert riscv.total_macros() == 2
    assert riscv.total_ff() < 10_000
    assert riscv.num_cus == 0
