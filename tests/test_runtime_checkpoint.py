"""Tests for crash-safe artifact writes and resumable-sweep journals (PR 7).

Covers :mod:`repro.runtime.checkpoint` directly — atomic writes, cell keys,
journal round-trips, meta validation, corruption handling — and then the
end-to-end resume contract on a real sweep: a journaled
:func:`repro.eval.benchmarks.run_table3` interrupted after some cells
recomputes only the missing ones and reproduces the uninterrupted table
bit-exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.eval.benchmarks import run_table3
from repro.runtime.checkpoint import (
    JOURNAL_FORMAT,
    SweepJournal,
    atomic_write_json,
    atomic_write_text,
    cell_key,
    open_journal,
)

KERNELS = ("saxpy", "reduce_sum")


# --------------------------------------------------------------------------- #
# Atomic writes
# --------------------------------------------------------------------------- #
def test_atomic_write_text_creates_parents_and_leaves_no_temps(tmp_path):
    target = tmp_path / "deep" / "nested" / "out.txt"
    atomic_write_text(target, "hello\n")
    assert target.read_text(encoding="utf-8") == "hello\n"
    # No stray temp files anywhere near the destination.
    assert sorted(p.name for p in target.parent.iterdir()) == ["out.txt"]


def test_atomic_write_text_replaces_existing_content(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "old")
    atomic_write_text(target, "new")
    assert target.read_text(encoding="utf-8") == "new"
    assert sorted(p.name for p in tmp_path.iterdir()) == ["out.txt"]


def test_atomic_write_json_round_trips(tmp_path):
    target = tmp_path / "data.json"
    payload = {"b": [1, 2, 3], "a": {"nested": True}}
    atomic_write_json(target, payload)
    assert json.loads(target.read_text(encoding="utf-8")) == payload
    # Stable serialization: keys sorted, trailing newline.
    text = target.read_text(encoding="utf-8")
    assert text.index('"a"') < text.index('"b"')
    assert text.endswith("\n")


# --------------------------------------------------------------------------- #
# Cell keys
# --------------------------------------------------------------------------- #
def test_cell_key_is_stable_and_order_insensitive():
    assert cell_key(kernel="saxpy", num_cus=4) == cell_key(num_cus=4, kernel="saxpy")


def test_cell_key_is_sensitive_to_every_field():
    base = cell_key(kernel="saxpy", num_cus=4, seed=0)
    assert cell_key(kernel="dot", num_cus=4, seed=0) != base
    assert cell_key(kernel="saxpy", num_cus=8, seed=0) != base
    assert cell_key(kernel="saxpy", num_cus=4, seed=1) != base
    # Types matter: the int 4 and the string "4" are different cells.
    assert cell_key(kernel="saxpy", num_cus="4", seed=0) != base


# --------------------------------------------------------------------------- #
# SweepJournal
# --------------------------------------------------------------------------- #
def test_journal_records_and_reloads(tmp_path):
    path = tmp_path / "journal.json"
    meta = {"sweep": "unit", "scale": 0.5}
    journal = SweepJournal(path, meta=meta)
    key = cell_key(kernel="saxpy", num_cus=4)
    assert journal.get(key) is None
    assert journal.misses == 1
    journal.record(key, {"cycles": 123.0})

    reloaded = SweepJournal(path, meta=meta)
    assert len(reloaded) == 1
    assert key in reloaded
    assert reloaded.resumed is True
    assert reloaded.get(key) == {"cycles": 123.0}
    assert reloaded.hits == 1


def test_journal_peek_does_not_count(tmp_path):
    journal = SweepJournal(tmp_path / "journal.json")
    key = cell_key(cell=1)
    assert journal.peek(key) is None
    journal.record(key, {"v": 1})
    assert journal.peek(key) == {"v": 1}
    assert journal.hits == 0 and journal.misses == 0


def test_journal_flushes_each_record_atomically(tmp_path):
    # Every record() persists immediately — a kill after any cell loses at
    # most the in-flight cell, never the journal file itself.
    path = tmp_path / "journal.json"
    journal = SweepJournal(path)
    journal.record(cell_key(cell=1), {"v": 1})
    on_disk = json.loads(path.read_text(encoding="utf-8"))
    assert on_disk["format"] == JOURNAL_FORMAT
    assert len(on_disk["cells"]) == 1
    journal.record(cell_key(cell=2), {"v": 2})
    on_disk = json.loads(path.read_text(encoding="utf-8"))
    assert len(on_disk["cells"]) == 2
    assert sorted(p.name for p in tmp_path.iterdir()) == ["journal.json"]


def test_journal_ignores_identical_rerecord_but_rejects_conflicts(tmp_path):
    journal = SweepJournal(tmp_path / "journal.json")
    key = cell_key(cell=1)
    journal.record(key, {"v": 1})
    journal.record(key, {"v": 1})  # idempotent: fine
    with pytest.raises(ConfigurationError):
        journal.record(key, {"v": 2})  # same key, different payload: never


def test_journal_discards_on_meta_mismatch(tmp_path):
    path = tmp_path / "journal.json"
    stale = SweepJournal(path, meta={"sweep": "unit", "scale": 0.5})
    stale.record(cell_key(cell=1), {"v": 1})
    # Different sweep configuration ⇒ the stale cells must not be reused.
    fresh = SweepJournal(path, meta={"sweep": "unit", "scale": 1.0})
    assert len(fresh) == 0
    assert fresh.resumed is False


def test_journal_discards_corrupt_file(tmp_path):
    path = tmp_path / "journal.json"
    path.write_text("{ this is not json", encoding="utf-8")
    journal = SweepJournal(path)
    assert len(journal) == 0
    # And it can still record over the corpse.
    journal.record(cell_key(cell=1), {"v": 1})
    assert json.loads(path.read_text(encoding="utf-8"))["format"] == JOURNAL_FORMAT


def test_journal_discards_wrong_format(tmp_path):
    path = tmp_path / "journal.json"
    path.write_text(
        json.dumps({"format": "something-else-v9", "meta": {}, "cells": {"k": 1}}),
        encoding="utf-8",
    )
    journal = SweepJournal(path)
    assert len(journal) == 0


def test_open_journal_normalizes_inputs(tmp_path):
    assert open_journal(None, meta={}) is None
    path = tmp_path / "journal.json"
    from_path = open_journal(path, meta={"sweep": "unit"})
    assert isinstance(from_path, SweepJournal)
    from_str = open_journal(str(path), meta={"sweep": "unit"})
    assert isinstance(from_str, SweepJournal)
    # An existing instance passes through untouched.
    assert open_journal(from_path, meta={"sweep": "unit"}) is from_path


def test_open_journal_rejects_conflicting_meta_on_instance(tmp_path):
    journal = SweepJournal(tmp_path / "journal.json", meta={"sweep": "unit"})
    with pytest.raises(ConfigurationError):
        open_journal(journal, meta={"sweep": "other"})


# --------------------------------------------------------------------------- #
# End-to-end resume on a real sweep
# --------------------------------------------------------------------------- #
def test_table3_resumes_only_missing_cells(tmp_path):
    path = tmp_path / "table3.json"
    kwargs = {"kernels": KERNELS, "cu_counts": (1,), "scale": 0.05, "check": False}

    reference = run_table3(**kwargs)

    # First journaled run computes (and records) everything: the two RISC-V
    # cells plus the two 1-CU G-GPU cells.
    journaled = run_table3(journal=path, **kwargs)
    on_disk = json.loads(path.read_text(encoding="utf-8"))
    assert len(on_disk["cells"]) == 2 * len(KERNELS)

    # Simulate a crash that lost one cell: drop it from the journal file.
    dropped_key, dropped_payload = sorted(on_disk["cells"].items())[0]
    del on_disk["cells"][dropped_key]
    atomic_write_json(path, on_disk)

    # The resumed run computes *only* the missing cell.
    journal = open_journal(path, meta=on_disk["meta"])
    assert journal.resumed is True
    assert len(journal) == 2 * len(KERNELS) - 1
    resumed = run_table3(journal=journal, **kwargs)
    assert journal.hits == 2 * len(KERNELS) - 1
    assert journal.misses == 1
    assert journal.hits + journal.misses == 2 * len(KERNELS)

    # The recomputed cell round-trips to the identical journal payload, and
    # all three tables agree bit-exactly.
    recomputed = json.loads(path.read_text(encoding="utf-8"))["cells"][dropped_key]
    assert recomputed == dropped_payload
    for kernel in KERNELS:
        assert resumed.rows[kernel].riscv == reference.rows[kernel].riscv
        assert resumed.rows[kernel].riscv == journaled.rows[kernel].riscv
        assert resumed.rows[kernel].gpu[1] == reference.rows[kernel].gpu[1]
        assert resumed.rows[kernel].gpu[1] == journaled.rows[kernel].gpu[1]


def test_table3_journal_rejects_mismatched_sweep_config(tmp_path):
    path = tmp_path / "table3.json"
    run_table3(kernels=KERNELS, cu_counts=(1,), scale=0.05, check=False, journal=path)
    before = json.loads(path.read_text(encoding="utf-8"))
    assert before["meta"]["scale"] == 0.05
    # A different scale is a different sweep: the stale journal is discarded
    # and restarted, never merged with (some cell keys can legitimately
    # coincide when the scaled input sizes round to the same values, but
    # the journal must be rebuilt under the new meta from scratch).
    run_table3(kernels=KERNELS, cu_counts=(1,), scale=0.04, check=False, journal=path)
    after = json.loads(path.read_text(encoding="utf-8"))
    assert after["meta"]["scale"] == 0.04
    assert len(after["cells"]) == 2 * len(KERNELS)
    # At least one key differs (saxpy's input size changes with the scale),
    # so a merge would have left more than one sweep's worth of cells.
    assert set(after["cells"]) != set(before["cells"])
