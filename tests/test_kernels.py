"""The benchmark kernel suite (paper + extended): registry, correctness on both targets."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.kernels import all_kernel_names, get_kernel_spec, run_workload
from repro.kernels.library import pick_workgroup_size
from repro.riscv.programs import all_riscv_program_names, get_riscv_program_spec
from repro.simt.gpu import GGPUSimulator
from repro.arch.config import GGPUConfig

PAPER_KERNELS = ["mat_mul", "copy", "vec_mul", "fir", "div_int", "xcorr", "parallel_sel"]
EXTENDED_KERNELS = [
    "saxpy",
    "dot",
    "reduce_sum",
    "inclusive_scan",
    "histogram",
    "transpose",
]
DENSE_KERNELS = ["matmul2d", "conv2d", "bitonic_sort"]
ALL_KERNELS = PAPER_KERNELS + EXTENDED_KERNELS + DENSE_KERNELS
SMALL_SIZE = 128
SEED = 7


def test_registry_contains_the_full_suite():
    assert all_kernel_names() == ALL_KERNELS
    assert all_riscv_program_names() == ALL_KERNELS
    with pytest.raises(KernelError):
        get_kernel_spec("nonexistent")
    with pytest.raises(KernelError):
        get_riscv_program_spec("nonexistent")


def test_paper_input_sizes_match_table3():
    expected = {
        "mat_mul": (128, 2048),
        "copy": (512, 32768),
        "vec_mul": (1024, 65536),
        "fir": (128, 4096),
        "div_int": (512, 4096),
        "xcorr": (256, 4096),
        "parallel_sel": (128, 2048),
    }
    for name, (riscv_size, gpu_size) in expected.items():
        spec = get_kernel_spec(name)
        assert spec.paper_riscv_size == riscv_size
        assert spec.paper_gpu_size == gpu_size


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_gpu_kernel_matches_reference(name):
    spec = get_kernel_spec(name)
    simulator = GGPUSimulator(GGPUConfig(num_cus=2), memory_bytes=16 * 1024 * 1024)
    result, outputs = run_workload(simulator, spec.build(), spec.workload(SMALL_SIZE, SEED))
    assert result.cycles > 0
    assert outputs  # run_workload already verified against the numpy reference


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_riscv_program_matches_reference(name):
    spec = get_riscv_program_spec(name)
    case = spec.build_case(SMALL_SIZE, SEED)
    stats, outputs = case.run()
    assert stats.cycles > 0
    assert outputs


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_gpu_and_riscv_compute_identical_results(name):
    """Both targets consume the same generated workload and must agree."""
    gpu_spec = get_kernel_spec(name)
    workload = gpu_spec.workload(SMALL_SIZE, SEED)
    simulator = GGPUSimulator(GGPUConfig(num_cus=1), memory_bytes=16 * 1024 * 1024)
    _, gpu_outputs = run_workload(simulator, gpu_spec.build(), workload)
    riscv_case = get_riscv_program_spec(name).build_case(SMALL_SIZE, SEED)
    _, riscv_outputs = riscv_case.run()
    for buffer_name, gpu_values in gpu_outputs.items():
        assert np.array_equal(gpu_values, riscv_outputs[buffer_name])


def test_workload_checking_detects_corruption(simulator):
    spec = get_kernel_spec("copy")
    workload = spec.workload(SMALL_SIZE, SEED)
    workload.expected["dst"] = workload.expected["dst"] + 1  # corrupt the reference
    with pytest.raises(KernelError):
        run_workload(simulator, spec.build(), workload)


def test_mat_mul_requires_multiple_of_inner_dim():
    with pytest.raises(KernelError):
        get_kernel_spec("mat_mul").workload(100, SEED)


def test_div_int_is_divergent_and_parallel_sel_scatters(simulator):
    div_spec = get_kernel_spec("div_int")
    result, _ = run_workload(simulator, div_spec.build(), div_spec.workload(SMALL_SIZE, SEED))
    assert result.stats.simd_efficiency < 0.9  # predication wastes lanes
    sel_spec = get_kernel_spec("parallel_sel")
    workload = sel_spec.workload(SMALL_SIZE, SEED)
    assert sorted(workload.buffers["a"]) == list(workload.expected["out"])


def test_pick_workgroup_size():
    assert pick_workgroup_size(2048) == 256
    assert pick_workgroup_size(64) == 64
    assert pick_workgroup_size(320, preferred=256) == 64
    with pytest.raises(KernelError):
        pick_workgroup_size(100)


def test_kernel_programs_fit_the_cram():
    for name in ALL_KERNELS:
        program = get_kernel_spec(name).build().program
        assert len(program) <= 2048
        assert program.instructions[-1].opcode.mnemonic == "ret"


def test_default_workload_uses_paper_size():
    spec = get_kernel_spec("fir")
    workload = spec.default_workload(seed=SEED)
    assert workload.ndrange.global_size == spec.paper_gpu_size
