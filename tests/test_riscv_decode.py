"""Pre-decoded RISC-V ISS: equivalence with the seed interpreter.

The decoded path must be bit-exact versus the interpreted path on every
observable: cycle count, full :class:`CpuStats` (including the mnemonic
histogram), architectural registers, the data-memory image, the final PC and
halt flag -- and, when a program faults, the error and the partial state at
the fault.  The property test drives randomized RV32IM programs (random ALU
soup, memory traffic, branches and jumps with arbitrary targets, randomized
cycle models); the golden test pins the kcycle counts of the seven Table III
programs on both paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.riscv.programs  # noqa: F401  (registers the benchmark programs)
from repro.errors import SimulationError
from repro.riscv.assembler import RvAssembler, RvProgram, T0, T1, ZERO
from repro.riscv.cpu import CpuCycleModel, RiscvCpu
from repro.riscv.decode import predecode_riscv_program
from repro.riscv.isa import RvFormat, RvInstruction, RvOpcode
from repro.riscv.memory import RvMemory
from repro.riscv.programs import all_riscv_program_names, get_riscv_program_spec

MEMORY_BYTES = 2048
MEMORY_WORDS = MEMORY_BYTES // 4

REG = st.integers(min_value=0, max_value=31)
WORD = st.integers(min_value=0, max_value=0xFFFFFFFF)
IMM12 = st.integers(min_value=-2048, max_value=2047)
SHAMT = st.integers(min_value=0, max_value=31)
IMM20 = st.integers(min_value=0, max_value=(1 << 20) - 1)

_R_OPS = [op for op in RvOpcode if op.info.fmt is RvFormat.R]
_I_ALU_OPS = [
    RvOpcode.ADDI,
    RvOpcode.SLTI,
    RvOpcode.SLTIU,
    RvOpcode.XORI,
    RvOpcode.ORI,
    RvOpcode.ANDI,
]
_SHIFT_OPS = [RvOpcode.SLLI, RvOpcode.SRLI, RvOpcode.SRAI]
_BRANCH_OPS = [op for op in RvOpcode if op.info.fmt is RvFormat.B]

# Aligned in-memory word offsets reachable from x0 (rs1 = 0 keeps every
# generated access inside the data memory, so runs only fault on control
# flow -- which the property also covers via arbitrary branch targets).
MEM_OFFSET = st.integers(min_value=0, max_value=MEMORY_WORDS - 1).map(lambda w: w * 4)


@st.composite
def _instruction(draw) -> RvInstruction:
    choice = draw(st.integers(min_value=0, max_value=7))
    if choice == 0:
        return RvInstruction(
            draw(st.sampled_from(_R_OPS)), rd=draw(REG), rs1=draw(REG), rs2=draw(REG)
        )
    if choice == 1:
        return RvInstruction(
            draw(st.sampled_from(_I_ALU_OPS)), rd=draw(REG), rs1=draw(REG), imm=draw(IMM12)
        )
    if choice == 2:
        return RvInstruction(
            draw(st.sampled_from(_SHIFT_OPS)), rd=draw(REG), rs1=draw(REG), imm=draw(SHAMT)
        )
    if choice == 3:
        return RvInstruction(RvOpcode.LW, rd=draw(REG), rs1=ZERO, imm=draw(MEM_OFFSET))
    if choice == 4:
        return RvInstruction(RvOpcode.SW, rs1=ZERO, rs2=draw(REG), imm=draw(MEM_OFFSET))
    if choice == 5:
        # Branch with an arbitrary (possibly out-of-program) even target.
        return RvInstruction(
            draw(st.sampled_from(_BRANCH_OPS)),
            rs1=draw(REG),
            rs2=draw(REG),
            imm=draw(st.integers(min_value=-16, max_value=16).map(lambda k: k * 4)),
        )
    if choice == 6:
        return RvInstruction(
            draw(st.sampled_from([RvOpcode.LUI, RvOpcode.AUIPC])),
            rd=draw(REG),
            imm=draw(IMM20),
        )
    return RvInstruction(
        RvOpcode.JAL,
        rd=draw(REG),
        imm=draw(st.integers(min_value=-16, max_value=16).map(lambda k: k * 4)),
    )


@st.composite
def _program(draw) -> RvProgram:
    body = draw(st.lists(_instruction(), min_size=1, max_size=24))
    # A halt at the end keeps straight-line runs terminating; branches and
    # jumps may still leave the program or loop into the instruction limit,
    # and both paths must agree on that outcome too.
    body.append(RvInstruction(RvOpcode.EBREAK))
    return RvProgram("random", tuple(body))


@st.composite
def _cycle_model(draw) -> CpuCycleModel:
    cost = st.integers(min_value=1, max_value=9)
    return CpuCycleModel(
        alu_cycles=draw(cost),
        load_cycles=draw(cost),
        store_cycles=draw(cost),
        mul_cycles=draw(cost),
        mulh_cycles=draw(cost),
        div_cycles=draw(cost),
        branch_not_taken_cycles=draw(cost),
        branch_taken_cycles=draw(cost),
        jump_cycles=draw(cost),
    )


def _run_path(
    program: RvProgram,
    init_words,
    predecode: bool,
    model: CpuCycleModel,
):
    memory = RvMemory(MEMORY_BYTES)
    memory.write_buffer(0, init_words)
    cpu = RiscvCpu(memory, cycle_model=model, max_instructions=2000)
    cpu.predecode = predecode
    error = None
    try:
        cpu.run(program)
    except SimulationError as exc:
        error = str(exc)
    return cpu, error


@given(
    program=_program(),
    init=st.lists(WORD, min_size=MEMORY_WORDS, max_size=MEMORY_WORDS),
    model=_cycle_model(),
)
@settings(max_examples=120, deadline=None)
def test_decoded_path_matches_seed_interpreter(program, init, model):
    decoded_cpu, decoded_error = _run_path(program, init, True, model)
    seed_cpu, seed_error = _run_path(program, init, False, model)

    assert decoded_error == seed_error
    assert decoded_cpu.stats == seed_cpu.stats  # full CpuStats, histogram included
    assert decoded_cpu.halted == seed_cpu.halted
    assert decoded_cpu.pc == seed_cpu.pc
    assert [decoded_cpu.read_reg(i) for i in range(32)] == [
        seed_cpu.read_reg(i) for i in range(32)
    ]
    decoded_image = decoded_cpu.memory.read_buffer(0, MEMORY_WORDS)
    seed_image = seed_cpu.memory.read_buffer(0, MEMORY_WORDS)
    assert np.array_equal(decoded_image, seed_image)


# --------------------------------------------------------------------------- #
# Golden cycles of the benchmark programs (paper sizes, seed 2022): the seven
# Table III rows plus the extended suite.  Regenerate deliberately with
# ``python tests/tools/regen_goldens.py`` after an intended ISS change.
# --------------------------------------------------------------------------- #
GOLDEN_CYCLES = {
    "mat_mul": 166028,
    "copy": 5642,
    "vec_mul": 17420,
    "fir": 38667,
    "div_int": 25100,
    "xcorr": 1118220,
    "parallel_sel": 182537,
    "saxpy": 18445,
    "dot": 7719,
    "reduce_sum": 9279,
    "inclusive_scan": 5665,
    "histogram": 7690,
    "transpose": 8715,
    "matmul2d": 43147,
    "conv2d": 11530,
    "bitonic_sort": 69397,
}


def test_golden_covers_all_programs():
    assert sorted(GOLDEN_CYCLES) == sorted(all_riscv_program_names())


@pytest.mark.parametrize("name", sorted(GOLDEN_CYCLES))
def test_decoded_golden_kcycles(name):
    spec = get_riscv_program_spec(name)
    case = spec.default_case()
    stats, _ = case.run()  # output buffers are verified by run(check=True)
    assert stats.cycles == GOLDEN_CYCLES[name]
    assert stats.kcycles == pytest.approx(GOLDEN_CYCLES[name] / 1000.0)


@pytest.mark.parametrize("name", ["copy", "vec_mul"])
def test_seed_interpreter_golden_kcycles(name):
    """Spot-check that the goldens pin the *seed* path too (it is slower)."""
    spec = get_riscv_program_spec(name)
    case = spec.build_case(spec.paper_size, 2022)
    cpu = RiscvCpu(case.memory)
    cpu.predecode = False
    stats, _ = case.run(cpu=cpu)
    assert stats.cycles == GOLDEN_CYCLES[name]


# --------------------------------------------------------------------------- #
# Decode reuse and structure
# --------------------------------------------------------------------------- #
def test_predecoded_program_is_reusable_across_runs():
    asm = RvAssembler("reuse")
    asm.li(T0, 3)
    asm.li(T1, 0)
    asm.label("head")
    asm.emit(RvOpcode.ADD, rd=T1, rs1=T1, rs2=T0)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=-1)
    asm.emit(RvOpcode.BNE, rs1=T0, rs2=ZERO, label="head")
    asm.halt()
    program = asm.assemble()
    cpu = RiscvCpu(RvMemory())
    decoded = predecode_riscv_program(program, cpu.cycle_model)
    first = cpu.run(program, decoded=decoded)
    first_snapshot = (first.cycles, first.instructions, dict(first.mnemonic_counts))
    cpu.registers = [0] * 32
    second = cpu.run(program, decoded=decoded)
    assert (second.cycles, second.instructions, dict(second.mnemonic_counts)) == first_snapshot
    assert cpu.read_reg(T1) == 6


def test_decoded_program_shape():
    asm = RvAssembler("shape")
    asm.li(T0, 1)
    asm.emit(RvOpcode.SW, rs1=ZERO, rs2=T0, imm=4)
    asm.emit(RvOpcode.LW, rd=T1, rs1=ZERO, imm=4)
    asm.halt()
    program = asm.assemble()
    decoded = predecode_riscv_program(program, CpuCycleModel())
    assert len(decoded) == len(program)
    assert decoded.handlers[-1] is None  # EBREAK is the halt sentinel
    assert decoded.mnemonics[decoded.load_index] == "lw"
    assert decoded.mnemonics[decoded.store_index] == "sw"
