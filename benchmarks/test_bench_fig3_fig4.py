"""Regenerate Figs. 3 and 4: the floorplans of the four physical versions.

Fig. 3 contrasts the 1CU@500MHz and 1CU@667MHz layouts; Fig. 4 contrasts the
8CU@500MHz layout with the 8-CU version that targets 667 MHz but only closes
~600 MHz because of the long routes between the peripheral CUs and the global
memory controller.
"""

from __future__ import annotations

import pytest

from repro.eval.figures import build_figure3, build_figure4
from repro.eval.paper_data import PAPER_8CU_ACHIEVED_MHZ, PAPER_DIE_DIMENSIONS_UM


def _build(tech, layouts):
    return build_figure3(tech, layouts), build_figure4(tech, layouts)


@pytest.mark.benchmark(group="fig3_fig4")
def test_fig3_fig4_layouts(benchmark, tech, physical_layouts):
    (fig3, fig4) = benchmark.pedantic(_build, args=(tech, physical_layouts), rounds=1, iterations=1)
    one_cu_500, one_cu_667 = fig3
    eight_cu_500, eight_cu_667 = fig4

    print("\n=== Reproduced Fig. 3 (1 CU layouts) ===")
    print(one_cu_500.ascii_floorplan())
    print(one_cu_667.ascii_floorplan())
    print("\n=== Reproduced Fig. 4 (8 CU layouts) ===")
    print(eight_cu_500.ascii_floorplan())
    print(eight_cu_667.ascii_floorplan())
    print("\nPaper die dimensions (um):", PAPER_DIE_DIMENSIONS_UM)

    # Fig. 3: die dimensions within ~15% of the paper's 2700x2500 / 3200x2800.
    assert one_cu_500.floorplan.die_width_um == pytest.approx(2700, rel=0.15)
    assert one_cu_500.floorplan.die_height_um == pytest.approx(2500, rel=0.15)
    assert one_cu_667.floorplan.die_area_mm2 > one_cu_500.floorplan.die_area_mm2
    assert one_cu_667.timing_met  # the 1-CU version does reach 667 MHz
    # The optimized layout contains divided ("optimized") memories, the
    # unoptimized one does not -- the colour split of Figs. 3-4.
    assert one_cu_500.num_divided_macros == 0
    assert one_cu_667.num_divided_macros > 0

    # Fig. 4: the 8-CU floorplan is much larger and its 667 MHz target only
    # closes around 600 MHz.
    assert eight_cu_500.floorplan.die_width_um == pytest.approx(7150, rel=0.15)
    assert len(eight_cu_667.floorplan.cu_placements) == 8
    assert not eight_cu_667.timing_met
    assert eight_cu_667.achieved_frequency_mhz == pytest.approx(
        PAPER_8CU_ACHIEVED_MHZ, rel=0.10
    )
    # The wire delay of the farthest CU is what breaks the 1.5 ns period.
    assert max(eight_cu_667.wire_delays_ns.values()) > 0.7
    assert max(one_cu_667.wire_delays_ns.values()) < 0.3
