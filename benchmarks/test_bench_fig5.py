"""Regenerate Fig. 5: raw speed-up over the RISC-V per kernel and CU count."""

from __future__ import annotations

import pytest

from repro.eval.benchmarks import Table3Data
from repro.eval.comparison import compute_speedups
from repro.eval.figures import format_speedup_chart
from repro.eval.paper_data import PAPER_TABLE3, paper_speedup


@pytest.mark.benchmark(group="fig5")
def test_fig5_speedup_over_riscv(benchmark, table3_measurements):
    # Fig. 5 is a *paper* figure: restrict the speed-up series to the seven
    # published rows (the measurement fixture also carries the extended
    # suite, printed separately below).
    paper_table = Table3Data(
        rows={
            kernel: row
            for kernel, row in table3_measurements.rows.items()
            if kernel in PAPER_TABLE3
        },
        cu_counts=table3_measurements.cu_counts,
    )
    speedups = benchmark.pedantic(
        compute_speedups, args=(paper_table,), rounds=1, iterations=1
    )

    print("\n=== Reproduced Fig. 5 ===")
    print(format_speedup_chart(speedups))
    extended_table = Table3Data(
        rows={
            kernel: row
            for kernel, row in table3_measurements.rows.items()
            if kernel not in PAPER_TABLE3
        },
        cu_counts=table3_measurements.cu_counts,
    )
    if extended_table.rows:
        print("\n=== Extended-suite speed-ups (no paper counterpart) ===")
        print(format_speedup_chart(compute_speedups(extended_table)))
    print("\n=== Paper Fig. 5 (speed-up implied by Table III) ===")
    for kernel in PAPER_TABLE3:
        values = {num_cus: round(paper_speedup(kernel, num_cus), 1) for num_cus in (1, 2, 4, 8)}
        print(f"{kernel:14s} {values}")

    # The headline claim: the G-GPU is up to two orders of magnitude faster,
    # with mat_mul the best kernel (223x in the paper).  The strongest checks
    # need the paper's input sizes (REPRO_BENCH_SCALE=1.0): smaller inputs do
    # not produce enough workgroups to occupy all 8 CUs.
    import os

    full_scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.5")) >= 1.0
    if full_scale:
        assert speedups.best_kernel() == "mat_mul"
        assert speedups.value("mat_mul", 8) > 100.0
        for kernel in ("mat_mul", "fir"):
            assert speedups.value(kernel, 8) > speedups.value(kernel, 1)
    else:
        assert speedups.best_kernel() in ("mat_mul", "fir")
        assert speedups.value("mat_mul", 8) > 10.0
        for kernel in ("mat_mul", "fir"):
            assert speedups.value(kernel, 8) >= speedups.value(kernel, 1)
    # "For applications with low to no parallelism, G-GPU can be as low as
    # only 1.2 times faster": div_int and parallel_sel stay in the single
    # digits at 1 CU.
    assert speedups.value("div_int", 1) < 5.0
    assert speedups.value("parallel_sel", 1) < 5.0
    # The serial/divergent group never comes close to the parallel group.
    assert speedups.value("mat_mul", 8) > 4 * speedups.value("div_int", 8)
    assert speedups.value("mat_mul", 8) > 4 * speedups.value("parallel_sel", 8)
    # xcorr degrades (or at best stagnates) beyond 4 CUs due to AXI contention.
    assert speedups.value("xcorr", 8) <= speedups.value("xcorr", 2) * 1.1
