"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced values next to the published ones.  The heavyweight part is the
Table III / Fig. 5 / Fig. 6 kernel simulation; its input sizes are controlled
by the ``REPRO_BENCH_SCALE`` environment variable (1.0 = the paper's sizes,
default 0.5 keeps a full benchmark run to a couple of minutes) and its
process fan-out by ``REPRO_JOBS`` (see :mod:`repro.runtime.parallel`).

Performance trajectory
----------------------
The engine-facing benchmarks (simulator engine, RISC-V ISS, the Table III
sweep) additionally write their wall-clock numbers to ``BENCH_PR2.json`` in
the repository root through :func:`record_bench` -- one JSON object per
section, overwritten in place -- so future performance work has a
machine-readable baseline to regress against.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.eval.benchmarks import Table3Data, run_table3
from repro.eval.tables import build_physical_versions
from repro.runtime.checkpoint import atomic_write_json
from repro.runtime.parallel import default_jobs
from repro.tech.technology import Technology, default_65nm

BENCH_RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"
BENCH_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(items):
    """Mark everything under ``benchmarks/`` as ``bench``.

    The root ``pytest.ini`` deselects that marker by default, so the tier-1
    run (`pytest -x -q`) skips the paper-regeneration harness; run it with
    ``pytest -m bench benchmarks``.
    """
    for item in items:
        try:
            Path(item.fspath).relative_to(BENCH_DIR)
        except ValueError:
            continue
        item.add_marker(pytest.mark.bench)


def bench_scale() -> float:
    """Input-size scale factor for the simulation-heavy benchmarks."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def record_bench(section: str, payload: dict) -> None:
    """Merge one benchmark section into ``BENCH_PR2.json``.

    The file accumulates sections across one (or several) harness runs, and
    sections recorded in different runs may have used different
    configurations, so every section carries its own ``meta`` block with the
    scale and job count that produced it.
    """
    data = {}
    if BENCH_RECORD_PATH.exists():
        try:
            data = json.loads(BENCH_RECORD_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = {
        "meta": {
            "bench_scale": bench_scale(),
            "repro_jobs": default_jobs(),
        },
        **payload,
    }
    # Atomic: a crashed or killed harness run never leaves a torn JSON file.
    atomic_write_json(BENCH_RECORD_PATH, data)


@pytest.fixture(scope="session")
def input_scale() -> float:
    """The effective ``REPRO_BENCH_SCALE`` (fixture so benches need no conftest import)."""
    return bench_scale()


@pytest.fixture(scope="session")
def bench_recorder():
    """The ``BENCH_PR2.json`` recorder (fixture so benches need no conftest import)."""
    return record_bench


@pytest.fixture(scope="session")
def tech() -> Technology:
    return default_65nm()


@pytest.fixture(scope="session")
def table3_measurements() -> Table3Data:
    """One shared Table III measurement reused by the Table III / Fig. 5 / Fig. 6 benches.

    The sweep is timed here (it is the dominant cost of a harness run) and
    recorded to ``BENCH_PR2.json`` together with the effective job count.
    """
    start = time.perf_counter()
    table = run_table3(scale=bench_scale())
    elapsed = time.perf_counter() - start
    record_bench(
        "table3_sweep",
        {
            "wall_seconds": round(elapsed, 3),
            "kernels": len(table.rows),
            "cu_counts": list(table.cu_counts),
            "kcycles": {
                kernel: {
                    "riscv": row.riscv.kcycles,
                    **{f"gpu_{num_cus}cu": row.gpu_kcycles(num_cus) for num_cus in table.cu_counts},
                }
                for kernel, row in table.rows.items()
            },
        },
    )
    return table


@pytest.fixture(scope="session")
def physical_layouts(tech):
    """The four physically implemented versions (shared by Table II and Figs. 3-4)."""
    return build_physical_versions(tech)
