"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced values next to the published ones.  The heavyweight part is the
Table III / Fig. 5 / Fig. 6 kernel simulation; its input sizes are controlled
by the ``REPRO_BENCH_SCALE`` environment variable (1.0 = the paper's sizes,
default 0.5 keeps a full benchmark run to a couple of minutes).
"""

from __future__ import annotations

import os

import pytest

from repro.eval.benchmarks import Table3Data, run_table3
from repro.eval.tables import build_physical_versions
from repro.tech.technology import Technology, default_65nm


def bench_scale() -> float:
    """Input-size scale factor for the simulation-heavy benchmarks."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def tech() -> Technology:
    return default_65nm()


@pytest.fixture(scope="session")
def table3_measurements() -> Table3Data:
    """One shared Table III measurement reused by the Table III / Fig. 5 / Fig. 6 benches."""
    return run_table3(scale=bench_scale())


@pytest.fixture(scope="session")
def physical_layouts(tech):
    """The four physically implemented versions (shared by Table II and Figs. 3-4)."""
    return build_physical_versions(tech)
