"""Benchmark: rank-2 dense workloads (PR 10).

Measures the three dense 2-D kernels — the ``__local``-tiled GEMM
(``matmul2d``), the 3x3 stencil (``conv2d``), and the in-LRAM bitonic
sorting network (``bitonic_sort``) — at 1/2/4/8 CUs, asserting the
vectorized and scalar issue engines bit-identical on every cell, then
times the full 16-kernel Table III sweep (the 13 flat kernels plus the
dense trio) through the production ``run_table3`` path.  The honest
numbers land in ``BENCH_PR10.json`` in the repository root for the
trajectory table (``tests/tools/bench_trajectory.py``).

The headline is CU scaling: the dense kernels are the first workloads in
the suite whose 2-D workgroups tile a genuinely two-dimensional iteration
space, so they are also the first to stress the dispatcher's 2-D
workgroup distribution at 8 CUs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.eval.benchmarks import BenchmarkSizes, measure_gpu_kernel, run_table3
from repro.kernels import DENSE_KERNEL_NAMES, all_kernel_names
from repro.runtime.checkpoint import atomic_write_json
from repro.runtime.parallel import default_jobs

_ROOT = Path(__file__).resolve().parent.parent
BENCH_PR10_PATH = _ROOT / "BENCH_PR10.json"

# Quarter scale matches the recorded-trajectory configuration of every
# earlier BENCH_PR*.json; REPRO_BENCH_SCALE is deliberately not applied so
# the recorded walls stay comparable across harness configurations.
SWEEP_SCALE = 0.25
SEED = 2022
CU_COUNTS = (1, 2, 4, 8)


def _record(section: str, payload: dict) -> None:
    data = {}
    if BENCH_PR10_PATH.exists():
        try:
            data = json.loads(BENCH_PR10_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = {
        "meta": {"bench_scale": SWEEP_SCALE, "repro_jobs": default_jobs()},
        **payload,
    }
    atomic_write_json(BENCH_PR10_PATH, data)


@pytest.mark.benchmark(group="dense")
def test_dense_rank2_workloads(benchmark):
    # Per-kernel cells at every CU count.  check=True inside
    # measure_gpu_kernel verifies results against the numpy reference, and
    # each cell is run on both issue engines with cycles asserted identical
    # — re-checking, at bench scale, what the golden and differential
    # suites pin for the rank-2 machinery.
    cells: dict = {}
    cu_scaling: dict = {}
    for name in DENSE_KERNEL_NAMES:
        size = BenchmarkSizes.paper(name).scaled(SWEEP_SCALE).gpu_size
        per_cu: dict = {}
        for num_cus in CU_COUNTS:
            start = time.perf_counter()
            vec = measure_gpu_kernel(name, num_cus, size, SEED, True, True)
            wall = time.perf_counter() - start
            scalar = measure_gpu_kernel(name, num_cus, size, SEED, True, False)
            assert vec.cycles == scalar.cycles, (name, num_cus)
            per_cu[f"{num_cus}cu"] = {
                "kcycles": vec.kcycles,
                "wall_seconds": round(wall, 4),
            }
        cells[name] = {"gpu_size": size, "per_cu": per_cu}
        cu_scaling[name] = round(
            per_cu["1cu"]["kcycles"] / per_cu["8cu"]["kcycles"], 3
        )

    # The full 16-kernel sweep through the production run_table3 path —
    # the first sweep wall recorded with the dense trio in the batch.
    start = time.perf_counter()
    table = benchmark.pedantic(
        lambda: run_table3(scale=SWEEP_SCALE, seed=SEED),
        rounds=1,
        iterations=1,
    )
    sweep_wall = time.perf_counter() - start
    assert table.kernels == all_kernel_names()
    assert len(table.kernels) == 16

    _record(
        "dense_rank2",
        {
            "kernels": list(DENSE_KERNEL_NAMES),
            "cu_scaling_1_to_8": cu_scaling,
            "sweep_wall_seconds": round(sweep_wall, 3),
            "sweep_kernels": len(table.kernels),
            "per_kernel": cells,
        },
    )

    # Acceptance: the tiled GEMM's 2-D workgroup grid must actually spread
    # across compute units — at least 2x from 1 to 8 CUs (measured ~5x; a
    # loose bound so CI-runner noise in the simulated workload mix never
    # flakes, since cycle counts are deterministic the only variance is an
    # intentional engine change, which the goldens catch first).
    assert cu_scaling["matmul2d"] >= 2.0, cu_scaling
