"""Benchmarks for the paper's future-work features (repro.scaling extensions).

These go beyond the published tables: they quantify the two follow-ups the
paper proposes in its future-work paragraph -- replicating the global memory
controller to recover 667 MHz for 8 CUs, and scaling beyond 8 CUs -- plus the
single-port-memory option, using the same synthesis and physical models as the
Table I / Table II benches.
"""

from __future__ import annotations

import pytest

from repro.arch.config import GGPUConfig
from repro.physical.layout import PhysicalSynthesis
from repro.planner.optimizer import TimingOptimizer
from repro.rtl.generator import GeneratorOptions, generate_ggpu_netlist
from repro.scaling import ClusterConfig, run_clustered_flow
from repro.synth.logic import LogicSynthesis

TARGET_MHZ = 667.0


@pytest.mark.benchmark(group="future_work")
def test_memctrl_replication_recovers_667mhz_for_8_cus(benchmark, tech):
    """Monolithic 8 CUs hit the ~600 MHz wall; 2 clusters x 4 CUs close 667 MHz."""

    def _run():
        monolithic_netlist = generate_ggpu_netlist(GGPUConfig(num_cus=8), name="fw_mono8")
        TimingOptimizer(tech).close_timing(monolithic_netlist, TARGET_MHZ)
        synthesis = LogicSynthesis(tech).run(monolithic_netlist, TARGET_MHZ)
        monolithic = PhysicalSynthesis(tech).run(monolithic_netlist, synthesis, TARGET_MHZ)
        clustered = run_clustered_flow(
            tech, ClusterConfig(num_clusters=2, cus_per_cluster=4), TARGET_MHZ
        )
        return synthesis, monolithic, clustered

    synthesis, monolithic, clustered = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(
        f"\nmonolithic 8CU: achieved {monolithic.achieved_frequency_mhz:.0f} MHz, "
        f"worst route {monolithic.floorplan.max_cu_distance_um():.0f} um, "
        f"area {synthesis.total_area_mm2:.2f} mm2"
    )
    print(
        f"2x4 clustered:  achieved {clustered.achieved_frequency_mhz:.0f} MHz, "
        f"worst route {clustered.worst_cu_route_um:.0f} um, "
        f"area {clustered.total_area_mm2:.2f} mm2"
    )
    # The paper's wall and the proposed fix.
    assert monolithic.achieved_frequency_mhz < 630.0
    assert clustered.achieved_frequency_mhz >= TARGET_MHZ - 1.0
    # The fix is paid for with the second controller (a few percent of area).
    assert clustered.total_area_mm2 > synthesis.total_area_mm2
    assert clustered.total_area_mm2 < 1.2 * synthesis.total_area_mm2
    assert clustered.worst_cu_route_um < 0.5 * monolithic.floorplan.max_cu_distance_um()


@pytest.mark.benchmark(group="future_work")
def test_scaling_to_16_cus_with_clusters(benchmark, tech):
    """A 16-CU G-GPU (4 clusters x 4 CUs) closes 667 MHz and scales linearly in area."""

    def _run():
        eight = run_clustered_flow(tech, ClusterConfig(num_clusters=2, cus_per_cluster=4), TARGET_MHZ)
        sixteen = run_clustered_flow(tech, ClusterConfig(num_clusters=4, cus_per_cluster=4), TARGET_MHZ)
        return eight, sixteen

    eight, sixteen = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(
        f"\n8 CUs (2x4):  {eight.total_area_mm2:.1f} mm2, {eight.total_power_w:.1f} W, "
        f"achieved {eight.achieved_frequency_mhz:.0f} MHz"
    )
    print(
        f"16 CUs (4x4): {sixteen.total_area_mm2:.1f} mm2, {sixteen.total_power_w:.1f} W, "
        f"achieved {sixteen.achieved_frequency_mhz:.0f} MHz"
    )
    assert sixteen.achieved_frequency_mhz >= TARGET_MHZ - 1.0
    ratio = sixteen.total_area_mm2 / eight.total_area_mm2
    assert 1.8 <= ratio <= 2.2  # area keeps scaling linearly with the CU count
    # The in-cluster routes do not grow with the total CU count.
    assert sixteen.worst_cu_route_um == pytest.approx(eight.worst_cu_route_um, rel=0.25)


@pytest.mark.benchmark(group="future_work")
def test_single_port_memory_option_saves_area_and_power(benchmark, tech):
    """Single-port conversion of the capable memories trims area/power at no speed cost."""

    def _run():
        synthesis = LogicSynthesis(tech)
        results = {}
        for label, options in (
            ("dual", None),
            ("single", GeneratorOptions(single_port_memories=True)),
        ):
            netlist = generate_ggpu_netlist(GGPUConfig(num_cus=4), name=f"fw_{label}", options=options)
            optimization = TimingOptimizer(tech).close_timing(netlist, 590.0)
            results[label] = (synthesis.run(netlist, 590.0), optimization)
        return results

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    dual, dual_opt = results["dual"]
    single, single_opt = results["single"]
    print(
        f"\ndual-port  : {dual.total_area_mm2:.2f} mm2, {dual.total_power_w:.2f} W "
        f"(timing met: {dual.timing_met})"
    )
    print(
        f"single-port: {single.total_area_mm2:.2f} mm2, {single.total_power_w:.2f} W "
        f"(timing met: {single.timing_met})"
    )
    assert single.timing_met and dual.timing_met
    assert single.memory_area_mm2 < dual.memory_area_mm2
    assert single.total_power_w < dual.total_power_w
