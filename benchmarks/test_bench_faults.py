"""Benchmark: overhead of the fault-tolerance machinery (PR 7).

Two acceptance measurements for the fault-tolerant runtime, recorded to
``BENCH_PR7.json`` in the repository root:

* **Fault-path overhead** — the 16-kernel multi-device batch scheduled with
  no fault plan, with an *armed but empty* plan (the injector is consulted
  on every launch and transfer but never fires), and with a representative
  mixed fault arm.  The armed-empty run must produce the bit-identical
  schedule, and its wall-time overhead stays within an acceptance bound:
  resilience is free until a fault actually fires.
* **Journal overhead** — a scale-reduced Table III sweep without a journal,
  with a cold journal (every cell recorded as it completes), and resumed
  from a warm journal (every cell served, nothing simulated).  The warm
  resume must be dramatically faster than computing, which is the point of
  crash-safe sweeps.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np
import pytest

from repro.arch.config import GGPUConfig
from repro.eval.benchmarks import BenchmarkSizes, run_table3
from repro.kernels import all_kernel_names, get_kernel_spec
from repro.runtime.checkpoint import SweepJournal, atomic_write_json
from repro.runtime.faults import (
    DEVICE_FAIL,
    DEVICE_TRANSIENT,
    TRANSFER_STALL,
    FaultPlan,
    FaultSpec,
)
from repro.runtime.multidevice import OutOfOrderQueue
from repro.runtime.parallel import default_jobs

BENCH_PR7_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"

# As with the other schedule-layer benches, REPRO_BENCH_SCALE is deliberately
# not applied: the recorded overheads should be comparable between runs.
SCALE = 0.125
NUM_DEVICES = 2
MEMORY_BYTES = 64 * 1024 * 1024
# The armed-but-idle injector adds two dictionary probes per launch/transfer
# to a pure-python cycle-accurate simulation; anything past this bound means
# the no-fault path grew real work.
MAX_ARMED_IDLE_OVERHEAD = 0.25


def _record(section: str, payload: dict) -> None:
    data = {}
    if BENCH_PR7_PATH.exists():
        try:
            data = json.loads(BENCH_PR7_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = {"meta": {"repro_jobs": default_jobs(), "scale": SCALE}, **payload}
    atomic_write_json(BENCH_PR7_PATH, data)


def _run_suite_batch(faults: Optional[FaultPlan]) -> Dict[str, object]:
    """Schedule the whole kernel suite once; return wall time and schedule."""
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=1),
        num_devices=NUM_DEVICES,
        memory_bytes=MEMORY_BYTES,
        faults=faults,
    )
    start = time.perf_counter()
    for name in all_kernel_names():
        spec = get_kernel_spec(name)
        sizes = BenchmarkSizes.paper(name).scaled(SCALE)
        workload = spec.workload(sizes.gpu_size, 2022)
        args: Dict[str, object] = dict(workload.scalars)
        for buffer_name, contents in workload.buffers.items():
            args[buffer_name] = queue.create_buffer(
                np.asarray(contents, dtype=np.int64) & 0xFFFFFFFF
            )
        queue.enqueue(spec.build(), workload.ndrange, args, label=name)
    queue.flush()
    wall = time.perf_counter() - start
    return {
        "wall": wall,
        "makespan": queue.stats.makespan,
        "schedule": [
            (event.label, event.device, event.start_cycle, event.end_cycle)
            for event in queue.schedule
        ],
        "total_retries": queue.stats.total_retries,
        "devices_lost": queue.stats.devices_lost,
        "degraded_fraction": queue.stats.degraded_fraction,
    }


@pytest.mark.benchmark(group="faults")
def test_fault_injection_overhead(benchmark):
    baseline = _run_suite_batch(faults=None)
    armed = benchmark.pedantic(
        lambda: _run_suite_batch(faults=FaultPlan()), rounds=1, iterations=1
    )
    mixed_plan = FaultPlan(
        specs=(
            FaultSpec(kind=TRANSFER_STALL, device=0, at_command=0),
            FaultSpec(kind=DEVICE_TRANSIENT, device=1, at_command=1),
            FaultSpec(kind=DEVICE_FAIL, device=0, at_command=4),
        )
    )
    faulted = _run_suite_batch(faults=mixed_plan)

    overhead = armed["wall"] / baseline["wall"] - 1.0
    _record(
        "fault_injection_overhead",
        {
            "kernels": len(all_kernel_names()),
            "num_devices": NUM_DEVICES,
            "baseline_wall_seconds": round(baseline["wall"], 3),
            "armed_idle_wall_seconds": round(armed["wall"], 3),
            "armed_idle_overhead": round(overhead, 4),
            "faulted_wall_seconds": round(faulted["wall"], 3),
            "faulted_makespan_ratio": round(
                faulted["makespan"] / baseline["makespan"], 4
            ),
            "faulted_retries": faulted["total_retries"],
            "faulted_devices_lost": faulted["devices_lost"],
            "faulted_degraded_fraction": round(faulted["degraded_fraction"], 4),
        },
    )

    # An armed-but-idle injector must not perturb the schedule at all...
    assert armed["schedule"] == baseline["schedule"]
    assert armed["makespan"] == baseline["makespan"]
    # ...and must stay within the wall-clock acceptance bound.
    assert overhead <= MAX_ARMED_IDLE_OVERHEAD, overhead
    # The faulted arm recovered (degraded, never corrupted or stuck).
    assert faulted["devices_lost"] == 1
    assert faulted["makespan"] >= baseline["makespan"]


@pytest.mark.benchmark(group="faults")
def test_checkpoint_journal_overhead(benchmark, tmp_path):
    kwargs = {"cu_counts": (1,), "scale": SCALE, "check": False}
    path = tmp_path / "journal.json"

    start = time.perf_counter()
    bare = run_table3(**kwargs)
    bare_wall = time.perf_counter() - start

    start = time.perf_counter()
    cold = run_table3(journal=path, **kwargs)
    cold_wall = time.perf_counter() - start

    meta = json.loads(path.read_text(encoding="utf-8"))["meta"]
    journal = SweepJournal(path, meta=meta)
    start = time.perf_counter()
    warm = benchmark.pedantic(
        lambda: run_table3(journal=journal, **kwargs), rounds=1, iterations=1
    )
    warm_wall = time.perf_counter() - start

    total_cells = len(all_kernel_names()) * 2
    _record(
        "checkpoint_journal_overhead",
        {
            "cells": total_cells,
            "bare_wall_seconds": round(bare_wall, 3),
            "cold_journal_wall_seconds": round(cold_wall, 3),
            "cold_journal_overhead": round(cold_wall / bare_wall - 1.0, 4),
            "warm_resume_wall_seconds": round(warm_wall, 3),
            "warm_resume_speedup": round(bare_wall / warm_wall, 2),
        },
    )

    # The warm resume simulated nothing: every cell came from the journal.
    assert journal.hits == total_cells
    assert journal.misses == 0
    assert warm_wall < bare_wall
    # Journaled and bare sweeps agree bit-exactly, cold and warm alike.
    for kernel in all_kernel_names():
        assert cold.rows[kernel].riscv == bare.rows[kernel].riscv
        assert warm.rows[kernel].riscv == bare.rows[kernel].riscv
        assert cold.rows[kernel].gpu[1] == bare.rows[kernel].gpu[1]
        assert warm.rows[kernel].gpu[1] == bare.rows[kernel].gpu[1]
