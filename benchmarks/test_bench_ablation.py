"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's tables: they quantify how much each GPUPlanner
optimization contributes (memory division vs. pipeline insertion) and how the
shared-cache size moves the kernels that the paper identifies as memory bound.
"""

from __future__ import annotations

import pytest

from repro.arch.config import CacheConfig, GGPUConfig
from repro.kernels import get_kernel_spec, run_workload
from repro.planner.optimizer import TimingOptimizer
from repro.rtl.generator import generate_ggpu_netlist
from repro.rtl.timing import max_frequency_mhz
from repro.rtl.transforms import insert_pipeline
from repro.simt.gpu import GGPUSimulator


@pytest.mark.benchmark(group="ablation")
def test_ablation_memory_division_vs_pipelining(benchmark, tech):
    """Without memory division the G-GPU cannot get past ~500 MHz."""

    def _run():
        baseline = generate_ggpu_netlist(GGPUConfig(num_cus=1), name="baseline")
        pipeline_only = generate_ggpu_netlist(GGPUConfig(num_cus=1), name="pipeline_only")
        # Pipeline every pipelinable path aggressively, but never divide a memory.
        for path in pipeline_only.timing_paths.values():
            if path.pipelinable:
                insert_pipeline(pipeline_only, path.name, 2)
        optimized = generate_ggpu_netlist(GGPUConfig(num_cus=1), name="optimized")
        TimingOptimizer(tech).close_timing(optimized, 667.0)
        return (
            max_frequency_mhz(baseline, tech),
            max_frequency_mhz(pipeline_only, tech),
            max_frequency_mhz(optimized, tech),
        )

    baseline_mhz, pipeline_only_mhz, optimized_mhz = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    print(
        f"\nmax frequency: unoptimized {baseline_mhz:.0f} MHz, "
        f"pipelines only {pipeline_only_mhz:.0f} MHz, "
        f"division + pipelines {optimized_mhz:.0f} MHz"
    )
    assert baseline_mhz == pytest.approx(500.0, abs=15.0)
    # Pipelining alone cannot fix a path whose macro access fills the cycle,
    # so it falls well short of the 667 MHz target that division reaches.
    assert pipeline_only_mhz < 600.0
    assert optimized_mhz >= 667.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_cache_size_moves_memory_bound_kernels(benchmark, tech):
    """xcorr (memory bound) reacts to the cache size; mat_mul barely does."""

    def _run():
        results = {}
        for size_kb in (16, 64):
            config = GGPUConfig(num_cus=2, cache=CacheConfig(size_bytes=size_kb * 1024))
            simulator = GGPUSimulator(config)
            spec = get_kernel_spec("xcorr")
            xcorr_cycles, _ = run_workload(simulator, spec.build(), spec.workload(1024, 7))
            simulator = GGPUSimulator(config)
            spec = get_kernel_spec("mat_mul")
            mat_cycles, _ = run_workload(simulator, spec.build(), spec.workload(1024, 7))
            results[size_kb] = (xcorr_cycles.cycles, mat_cycles.cycles)
        return results

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\ncache ablation (cycles):", results)
    xcorr_small, mat_small = results[16]
    xcorr_large, mat_large = results[64]
    assert xcorr_large < xcorr_small * 0.8  # bigger cache clearly helps xcorr
    assert mat_large > mat_small * 0.5  # mat_mul moves far less


@pytest.mark.benchmark(group="ablation")
def test_ablation_axi_ports_bound_streaming_kernels(benchmark):
    """copy throughput tracks the number of AXI data ports (1 vs 4)."""
    from repro.arch.config import AxiConfig

    def _run():
        cycles = {}
        for ports in (1, 4):
            config = GGPUConfig(num_cus=4, axi=AxiConfig(data_ports=ports))
            simulator = GGPUSimulator(config)
            spec = get_kernel_spec("copy")
            result, _ = run_workload(simulator, spec.build(), spec.workload(8192, 7))
            cycles[ports] = result.cycles
        return cycles

    cycles = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\nAXI port ablation (cycles):", cycles)
    assert cycles[4] < cycles[1] * 0.55
