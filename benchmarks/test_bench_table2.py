"""Regenerate Table II: routed wirelength per metal layer for the four
physically implemented versions (1CU@500, 1CU@667, 8CU@500, 8CU@~600 MHz).
"""

from __future__ import annotations

import pytest

from repro.eval.paper_data import PAPER_TABLE2
from repro.eval.tables import build_table2
from repro.physical.report import SIGNAL_LAYERS, format_table2


@pytest.mark.benchmark(group="table2")
def test_table2_wirelength_per_metal_layer(benchmark, tech, physical_layouts):
    estimates = benchmark.pedantic(
        build_table2, args=(tech, physical_layouts), rounds=1, iterations=1
    )
    assert len(estimates) == 4

    print("\n=== Reproduced Table II (um) ===")
    print(format_table2(estimates))
    print("\n=== Paper Table II (um) ===")
    for layer in SIGNAL_LAYERS:
        print(layer, PAPER_TABLE2[layer])

    one_cu_500, one_cu_667, eight_cu_500, eight_cu_600 = estimates
    # Wirelength grows with CU count and with the optimization level.
    assert eight_cu_500.total_um > 5 * one_cu_500.total_um
    assert one_cu_667.total_um > one_cu_500.total_um
    assert eight_cu_600.total_um > eight_cu_500.total_um
    # Per-layer distribution: M3 carries the most metal, M7 the least
    # (same ordering as the paper's 1CU@500MHz column).
    assert one_cu_500.layer("M3") > one_cu_500.layer("M2") > one_cu_500.layer("M7")
    # The fourth column is reported at its achieved ~600 MHz, not at 667 MHz.
    assert eight_cu_600.frequency_mhz < 650.0
    # Absolute scale: within a factor of ~1.5 of the paper for the 500 MHz versions.
    paper_1cu_total = sum(PAPER_TABLE2[layer]["1CU@500MHz"] for layer in SIGNAL_LAYERS)
    paper_8cu_total = sum(PAPER_TABLE2[layer]["8CU@500MHz"] for layer in SIGNAL_LAYERS)
    assert one_cu_500.total_um == pytest.approx(paper_1cu_total, rel=0.5)
    assert eight_cu_500.total_um == pytest.approx(paper_8cu_total, rel=0.5)
