"""Benchmark: multi-device makespan scaling for an independent-launch batch.

Acceptance measurement for the multi-device runtime: scheduling the
16-kernel suite (one independent launch per kernel, host↔device transfers
charged) across 4 G-GPU devices must improve the batch makespan by at least
1.5x over a single device, with bit-identical kernel results and per-launch
cycle counts at every device count (the sweep itself asserts both).  The
numbers are recorded to ``BENCH_PR4.json`` in the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.eval.multidevice import run_multidevice_table
from repro.eval.tables import format_multidevice_table
from repro.runtime.checkpoint import atomic_write_json
from repro.runtime.parallel import default_jobs

BENCH_PR4_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"

DEVICE_COUNTS = (1, 2, 4)
# The makespan ratio is a property of the simulated schedule, not of host
# wall time, so a moderate scale keeps the bench quick without changing the
# conclusion; REPRO_BENCH_SCALE is deliberately not applied here because the
# recorded speedups should be comparable between runs.
SCALE = 0.25
MIN_SPEEDUP_AT_4 = 1.5


def _record(section: str, payload: dict) -> None:
    data = {}
    if BENCH_PR4_PATH.exists():
        try:
            data = json.loads(BENCH_PR4_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = {"meta": {"repro_jobs": default_jobs(), "scale": SCALE}, **payload}
    atomic_write_json(BENCH_PR4_PATH, data)


@pytest.mark.benchmark(group="multidevice")
def test_multidevice_makespan_scaling(benchmark):
    start = time.perf_counter()
    table = benchmark.pedantic(
        lambda: run_multidevice_table(device_counts=DEVICE_COUNTS, scale=SCALE),
        rounds=1,
        iterations=1,
    )
    wall = time.perf_counter() - start

    print("\n" + format_multidevice_table(table))
    speedups = {count: table.speedup(count) for count in table.device_counts}
    _record(
        "multidevice_makespan",
        {
            "kernels": len(table.kernels),
            "device_counts": list(table.device_counts),
            "wall_seconds": round(wall, 3),
            "makespan_kcycles": {
                str(count): round(table.cell(count).makespan_kcycles, 2)
                for count in table.device_counts
            },
            "speedup": {str(count): round(value, 3) for count, value in speedups.items()},
            "transfer_fraction": {
                str(count): round(table.cell(count).transfer_fraction, 4)
                for count in table.device_counts
            },
            "mean_utilization": {
                str(count): round(table.cell(count).mean_utilization, 4)
                for count in table.device_counts
            },
        },
    )

    # Makespan must shrink monotonically with more devices...
    makespans = [table.cell(count).makespan for count in sorted(table.device_counts)]
    assert all(later <= earlier for earlier, later in zip(makespans, makespans[1:], strict=False))
    # ...and the 4-device batch must beat 1 device by the acceptance margin.
    assert speedups[4] >= MIN_SPEEDUP_AT_4, speedups
    # The schedule can never beat the critical path or perfect scaling.
    for count in table.device_counts:
        cell = table.cell(count)
        assert cell.makespan >= cell.critical_path_cycles - 1e-6
        assert speedups[count] <= count + 1e-6
