"""Benchmark: batched command queue vs. independent simulator runs.

Acceptance measurement for the queue runtime: enqueueing N repeated launches
through one :class:`repro.runtime.queue.CommandQueue` must be measurably
faster than N independent ``GGPUSimulator`` runs — the queue amortizes
simulator construction and program pre-decode — while producing identical
results and cycle statistics.  The numbers are recorded to
``BENCH_PR3.json`` in the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.arch.config import GGPUConfig
from repro.kernels import get_kernel_spec, run_workload
from repro.runtime.checkpoint import atomic_write_json
from repro.runtime.parallel import default_jobs
from repro.runtime.queue import CommandQueue
from repro.simt.gpu import GGPUSimulator

BENCH_PR3_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"

# Many cheap launches: the regime the queue exists for.  At this size the
# per-launch host overhead (simulator construction, kernel build, pre-decode)
# is comparable to the simulated work, so sharing it is clearly visible.
KERNEL = "copy"
SIZE = 64
LAUNCHES = 64
SEED = 2022


def _record(section: str, payload: dict) -> None:
    data = {}
    if BENCH_PR3_PATH.exists():
        try:
            data = json.loads(BENCH_PR3_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = {"meta": {"repro_jobs": default_jobs()}, **payload}
    atomic_write_json(BENCH_PR3_PATH, data)


@pytest.mark.benchmark(group="queue")
def test_queue_amortizes_setup_over_repeated_launches(benchmark):
    spec = get_kernel_spec(KERNEL)
    kernel = spec.build()
    workloads = [spec.workload(SIZE, SEED) for _ in range(LAUNCHES)]

    def independent_runs():
        outcomes = []
        for workload in workloads:
            simulator = GGPUSimulator(GGPUConfig(num_cus=2))
            result, outputs = run_workload(simulator, spec.build(), workload)
            outcomes.append((result, outputs))
        return outcomes

    def queued_runs():
        queue = CommandQueue(config=GGPUConfig(num_cus=2))
        outcomes = []
        for workload in workloads:
            result, outputs = run_workload(queue.simulator, kernel, workload)
            queue.stats.record(result)
            outcomes.append((result, outputs))
        return outcomes

    # Warm both paths once (imports, numpy buffers), then time.
    independent_runs()
    queued_runs()

    start = time.perf_counter()
    independent = independent_runs()
    independent_wall = time.perf_counter() - start

    start = time.perf_counter()
    queued = benchmark.pedantic(queued_runs, rounds=1, iterations=1)
    queued_wall = time.perf_counter() - start

    # Identical results and cycle stats, launch by launch.
    for (ind_result, ind_outputs), (q_result, q_outputs) in zip(independent, queued, strict=True):
        assert q_result.cycles == ind_result.cycles
        assert q_result.stats.instructions_issued == ind_result.stats.instructions_issued
        for name, values in ind_outputs.items():
            assert (q_outputs[name] == values).all()

    speedup = independent_wall / queued_wall
    _record(
        "queue_vs_independent",
        {
            "kernel": KERNEL,
            "input_size": SIZE,
            "launches": LAUNCHES,
            "num_cus": 2,
            "independent_wall_seconds": round(independent_wall, 4),
            "queued_wall_seconds": round(queued_wall, 4),
            "speedup": round(speedup, 3),
        },
    )
    print(
        f"\n{LAUNCHES} launches of {KERNEL}@{SIZE}: independent {independent_wall:.3f}s, "
        f"queued {queued_wall:.3f}s, speedup {speedup:.2f}x"
    )
    # The queue must be measurably faster than rebuilding the simulator per
    # launch (shared pre-decode and G-GPU state).
    assert speedup > 1.1
