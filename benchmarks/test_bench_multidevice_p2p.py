"""Benchmark: P2P + prefetch transfer modes on the two-stage shuffle DAG.

Acceptance measurement for the PR 5 transfer-command runtime: running the
two-stage saxpy DAG (8 lanes, cross-lane shuffle) across 4 G-GPU devices
with peer-to-peer transfers, ``enqueue_write`` prefetch, and device-affinity
hints must improve the makespan by at least 10% over the PR 4 host-hop path
at the same device count, with bit-identical kernel results and per-launch
cycle counts in every (mode, device count) cell (the sweep itself asserts
both).  The LPT flush order is measured on the mixed-size 16-kernel
independent batch, where it tightens the 4-device makespan.  The numbers are
recorded to ``BENCH_PR5.json`` in the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.eval.multidevice import run_multidevice_table, run_pipeline_table
from repro.eval.tables import format_pipeline_table
from repro.runtime.checkpoint import atomic_write_json
from repro.runtime.parallel import default_jobs

BENCH_PR5_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"

DEVICE_COUNTS = (1, 2, 4)
LANES = 8
SIZE = 512
# Acceptance: P2P + prefetch must beat the host-hop path by >= 10% at 4
# devices.  As with the PR 4 bench, REPRO_BENCH_SCALE is deliberately not
# applied: the ratio is a property of the simulated schedule and should be
# comparable between runs.
MIN_IMPROVEMENT_AT_4 = 1.10
BATCH_SCALE = 0.25


def _record(section: str, payload: dict) -> None:
    data = {}
    if BENCH_PR5_PATH.exists():
        try:
            data = json.loads(BENCH_PR5_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = {"meta": {"repro_jobs": default_jobs()}, **payload}
    atomic_write_json(BENCH_PR5_PATH, data)


@pytest.mark.benchmark(group="multidevice")
def test_pipeline_transfer_modes(benchmark):
    start = time.perf_counter()
    table = benchmark.pedantic(
        lambda: run_pipeline_table(device_counts=DEVICE_COUNTS, lanes=LANES, size=SIZE),
        rounds=1,
        iterations=1,
    )
    wall = time.perf_counter() - start

    print("\n" + format_pipeline_table(table))
    _record(
        "pipeline_transfer_modes",
        {
            "lanes": LANES,
            "size": SIZE,
            "device_counts": list(table.device_counts),
            "wall_seconds": round(wall, 3),
            "makespan_kcycles": {
                mode: {
                    str(count): round(table.cell(mode, count).makespan_kcycles, 2)
                    for count in table.device_counts
                }
                for mode in table.modes
            },
            "improvement_vs_host": {
                mode: {
                    str(count): round(table.improvement(mode, count), 3)
                    for count in table.device_counts
                }
                for mode in table.modes
            },
            "p2p_transfers": {
                mode: {
                    str(count): table.cell(mode, count).transfers_p2p
                    for count in table.device_counts
                }
                for mode in table.modes
            },
        },
    )

    # The P2P modes can never lose to the host bounce at any device count...
    for mode in ("p2p", "p2p-prefetch"):
        for count in table.device_counts:
            assert table.improvement(mode, count) >= 1.0 - 1e-9, (mode, count)
    # ...and with every knob on, 4 devices must beat the host-hop path by
    # the acceptance margin.
    improvement = table.improvement("p2p-prefetch", 4)
    assert improvement >= MIN_IMPROVEMENT_AT_4, improvement
    # Direct transfers replace the read-back bounce entirely in this DAG.
    assert table.cell("p2p", 4).transfers_from_device == 0
    assert table.cell("p2p", 4).transfers_p2p > 0


@pytest.mark.benchmark(group="multidevice")
def test_lpt_batch_scheduling(benchmark):
    start = time.perf_counter()
    tables = benchmark.pedantic(
        lambda: (
            run_multidevice_table(device_counts=DEVICE_COUNTS, scale=BATCH_SCALE),
            run_multidevice_table(
                device_counts=DEVICE_COUNTS, scale=BATCH_SCALE, lpt=True
            ),
        ),
        rounds=1,
        iterations=1,
    )
    wall = time.perf_counter() - start
    enqueue_order, lpt_order = tables

    ratios = {
        count: enqueue_order.cell(count).makespan / lpt_order.cell(count).makespan
        for count in enqueue_order.device_counts
    }
    _record(
        "lpt_batch_scheduling",
        {
            "scale": BATCH_SCALE,
            "kernels": len(enqueue_order.kernels),
            "device_counts": list(enqueue_order.device_counts),
            "wall_seconds": round(wall, 3),
            "makespan_kcycles": {
                "enqueue_order": {
                    str(count): round(enqueue_order.cell(count).makespan_kcycles, 2)
                    for count in enqueue_order.device_counts
                },
                "lpt": {
                    str(count): round(lpt_order.cell(count).makespan_kcycles, 2)
                    for count in lpt_order.device_counts
                },
            },
            "lpt_ratio": {str(count): round(value, 4) for count, value in ratios.items()},
        },
    )

    # LPT must tighten the mixed-size batch at the 4-device design point (the
    # ROADMAP's "better 4+-device utilization" target)...
    assert ratios[4] > 1.0, ratios
    # ...and per-launch compute cycles are unchanged by the flush order.
    reference = {
        label: compute
        for label, _, _, _, _, compute in enqueue_order.cell(1).schedule
    }
    for count in lpt_order.device_counts:
        for label, _, _, _, _, compute in lpt_order.cell(count).schedule:
            assert reference[label] == compute, label
