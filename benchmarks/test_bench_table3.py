"""Regenerate Table III: benchmark input sizes and cycle counts.

The measurement itself is shared with the Fig. 5 / Fig. 6 benchmarks through
the ``table3_measurements`` session fixture; set ``REPRO_BENCH_SCALE=1.0`` to
run the paper's exact input sizes (a few minutes of simulation).
"""

from __future__ import annotations

import pytest

from repro.eval.paper_data import PAPER_TABLE3
from repro.eval.tables import format_table3
from repro.kernels import EXTENDED_KERNEL_NAMES


@pytest.mark.benchmark(group="table3")
def test_table3_benchmark_cycle_counts(benchmark, table3_measurements):
    table = benchmark.pedantic(lambda: table3_measurements, rounds=1, iterations=1)

    print("\n=== Reproduced Table III (k-cycles) ===")
    print(format_table3(table))
    print("\n=== Paper Table III (k-cycles) ===")
    for kernel, (riscv_size, gpu_size, riscv_kc, gpu_kc) in PAPER_TABLE3.items():
        print(f"{kernel:14s} sizes {riscv_size}/{gpu_size}  riscv {riscv_kc}  gpu {gpu_kc}")

    # The sweep covers the paper's seven kernels plus the extended suite.
    assert set(table.rows) >= set(PAPER_TABLE3)
    assert set(table.rows) >= set(EXTENDED_KERNEL_NAMES)
    for kernel, row in table.rows.items():
        # Every kernel ran on all four CU counts and produced correct results
        # (correctness is checked inside the measurement helpers).
        assert set(row.gpu) == {1, 2, 4, 8}
        assert row.riscv.cycles > 0
        # Adding CUs never makes the parallel-friendly kernels slower.
        if kernel in ("mat_mul", "copy", "vec_mul", "fir"):
            assert row.gpu_kcycles(8) <= row.gpu_kcycles(1)
    # The paper's most visible Table III feature: the divergent/serial kernels
    # (div_int, parallel_sel, xcorr) need far more G-GPU cycles per element
    # than the parallel ones.
    per_element_mat_mul = table.row("mat_mul").gpu[1].cycles / table.row("mat_mul").gpu_size
    per_element_sel = table.row("parallel_sel").gpu[1].cycles / table.row("parallel_sel").gpu_size
    assert per_element_sel > 5 * per_element_mat_mul
