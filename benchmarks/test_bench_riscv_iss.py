"""Benchmark the RISC-V ISS itself: simulation throughput, not kernel cycles.

The pre-decoded interpreter (:mod:`repro.riscv.decode`) replaces the seed
path's per-instruction enum lookups, chained ``if opcode is ...`` dispatch,
and mnemonic dict updates with handler closures resolved once per program.
This benchmark runs the seven Table III programs (at ``REPRO_BENCH_SCALE``
input sizes) on both paths, prints the per-program wall times next to the
decoded-vs-seed speedup, and records the numbers to ``BENCH_PR2.json``.

On the reference machine the decoded path sustains ~600k instructions/s
against the seed interpreter's ~60k (~10x); the floors asserted here sit far
below that, so only gross regressions (e.g. re-introducing per-instruction
decode) should trip them.
"""

from __future__ import annotations

import time

import pytest

from repro.kernels import get_kernel_spec
from repro.riscv.cpu import RiscvCpu
from repro.riscv.programs import all_riscv_program_names, get_riscv_program_spec


def _scaled_size(spec, scale: float) -> int:
    if scale >= 1.0:
        return spec.paper_size
    # Round to the kernel's declared input-size step (64 for the 1-D
    # kernels; e.g. 128 for matmul2d's 2-D workgroup grid).
    step = get_kernel_spec(spec.name).size_granularity
    return max(step, (int(spec.paper_size * scale) // step) * step)


def _run_program(name: str, scale: float, predecode: bool):
    """One full benchmark run; returns (instructions, cycles, wall seconds)."""
    spec = get_riscv_program_spec(name)
    case = spec.build_case(_scaled_size(spec, scale), 2022)
    cpu = RiscvCpu(case.memory)
    cpu.predecode = predecode
    start = time.perf_counter()
    stats, _ = case.run(cpu=cpu)
    elapsed = time.perf_counter() - start
    return stats.instructions, stats.cycles, elapsed


@pytest.mark.benchmark(group="riscv-iss")
def test_iss_throughput_and_speedup(benchmark, input_scale, bench_recorder):
    def _measure():
        rows = {}
        for name in all_riscv_program_names():
            instructions, cycles, decoded_wall = _run_program(name, input_scale, predecode=True)
            seed_instructions, seed_cycles, seed_wall = _run_program(name, input_scale, predecode=False)
            assert (instructions, cycles) == (seed_instructions, seed_cycles)
            rows[name] = {
                "instructions": instructions,
                "kcycles": cycles / 1e3,
                "decoded_wall_seconds": decoded_wall,
                "seed_wall_seconds": seed_wall,
            }
        return rows

    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)

    total_instructions = sum(row["instructions"] for row in rows.values())
    decoded_total = sum(row["decoded_wall_seconds"] for row in rows.values())
    seed_total = sum(row["seed_wall_seconds"] for row in rows.values())
    throughput = total_instructions / decoded_total
    seed_throughput = total_instructions / seed_total

    print("\n=== RISC-V ISS: decoded vs seed interpreter ===")
    header = (
        f"{'program':14s} {'instr':>10s} {'decoded':>10s} {'seed':>10s} {'speedup':>8s}"
    )
    print(header)
    print("-" * len(header))
    for name, row in rows.items():
        speedup = row["seed_wall_seconds"] / max(row["decoded_wall_seconds"], 1e-9)
        print(
            f"{name:14s} {row['instructions']:>10d} "
            f"{row['decoded_wall_seconds'] * 1e3:>8.1f}ms {row['seed_wall_seconds'] * 1e3:>8.1f}ms "
            f"{speedup:>7.2f}x"
        )
    print(
        f"total: {total_instructions} instructions, decoded {throughput:,.0f} instr/s, "
        f"seed {seed_throughput:,.0f} instr/s, speedup {seed_total / decoded_total:.2f}x"
    )

    bench_recorder(
        "riscv_iss",
        {
            "instructions": total_instructions,
            "decoded_wall_seconds": round(decoded_total, 4),
            "seed_wall_seconds": round(seed_total, 4),
            "decoded_instr_per_second": round(throughput),
            "speedup_vs_seed": round(seed_total / decoded_total, 2),
            "programs": {
                name: {
                    "instructions": row["instructions"],
                    "kcycles": row["kcycles"],
                    "decoded_wall_seconds": round(row["decoded_wall_seconds"], 4),
                    "seed_wall_seconds": round(row["seed_wall_seconds"], 4),
                }
                for name, row in rows.items()
            },
        },
    )

    # Floors ~5x under what the decoded path achieves: regression tripwires,
    # not performance assertions.
    assert throughput > 100_000
    assert seed_total / decoded_total > 2.0
