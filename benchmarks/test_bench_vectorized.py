"""Benchmark: cross-wavefront vectorized issue engine (PR 9).

Times the scale-0.25 Table III sweep and every paper kernel at 1 and 8 CUs
with the batched cross-wavefront issue engine on and off, asserting cycle
counts bit-identical between the two modes in every timed cell, and records
the honest numbers to ``BENCH_PR9.json`` in the repository root.

The recorded ``speedup`` fields report what the engine actually achieves on
this machine, not a target: batching wins on long straight-line ALU runs
(``mat_mul``) and roughly breaks even elsewhere, because ~45% of the dynamic
instruction stream (loads, stores, branches, barriers) must stay on the
cycle-exact scalar path to preserve bit-exact shared-cache and AXI-port
ordering — see ``docs/performance.md`` for the full analysis.  The PR 2
baseline wall from ``BENCH_PR2.json`` is carried alongside for the
trajectory table (``tests/tools/bench_trajectory.py``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.eval.benchmarks import BenchmarkSizes, measure_gpu_kernel, run_table3
from repro.kernels import PAPER_KERNEL_NAMES
from repro.runtime.checkpoint import atomic_write_json
from repro.runtime.parallel import default_jobs

_ROOT = Path(__file__).resolve().parent.parent
BENCH_PR9_PATH = _ROOT / "BENCH_PR9.json"
BENCH_PR2_PATH = _ROOT / "BENCH_PR2.json"

# The sweep the acceptance numbers are quoted at (matches BENCH_PR2's
# table3_sweep section): every paper kernel, 1/2/4/8 CUs, quarter-scale
# inputs.  REPRO_BENCH_SCALE is deliberately not applied here so the
# recorded walls stay comparable across harness configurations.
SWEEP_SCALE = 0.25
SEED = 2022


def _record(section: str, payload: dict) -> None:
    data = {}
    if BENCH_PR9_PATH.exists():
        try:
            data = json.loads(BENCH_PR9_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = {
        "meta": {"bench_scale": SWEEP_SCALE, "repro_jobs": default_jobs()},
        **payload,
    }
    atomic_write_json(BENCH_PR9_PATH, data)


def _pr2_sweep_wall() -> float | None:
    """PR 2's recorded scale-0.25 sweep wall, if the baseline file is intact."""
    try:
        data = json.loads(BENCH_PR2_PATH.read_text())
        return float(data["table3_sweep"]["wall_seconds"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


def _time_kernel(name: str, num_cus: int, vectorized: bool):
    size = BenchmarkSizes.paper(name).scaled(SWEEP_SCALE).gpu_size
    start = time.perf_counter()
    measurement = measure_gpu_kernel(name, num_cus, size, SEED, True, vectorized)
    return time.perf_counter() - start, measurement.cycles


@pytest.mark.benchmark(group="engine")
def test_vectorized_issue_engine(benchmark):
    # Per-kernel on/off cells at the sweep's extreme CU counts.  Every cell
    # checks results (check=True inside measure_gpu_kernel) and the off/on
    # cycle counts are asserted identical — the bench re-verifies, at bench
    # scale, the bit-exactness the golden/differential/fuzz suites pin.
    cells: dict = {}
    for name in PAPER_KERNEL_NAMES:
        for num_cus in (1, 8):
            wall_off, cycles_off = _time_kernel(name, num_cus, False)
            wall_on, cycles_on = _time_kernel(name, num_cus, True)
            assert cycles_on == cycles_off, (name, num_cus, cycles_on, cycles_off)
            cells[f"{name}/{num_cus}cu"] = {
                "cycles": cycles_on,
                "wall_scalar": round(wall_off, 4),
                "wall_vectorized": round(wall_on, 4),
                "speedup": round(wall_off / wall_on, 3),
            }

    # The full sweep, both engines, through the production run_table3 path.
    start = time.perf_counter()
    table_off = run_table3(scale=SWEEP_SCALE, seed=SEED, vectorized=False)
    sweep_off = time.perf_counter() - start
    start = time.perf_counter()
    table_on = benchmark.pedantic(
        lambda: run_table3(scale=SWEEP_SCALE, seed=SEED, vectorized=True),
        rounds=1,
        iterations=1,
    )
    sweep_on = time.perf_counter() - start

    for kernel, row in table_on.rows.items():
        off_row = table_off.rows[kernel]
        for num_cus in table_on.cu_counts:
            assert row.gpu_kcycles(num_cus) == off_row.gpu_kcycles(num_cus), (
                kernel,
                num_cus,
            )

    pr2_wall = _pr2_sweep_wall()
    _record(
        "vectorized_issue",
        {
            "kernels": list(PAPER_KERNEL_NAMES),
            "sweep_wall_scalar": round(sweep_off, 3),
            "sweep_wall_vectorized": round(sweep_on, 3),
            "sweep_speedup": round(sweep_off / sweep_on, 3),
            "pr2_sweep_wall_baseline": pr2_wall,
            "sweep_speedup_vs_pr2": (
                round(pr2_wall / sweep_on, 3) if pr2_wall else None
            ),
            "per_kernel": cells,
        },
    )

    # Acceptance (honest): both engines agree bit-for-bit on every cell and
    # the vectorized engine is the production default.  The wall-clock bound
    # is a catastrophic-regression guard only — the measured ratio is ~1.16
    # on a 1-core container (BENCH_PR9.json holds the real numbers), and a
    # tighter bound flakes under CI runner load.
    assert sweep_on <= sweep_off * 1.6, (sweep_on, sweep_off)
