"""Regenerate Fig. 6: speed-up over the RISC-V derated by the area ratio."""

from __future__ import annotations

import pytest

from repro.eval.comparison import compute_area_ratios, compute_speedups, derate_by_area
from repro.eval.figures import format_speedup_chart
from repro.eval.paper_data import PAPER_AREA_RATIOS, PAPER_TABLE3, paper_speedup_per_area


def _build(tech, table3):
    speedups = compute_speedups(table3)
    ratios = compute_area_ratios(tech)
    return speedups, ratios, derate_by_area(speedups, ratios)


@pytest.mark.benchmark(group="fig6")
def test_fig6_speedup_derated_by_area(benchmark, tech, table3_measurements):
    speedups, ratios, derated = benchmark.pedantic(
        _build, args=(tech, table3_measurements), rounds=1, iterations=1
    )

    print("\n=== Reproduced area ratios (G-GPU / RISC-V) ===")
    print({num_cus: round(ratio, 1) for num_cus, ratio in ratios.as_dict().items()})
    print("paper:", PAPER_AREA_RATIOS)
    print("\n=== Reproduced Fig. 6 ===")
    print(format_speedup_chart(derated))
    print("\n=== Paper Fig. 6 ===")
    for kernel in PAPER_TABLE3:
        values = {n: round(paper_speedup_per_area(kernel, n), 2) for n in (1, 2, 4, 8)}
        print(f"{kernel:14s} {values}")

    # Area ratios reproduce the paper's 6.5 / 11.6 / 21.4 / 41.0 within ~15%.
    for num_cus, paper_ratio in PAPER_AREA_RATIOS.items():
        assert ratios.ratio(num_cus) == pytest.approx(paper_ratio, rel=0.15)
    # Derating compresses the advantage to low single digits for every kernel
    # (the paper's best is 10.2x; this reproduction's raw speed-ups are lower,
    # so its derated values are too).
    assert derated.best() < 15.0
    # Bandwidth-bound kernels lose their area efficiency at 8 CUs (the paper's
    # "8-CU shows the worst results" trend).
    for kernel in ("copy", "vec_mul", "xcorr"):
        assert derated.value(kernel, 8) < derated.value(kernel, 1) * 1.1
    # The serial kernels are never worth the area.
    assert derated.value("div_int", 8) < 1.0
    assert derated.value("parallel_sel", 8) < 1.0
