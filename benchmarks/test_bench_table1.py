"""Regenerate Table I: the 12 G-GPU versions after logic synthesis.

Prints the reproduced table next to the paper's values and checks the shape:
51/93/177/345 macros at 500 MHz, near-linear area scaling with CU count, and
the modest area cost of the higher-frequency versions.
"""

from __future__ import annotations

import pytest

from repro.eval.paper_data import PAPER_TABLE1
from repro.eval.tables import build_table1
from repro.synth.report import SynthesisReportRow, format_table1


def _regenerate(tech):
    return build_table1(tech)


@pytest.mark.benchmark(group="table1")
def test_table1_logic_synthesis_of_12_versions(benchmark, tech):
    results = benchmark.pedantic(_regenerate, args=(tech,), rounds=1, iterations=1)
    assert len(results) == 12

    print("\n=== Reproduced Table I ===")
    print(format_table1(results))
    print("\n=== Paper Table I (reference) ===")
    for label, row in PAPER_TABLE1.items():
        print(f"{label:12s} area={row[0]:6.2f} mem={row[1]:6.2f} ff={row[2]:7d} "
              f"comb={row[3]:7d} mem#={row[4]:4d} leak={row[5]:6.2f} dyn={row[6]:6.2f}")

    by_label = {SynthesisReportRow.from_result(result).label: result for result in results}
    # Macro counts at 500 MHz match the paper exactly.
    for num_cus, macros in ((1, 51), (2, 93), (4, 177), (8, 345)):
        assert by_label[f"{num_cus}@500MHz"].num_macros == macros
    # Area scales roughly linearly with the CU count.
    assert by_label["8@500MHz"].total_area_mm2 > 5.5 * by_label["1@500MHz"].total_area_mm2
    # Every version closes timing at its target frequency after optimization.
    assert all(result.timing_met for result in results)
    # Optimized versions cost more area and more macros than the 500 MHz ones.
    assert by_label["1@667MHz"].total_area_mm2 > by_label["1@500MHz"].total_area_mm2
    assert by_label["1@667MHz"].num_macros > by_label["1@500MHz"].num_macros
    # Within 20% of the paper's absolute area for the anchor versions.
    assert by_label["1@500MHz"].total_area_mm2 == pytest.approx(PAPER_TABLE1["1@500MHz"][0], rel=0.2)
    assert by_label["8@500MHz"].total_area_mm2 == pytest.approx(PAPER_TABLE1["8@500MHz"][0], rel=0.2)
