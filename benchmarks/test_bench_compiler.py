"""Benchmark: the OpenCL-C compiler against the hand-written kernels.

The FGPU's value proposition is programmability: OpenCL kernels compiled by a
tool-chain rather than hand-written assembly.  This bench measures what that
convenience costs on the G-GPU by running, for each library benchmark at a
reduced input size, the compiled kernel next to the hand-written one, on the
same simulator and the same workload.
"""

from __future__ import annotations

import pytest

from repro.arch.config import GGPUConfig
from repro.cl import compile_source, get_benchmark_source
from repro.kernels import all_kernel_names, get_kernel_spec, run_workload
from repro.simt.gpu import GGPUSimulator

BENCH_SIZE = 256
NUM_CUS = 2


def _measure(kernel, workload):
    simulator = GGPUSimulator(GGPUConfig(num_cus=NUM_CUS), memory_bytes=32 * 1024 * 1024)
    result, _ = run_workload(simulator, kernel, workload)
    return result.cycles


@pytest.mark.benchmark(group="compiler")
def test_compiled_vs_handwritten_kernels(benchmark, tech):
    def _run():
        rows = {}
        for name in all_kernel_names():
            spec = get_kernel_spec(name)
            workload = spec.workload(BENCH_SIZE, 3)
            compiled_kernel = compile_source(get_benchmark_source(name)).to_ggpu_kernel()
            rows[name] = (
                _measure(compiled_kernel, workload),
                _measure(spec.build(), workload),
            )
        return rows

    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    print("\n=== Compiled vs hand-written kernels (cycles, 2 CUs, size 256) ===")
    print(f"{'kernel':14s} {'compiled':>10s} {'hand':>10s} {'overhead':>9s}")
    for name, (compiled_cycles, hand_cycles) in rows.items():
        print(
            f"{name:14s} {compiled_cycles:10.0f} {hand_cycles:10.0f} "
            f"{compiled_cycles / hand_cycles:8.2f}x"
        )

    # Some CL sources deliberately run a *different algorithm* than their
    # hand-written twin, so their gap is algorithmic, not compiler overhead,
    # and gets a looser (but still honest) bound:
    # - the cooperative kernels' CL forms use serialization-safe sequential
    #   accumulation (so the RISC-V back end stays correct) vs the hand
    #   log-depth tree/scan forms;
    # - conv2d's CL form recomputes the halo indexing per tap where the
    #   hand kernel hoists the row cursors (~3.4x at this size);
    # - bitonic_sort's CL form is a last-lane exchange sort (O(n^2) work
    #   serialized on one lane per workgroup) vs the hand in-LRAM
    #   O(n log^2 n) compare-exchange network (~70x at this size).
    algorithmic_limits = {
        "dot": 20.0,
        "reduce_sum": 20.0,
        "inclusive_scan": 20.0,
        "conv2d": 5.0,
        "bitonic_sort": 90.0,
    }
    for name, (compiled_cycles, hand_cycles) in rows.items():
        # Functional equivalence is enforced by run_workload's output check;
        # the compiler is allowed to cost cycles, but bounded ones.
        limit = algorithmic_limits.get(name, 3.0)
        assert 0.5 <= compiled_cycles / hand_cycles <= limit, name
