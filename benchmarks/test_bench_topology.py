"""Benchmark: topology-aware schedulers on the layered-DAG ablation.

Acceptance measurement for the PR 8 topology-aware scheduling runtime: on
the layered inference-style DAG (a deep backbone chain next to wide
independent heads — the classic LPT trap), the HEFT and work-stealing flush
orders must beat LPT by at least 1.15x makespan at 8, 16, and 64 devices,
with bit-identical kernel results and per-launch cycle counts in every
(DAG, topology, scheduler, device count) cell (the sweep itself asserts
both).  The multi-stage shuffle DAG is recorded alongside as the
topology-sensitivity story: its cross-lane traffic crosses progressively
farther links on the two-switch and ring fabrics.  The numbers are recorded
to ``BENCH_PR8.json`` in the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.eval.multidevice import run_topology_table
from repro.eval.tables import format_topology_table
from repro.runtime.checkpoint import atomic_write_json
from repro.runtime.parallel import default_jobs

BENCH_PR8_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

DEVICE_COUNTS = (8, 16, 64)
# Acceptance: HEFT or stealing must beat LPT by >= 1.15x at 8+ devices on
# the layered DAG.  As with the earlier multi-device benches,
# REPRO_BENCH_SCALE is deliberately not applied: the ratio is a property of
# the simulated schedule and should be comparable between runs.
MIN_SPEEDUP_VS_LPT = 1.15


def _record(section: str, payload: dict) -> None:
    data = {}
    if BENCH_PR8_PATH.exists():
        try:
            data = json.loads(BENCH_PR8_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = {"meta": {"repro_jobs": default_jobs()}, **payload}
    atomic_write_json(BENCH_PR8_PATH, data)


@pytest.mark.benchmark(group="multidevice")
def test_topology_scheduler_ablation(benchmark):
    start = time.perf_counter()
    table = benchmark.pedantic(
        lambda: run_topology_table(device_counts=DEVICE_COUNTS),
        rounds=1,
        iterations=1,
    )
    wall = time.perf_counter() - start

    print("\n" + format_topology_table(table))
    _record(
        "topology_scheduler_ablation",
        {
            "layered": {"width": table.width, "depth": table.depth, "size": table.size},
            "shuffle": {"lanes": table.lanes, "stages": table.stages, "size": table.size},
            "device_counts": list(table.device_counts),
            "wall_seconds": round(wall, 3),
            "makespan_kcycles": {
                f"{dag}/{topo}/{scheduler}": {
                    str(count): round(
                        table.cell(dag, topo, scheduler, count).makespan_kcycles, 2
                    )
                    for count in table.device_counts
                }
                for dag in table.dags
                for topo in table.topologies
                for scheduler in table.schedulers
            },
            "speedup_vs_lpt": {
                f"{dag}/{topo}/{scheduler}": {
                    str(count): round(
                        table.speedup_vs_lpt(dag, topo, scheduler, count), 3
                    )
                    for count in table.device_counts
                }
                for dag in table.dags
                for topo in table.topologies
                for scheduler in ("heft", "stealing")
            },
        },
    )

    # Acceptance: HEFT and stealing beat LPT by the margin at every device
    # count on the layered DAG, on every topology.
    for topo in table.topologies:
        for scheduler in ("heft", "stealing"):
            for count in table.device_counts:
                speedup = table.speedup_vs_lpt("layered", topo, scheduler, count)
                assert speedup >= MIN_SPEEDUP_VS_LPT, (topo, scheduler, count, speedup)
    # The shuffle DAG pays real P2P traffic in every multi-device cell.
    for topo in table.topologies:
        assert table.cell("shuffle", topo, "lpt", 8).transfers_p2p > 0, topo
