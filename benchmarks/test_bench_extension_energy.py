"""Extension benchmark: energy and energy-efficiency over the RISC-V.

The paper's motivation is energy efficiency, but its evaluation stops at
performance (Fig. 5) and performance per area (Fig. 6).  This bench adds the
missing series by combining the Table-III cycle measurements (shared fixture)
with the synthesized power of every version: energy per benchmark run and the
energy-efficiency gain of the G-GPU over the RISC-V at equal work.
"""

from __future__ import annotations

import pytest

from repro.eval.energy import build_energy_comparison, format_energy_table
from repro.eval.figures import format_speedup_chart


@pytest.mark.benchmark(group="extension")
def test_energy_efficiency_over_riscv(benchmark, tech, table3_measurements):
    comparison = benchmark.pedantic(
        build_energy_comparison,
        args=(table3_measurements, tech),
        kwargs={"frequency_mhz": 667.0},
        rounds=1,
        iterations=1,
    )

    print("\n=== Energy per benchmark run and gain over the RISC-V ===")
    print(format_energy_table(comparison))
    print("\n=== Energy-efficiency gain (bar series) ===")
    print(format_speedup_chart(comparison.gain_series(), width=30))

    gains = comparison.gain_series()
    # The parallel kernels are genuinely more energy efficient than the CPU
    # even after paying for the much larger accelerator...
    assert gains.value("mat_mul", 1) > 1.0
    # ...while the divergent/serial kernels gain far less (and can lose).
    assert gains.value("div_int", 1) < gains.value("mat_mul", 1)
    assert gains.value("parallel_sel", 1) < gains.value("mat_mul", 1)
    # More CUs burn more power, so the efficiency gain grows slower than the
    # speed-up (and can regress for the contention-limited kernels).
    assert comparison.ggpu_power_w[8] > 4.0 * comparison.ggpu_power_w[1]
    assert comparison.best() == pytest.approx(gains.best(), rel=1e-9)
