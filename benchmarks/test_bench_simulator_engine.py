"""Benchmark the SIMT engine itself: simulation throughput, not kernel cycles.

The event-heap engine rewrite (pre-decoded programs, cached scheduler state,
vectorized cache tag probes, macro-stepped straight-line runs) targets the
wall-clock cost of the Table III / Fig. 5 / Fig. 6 measurement loop.  On the
reference machine the seed engine simulated the scale-0.25 Table III sweep in
~33 s; the event-heap engine runs the same sweep in ~7.3 s (≈4.5x), with
bit-for-bit identical results and cycle counts (see
``tests/test_simt_golden.py``).

This benchmark records the engine's simulation throughput in
wavefront-instructions per wall-clock second over a representative kernel
mix, and the macro-stepping batching factor.  The throughput floor asserted
here is ~5x below what the rewritten engine achieves, so it only catches
gross regressions (e.g. re-introducing per-issue decode or per-line Python
cache probes), not machine noise.
"""

from __future__ import annotations

import time

import pytest

from repro.arch.config import GGPUConfig
from repro.kernels import get_kernel_spec, run_workload
from repro.simt.gpu import GGPUSimulator

# kernel -> input size: a mix of streaming (vec_mul), divergent (div_int),
# and scatter-heavy (xcorr) behaviour, the latter dominating the runtime of
# the real Table III sweep.
ENGINE_MIX = {"vec_mul": 4096, "div_int": 512, "xcorr": 512}


def _simulate_mix(num_cus: int = 4):
    instructions = 0
    events = 0
    elapsed = 0.0
    for name, size in ENGINE_MIX.items():
        spec = get_kernel_spec(name)
        workload = spec.workload(size, 2022)
        simulator = GGPUSimulator(GGPUConfig().with_cus(num_cus))
        start = time.perf_counter()
        result, _ = run_workload(simulator, spec.build(), workload)
        elapsed += time.perf_counter() - start
        instructions += result.stats.instructions_issued
        events += sum(stats.issue_events for stats in result.stats.cu_stats)
    return instructions, events, elapsed


@pytest.mark.benchmark(group="engine")
def test_engine_simulation_throughput(benchmark, bench_recorder):
    instructions, events, elapsed = benchmark.pedantic(
        _simulate_mix, rounds=1, iterations=1
    )
    throughput = instructions / elapsed
    print(
        f"\nSIMT engine: {instructions} wavefront-instructions in {elapsed:.2f}s "
        f"({throughput:,.0f} instr/s), {events} scheduling events "
        f"(batching {instructions / events:.2f})"
    )
    bench_recorder(
        "engine",
        {
            "wavefront_instructions": instructions,
            "wall_seconds": round(elapsed, 3),
            "instructions_per_second": round(throughput),
            "scheduling_events": events,
            "macro_batching": round(instructions / events, 2),
        },
    )
    # The rewritten engine sustains ~40-60k instr/s on this mix (the PR-2
    # memory-path work pushed it further); the seed engine managed ~11k.
    # Only gross regressions should trip this.
    assert throughput > 8_000
    # Macro-stepping must actually batch: strictly fewer scheduling events
    # than instructions.
    assert events < instructions


@pytest.mark.benchmark(group="engine")
def test_engine_macro_stepping_does_not_change_results(benchmark):
    """The fast path must stay cycle-exact on the benchmark mix."""

    def _compare():
        outcomes = {}
        for macro in (True, False):
            cycle_counts = {}
            for name, size in ENGINE_MIX.items():
                spec = get_kernel_spec(name)
                workload = spec.workload(size, 2022)
                simulator = GGPUSimulator(GGPUConfig().with_cus(2))
                for cu in simulator.compute_units:
                    cu.macro_step = macro
                result, _ = run_workload(simulator, spec.build(), workload)
                cycle_counts[name] = result.cycles
            outcomes[macro] = cycle_counts
        return outcomes

    outcomes = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print("\nmacro-step vs single-step cycle counts:", outcomes[True])
    assert outcomes[True] == outcomes[False]
